"""repro — NUMA-aware RDMA-based end-to-end data transfer systems.

A production-quality Python reproduction of Ren et al., "Design and
Performance Evaluation of NUMA-Aware RDMA-Based End-to-End Data Transfer
Systems" (SC'13).

The library rebuilds the paper's entire stack as a calibrated simulation:

* :mod:`repro.sim` — discrete-event + fluid-flow kernel,
* :mod:`repro.hw` — NUMA machine model (sockets, memory, PCIe, NICs),
* :mod:`repro.kernel` — OS model (scheduling, NUMA policy, accounting),
* :mod:`repro.net` — links, topologies, flow-level TCP (cubic),
* :mod:`repro.rdma` — verbs: memory regions, QPs, CQs, READ/WRITE/SEND,
* :mod:`repro.storage` — SCSI/iSCSI/iSER SAN, tmpfs and SSD backends,
* :mod:`repro.fs` — VFS, page cache, XFS/ext4-like filesystems,
* :mod:`repro.apps` — RFTP, GridFTP, iperf, fio, STREAM,
* :mod:`repro.core` — end-to-end system builder, tuning, experiments,
* :mod:`repro.datapath` — real zero-copy byte movement + integrity.

Quickstart::

    from repro.core import EndToEndSystem, TuningPolicy
    system = EndToEndSystem.lan_testbed(tuning=TuningPolicy.numa_bound())
    result = system.run_rftp_transfer(duration=60.0)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
