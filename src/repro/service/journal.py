"""The broker's write-ahead job journal: crash-survivable control state.

A :class:`JobJournal` is the in-sim stand-in for the durable log a real
transfer service would keep (etcd, a replicated WAL, a database): every
control-plane decision that must survive a broker crash is appended
*before* it takes effect — submissions, dispatches, reschedules with
their banked bytes, and terminal outcomes.  On restart the broker
replays the journal into a :class:`JournalSnapshot` and reconciles it
against the surviving data plane (flows keep moving bytes while the
control plane is down), giving exactly-once byte accounting: a job is
completed once, its banked bytes are preserved across the crash, and
nothing is double-counted or silently dropped.

The journal is pure bookkeeping — it appends to a Python list and never
touches the event loop or any RNG stream — so enabling it cannot
perturb a fault-free run (the byte-identity contract the differential
tests pin).  Brokers only write it while a fault injector is armed:
with no injector there is no crash to recover from, and the journal
costs exactly nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["JobJournal", "JournalSnapshot"]


@dataclass
class JournalSnapshot:
    """The replayed control state: what a restarted broker knows."""

    #: Queued job ids in queue order (requeued jobs ahead of newer ones,
    #: exactly as the live queue held them).
    queued: List[int] = field(default_factory=list)
    #: Running job ids in dispatch order.
    running: List[int] = field(default_factory=list)
    #: Banked bytes per job id (from reschedule records).
    banked: Dict[int, float] = field(default_factory=dict)


class JobJournal:
    """Append-only WAL of one broker's job lifecycle."""

    __slots__ = ("records", "appends")

    def __init__(self) -> None:
        #: (op, job_id, payload) tuples in write order.
        self.records: List[Tuple[str, int, float]] = []
        self.appends = 0

    def __len__(self) -> int:
        return len(self.records)

    def _append(self, op: str, job_id: int, payload: float = 0.0) -> None:
        self.records.append((op, job_id, payload))
        self.appends += 1

    # -- write path (one call per control-plane decision) -------------------
    def log_submit(self, job_id: int) -> None:
        """The job was admitted to the queue."""
        self._append("submit", job_id)

    def log_start(self, job_id: int) -> None:
        """The job was dispatched onto a rail."""
        self._append("start", job_id)

    def log_requeue(self, job_id: int, banked: float) -> None:
        """A dead rail's job went back to the queue head, bytes banked."""
        self._append("requeue", job_id, banked)

    def log_terminal(self, job_id: int) -> None:
        """The job reached a terminal state (completed/shed/cancelled/...)."""
        self._append("terminal", job_id)

    # -- replay --------------------------------------------------------------
    def replay(self) -> JournalSnapshot:
        """Fold the records into the control state at the last append.

        The replayed queue mirrors the live deque operation-for-
        operation — submits append, requeues prepend (the broker writes
        them in its ``appendleft`` order), starts and terminals remove —
        so the restarted broker's queue order equals the order the dead
        broker would have dispatched.
        """
        from collections import deque

        q: "deque[int]" = deque()
        queued = set()
        running: List[int] = []
        run_set = set()
        banked: Dict[int, float] = {}
        for op, job_id, payload in self.records:
            if op == "submit":
                q.append(job_id)
                queued.add(job_id)
            elif op == "start":
                if job_id in queued:
                    queued.discard(job_id)
                    q.remove(job_id)
                if job_id not in run_set:
                    run_set.add(job_id)
                    running.append(job_id)
            elif op == "requeue":
                banked[job_id] = payload
                if job_id in run_set:
                    run_set.discard(job_id)
                    running.remove(job_id)
                if job_id not in queued:
                    queued.add(job_id)
                    q.appendleft(job_id)
            elif op == "terminal":
                if job_id in queued:
                    queued.discard(job_id)
                    q.remove(job_id)
                if job_id in run_set:
                    run_set.discard(job_id)
                    running.remove(job_id)
        return JournalSnapshot(queued=list(q), running=running, banked=banked)
