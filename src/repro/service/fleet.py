"""The fleet: the rails a transfer broker schedules jobs onto.

A :class:`RailFleet` stands up ``n_hosts`` front-end hosts (the Table 1
IBM X3650 class, three 40 Gbps RoCE adapters spread over both sockets),
each cabled NIC-for-NIC to a matching sink peer — the same pairing the
figure experiments use, scaled out.  Every cabled sender NIC becomes one
:class:`Rail`: the schedulable unit of the control plane, carrying its
socket locality (via :func:`repro.rdma.fabric.rail_locality_map`), its
link, and the set of jobs currently running on it.

Rails participate in fault plans through their links: ``link:<i>``
selectors resolve in fleet cabling order, and the broker registers as a
transfer listener so dead rails trigger job rescheduling (not silent
stalls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.injector import faults_active
from repro.hw.nic import Nic
from repro.hw.presets import frontend_lan_host
from repro.hw.topology import Machine
from repro.net.link import Link, connect
from repro.rdma.fabric import rail_locality_map
from repro.sim.context import Context
from repro.util.validation import check_positive

__all__ = ["Rail", "RailFleet"]

#: LAN cable delay between a front-end host and its sink peer.
LAN_DELAY = 83e-6


@dataclass
class Rail:
    """One schedulable sender NIC: the unit of job placement."""

    index: int
    host: int
    nic: Nic
    peer: Nic
    link: Link
    #: NUMA node the sender NIC hangs off (socket locality).
    node: int
    #: Jobs currently running on this rail (broker-maintained; a dict
    #: used as an insertion-ordered set, so fault-time rescheduling
    #: iterates deterministically).
    jobs: Dict[object, None] = field(default_factory=dict)
    alive: bool = True
    #: Consecutive missed heartbeats (broker-maintained; only used when
    #: heartbeat-based health monitoring is enabled).
    suspect: int = 0

    @property
    def rate(self) -> float:
        """Nominal usable data rate of the rail in bytes/second."""
        return self.nic.data_rate()

    @property
    def load(self) -> int:
        """Number of jobs currently placed on the rail."""
        return len(self.jobs)

    def __repr__(self) -> str:
        return (f"<Rail {self.index} host={self.host} node={self.node} "
                f"jobs={self.load} alive={self.alive}>")


class RailFleet:
    """``n_hosts`` front-end hosts, each with its rails cabled and live."""

    def __init__(self, ctx: Context, n_hosts: int = 1, name_prefix: str = ""):
        check_positive("n_hosts", n_hosts)
        self.ctx = ctx
        self.n_hosts = n_hosts
        self.name_prefix = name_prefix
        self.hosts: List[Machine] = []
        self.sinks: List[Machine] = []
        self.rails: List[Rail] = []
        self.rail_by_link: Dict[Link, Rail] = {}
        for h in range(n_hosts):
            # A name prefix keeps multi-pod fabrics' machine and link
            # names distinct (``pod3-svc0`` vs ``pod4-svc0``).
            host = frontend_lan_host(ctx, f"{name_prefix}svc{h}")
            sink = frontend_lan_host(ctx, f"{name_prefix}svc{h}-sink")
            self.hosts.append(host)
            self.sinks.append(sink)
            # Cable same-index slots; locality then comes from the NIC's
            # own socket via the rail-locality query, not slot order.
            pairs = [
                (s.device, d.device)
                for s, d in zip(host.pcie_slots, sink.pcie_slots)
                if s.device is not None and d.device is not None
                and s.device.kind.is_roce
            ]
            for i, (sn, dn) in enumerate(pairs):
                connect(sn, dn, delay=LAN_DELAY,
                        name=f"{name_prefix}svc{h}-rail{i}")
            for node, nics in sorted(rail_locality_map(host).items()):
                for nic in nics:
                    rail = Rail(
                        index=len(self.rails), host=h, nic=nic,
                        peer=nic.link.peer(nic), link=nic.link, node=node,
                    )
                    self.rails.append(rail)
                    self.rail_by_link[nic.link] = rail
        # Each host is a failure domain: ``host:<machine>`` (and the bare
        # index for single-fleet contexts) takes out all its rails at once.
        inj = faults_active(ctx)
        if inj is not None:
            for h in range(n_hosts):
                links = [r.link for r in self.rails if r.host == h]
                inj.register_domain("host", f"{name_prefix}svc{h}", links)
                if not name_prefix:
                    inj.register_domain("host", str(h), links)

    @property
    def total_rate(self) -> float:
        """Aggregate nominal rail bandwidth in bytes/second."""
        return sum(r.rate for r in self.rails)

    def alive_rails(self) -> List[Rail]:
        """Rails currently schedulable, in index order."""
        return [r for r in self.rails if r.alive]

    def local_rails(self, host: int, node: int) -> List[Rail]:
        """The rail-locality query: *host*'s rails on NUMA node *node*."""
        return [r for r in self.rails
                if r.host == host and r.node == node and r.alive]

    def rail_for_link(self, link: Link) -> Optional[Rail]:
        """The rail cabled over *link*, if it belongs to this fleet."""
        return self.rail_by_link.get(link)

    def __repr__(self) -> str:
        return (f"<RailFleet hosts={self.n_hosts} rails={len(self.rails)} "
                f"rate={self.total_rate / 1e9:.1f} GB/s>")
