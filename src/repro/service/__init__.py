"""Transfer-service control plane: a long-running broker in the kernel.

The paper's result is a *single-transfer* win — NUMA-aware placement of
RFTP rails recovers line-rate goodput.  This package restates it as a
*fleet-level* SLO win: a simulated long-running transfer service admits
a stream of user jobs (Poisson or diurnal arrivals, heavy-tailed file
sizes), enforces per-tenant quotas and aggregate rail-bandwidth budgets,
and packs admitted jobs onto NUMA-appropriate rails.  Everything runs
*inside* the discrete-event kernel: arrivals are simulator events, jobs
are fluid flows, and completions come from the fluid scheduler — so a
service scenario is exactly as deterministic, cacheable and
parallelisable as any other :class:`~repro.exec.task.SimTask`.

Layers (one module each):

* :mod:`repro.service.workload` — arrival/size/tenant generators drawn
  from dedicated ``service.*`` RNG streams;
* :mod:`repro.service.fleet` — the rails: front-end hosts cabled to
  sink peers, with the socket locality of every NIC exposed through
  :func:`repro.rdma.fabric.rail_locality_map`;
* :mod:`repro.service.scheduler` — pluggable placement policies
  (``fifo``, ``numa-aware``, ``numa-blind``);
* :mod:`repro.service.broker` — admission control, bounded queueing,
  the session API (list/inspect/cancel), fault-driven rescheduling, and
  crash-tolerant restart (journal replay, paced backlog drain);
* :mod:`repro.service.journal` — the write-ahead job journal a crashed
  broker replays to recover its control state exactly once.
"""

from repro.service.broker import (
    BrokerConfig,
    JobState,
    ServiceStats,
    TransferBroker,
)
from repro.service.fleet import Rail, RailFleet
from repro.service.journal import JobJournal, JournalSnapshot
from repro.service.scheduler import POLICIES, pick_rail
from repro.service.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "BrokerConfig",
    "JobJournal",
    "JobState",
    "JournalSnapshot",
    "POLICIES",
    "Rail",
    "RailFleet",
    "ServiceStats",
    "TransferBroker",
    "WorkloadConfig",
    "WorkloadGenerator",
    "pick_rail",
]
