"""Workload generators: who submits transfer jobs, when, and how big.

A :class:`WorkloadGenerator` is an ordinary simulation process that
draws inter-arrival gaps, tenant identities, file sizes and first-touch
NUMA nodes from four dedicated RNG streams —

* ``service.arrivals`` — inter-arrival gaps (plus thinning draws for
  the diurnal process),
* ``service.sizes``    — file-size draws,
* ``service.tenants``  — which tenant submits,
* ``service.placement`` — the job buffer's first-touch node (what an
  unpinned ``malloc`` would have done),

so adding the service layer perturbs no other consumer of the
registry (the repository's stream-per-component seed discipline,
MODELING.md §6), and two runs at one seed submit byte-identical job
streams regardless of scheduler policy — policies are compared on
*placement*, never on workload noise.

Arrival processes:

* ``poisson`` — homogeneous, exponential gaps at ``rate`` jobs/s;
* ``diurnal`` — nonhomogeneous Poisson via thinning: intensity
  ``rate * (1 + depth*sin(2*pi*t/period)) / (1 + depth)`` peaks at
  ``rate`` and dips to ``rate*(1-depth)/(1+depth)``.

Size distributions (heavy-tailed, mean-parameterised):

* ``lognormal`` — ``sigma`` controls the tail; the underlying ``mu`` is
  solved so the draw mean equals ``size_mean``;
* ``pareto``    — shape ``alpha`` (> 1), scale solved for the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.context import Context
from repro.util.units import MIB
from repro.util.validation import check_positive

__all__ = ["ARRIVALS", "SIZE_DISTS", "WorkloadConfig", "WorkloadGenerator"]

#: Supported arrival processes.
ARRIVALS = ("poisson", "diurnal")

#: Supported file-size distributions (``fixed`` = every job is exactly
#: ``size_mean`` bytes, drawing nothing from the sizes stream).
SIZE_DISTS = ("lognormal", "pareto", "fixed")


@dataclass(frozen=True)
class WorkloadConfig:
    """The job stream one broker serves."""

    #: Aggregate arrival rate in jobs/second (peak rate for ``diurnal``).
    rate: float = 20.0
    arrival: str = "poisson"
    #: Diurnal modulation depth in [0, 1) and period in seconds.
    diurnal_depth: float = 0.6
    diurnal_period: float = 30.0
    size_dist: str = "lognormal"
    #: Mean file size in bytes (the distribution is solved to this mean).
    size_mean: float = 256 * MIB
    #: Lognormal sigma (tail weight) — ~1 gives a 10x p99/mean spread.
    lognormal_sigma: float = 1.0
    #: Pareto shape; must be > 1 for the mean to exist.
    pareto_alpha: float = 1.8
    n_tenants: int = 8
    #: Jobs per arrival event.  1 reproduces the classic one-job-per-tick
    #: process exactly; > 1 submits a same-timestamp burst through the
    #: broker's ``submit_many`` (churn-heavy serving: group uploads,
    #: checkpoint fan-ins), exercising the coalesced settle path.
    burst: int = 1

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        check_positive("size_mean", self.size_mean)
        check_positive("n_tenants", self.n_tenants)
        check_positive("burst", self.burst)
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(
                f"size_dist must be one of {SIZE_DISTS}, got {self.size_dist!r}")
        if not (0.0 <= self.diurnal_depth < 1.0):
            raise ValueError(
                f"diurnal_depth must be in [0, 1), got {self.diurnal_depth}")
        check_positive("diurnal_period", self.diurnal_period)
        check_positive("lognormal_sigma", self.lognormal_sigma)
        if self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto_alpha must be > 1, got {self.pareto_alpha}")


class WorkloadGenerator:
    """Drives job submissions into a broker as a simulation process.

    ``submit(tenant, size_bytes, touch_node)`` is called at each
    arrival; it is the broker's ingress (but any callable works, which
    is what the unit tests exploit).  Nothing is scheduled and no RNG
    stream is touched until :meth:`start` — a constructed-but-idle
    generator is byte-invisible to the rest of the simulation.
    """

    def __init__(self, ctx: Context, config: WorkloadConfig,
                 submit: Callable[[str, float, int], object],
                 n_nodes: int = 2,
                 submit_many: Optional[Callable[[list], object]] = None):
        check_positive("n_nodes", n_nodes)
        self.ctx = ctx
        self.config = config
        self.submit = submit
        #: Optional bulk ingress for ``burst > 1`` arrivals; when absent
        #: a burst degrades to per-job ``submit`` calls (same draws).
        self.submit_many = submit_many
        self.n_nodes = n_nodes
        self.submitted = 0
        self._stopped = False

    # -- draws -------------------------------------------------------------
    def _draw_size(self) -> float:
        cfg = self.config
        if cfg.size_dist == "fixed":
            return float(cfg.size_mean)  # no draw: the stream is untouched
        rng = self.ctx.rng.stream("service.sizes")
        if cfg.size_dist == "lognormal":
            sigma = cfg.lognormal_sigma
            mu = math.log(cfg.size_mean) - 0.5 * sigma * sigma
            return float(rng.lognormal(mu, sigma))
        # pareto: scale solved so the mean is size_mean
        alpha = cfg.pareto_alpha
        xm = cfg.size_mean * (alpha - 1.0) / alpha
        return float(xm * (1.0 + rng.pareto(alpha)))

    def _draw_tenant(self) -> str:
        rng = self.ctx.rng.stream("service.tenants")
        return f"tenant{int(rng.integers(self.config.n_tenants))}"

    def _draw_touch_node(self) -> int:
        rng = self.ctx.rng.stream("service.placement")
        return int(rng.integers(self.n_nodes))

    def _intensity(self, t: float) -> float:
        """Diurnal intensity at simulated time *t* (peak = config.rate)."""
        cfg = self.config
        depth = cfg.diurnal_depth
        phase = math.sin(2.0 * math.pi * t / cfg.diurnal_period)
        return cfg.rate * (1.0 + depth * phase) / (1.0 + depth)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Begin submitting (schedules the arrival process)."""
        self.ctx.sim.process(self._run(), name="service/arrivals")

    def stop(self) -> None:
        """Stop after the current gap (no further submissions)."""
        self._stopped = True

    def _run(self):
        sim = self.ctx.sim
        cfg = self.config
        arrivals = self.ctx.rng.stream("service.arrivals")
        while not self._stopped:
            gap = float(arrivals.exponential(1.0 / cfg.rate))
            yield sim.timeout(gap)
            if self._stopped:
                return
            if cfg.arrival == "diurnal":
                # Thinning: candidate points arrive at the peak rate and
                # survive with probability intensity(t)/peak.
                if arrivals.random() >= self._intensity(sim.now) / cfg.rate:
                    continue
            if cfg.burst == 1:
                # The classic per-tick process, draw-for-draw identical
                # to every pre-burst seed.
                self.submitted += 1
                self.submit(self._draw_tenant(), self._draw_size(),
                            self._draw_touch_node())
                continue
            # Burst: one arrival event carries cfg.burst jobs, each with
            # its own draws in the per-job order (tenant, size, touch).
            jobs = [(self._draw_tenant(), self._draw_size(),
                     self._draw_touch_node()) for _ in range(cfg.burst)]
            self.submitted += len(jobs)
            if self.submit_many is not None:
                self.submit_many(jobs)
            else:
                for tenant, size, touch_node in jobs:
                    self.submit(tenant, size, touch_node)
