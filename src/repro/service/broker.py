"""The transfer broker: admission control, scheduling, sessions, recovery.

A :class:`TransferBroker` is the control plane of one simulated
transfer service.  Jobs arrive (usually from a
:class:`~repro.service.workload.WorkloadGenerator`), pass admission
control, wait in a bounded FIFO queue, and run as fluid flows across
the fleet's rails; completions come back from the fluid scheduler as
ordinary events.  Everything is deterministic per seed.

**Admission** enforces two budgets:

* a per-tenant quota on *concurrent running jobs* — a tenant over quota
  queues (it is not dropped), which is the multi-tenant fairness knob
  RDMAvisor-style sharing needs;
* an aggregate rail-bandwidth budget — the summed nominal demand of
  running jobs may not exceed ``budget_fraction`` times the fleet's
  rail capacity, bounding oversubscription of the fabric.

The queue itself is bounded: a submission that cannot start and finds
the queue full is **shed** and accounted per tenant (load shedding, not
silent loss).

**Scheduling** delegates placement to
:func:`repro.service.scheduler.pick_rail` (``fifo`` / ``numa-aware`` /
``numa-blind``).  A job placed on a rail local to its buffer runs at
the rail's full stream rate; a remote placement crosses QPI and pays
the calibrated remote-access stream derate — the paper's single-
transfer placement penalty, applied per job.

**Sessions** follow the middleware idiom (``iscsi.global.sessions``):
:meth:`sessions` lists live jobs, :meth:`session` inspects one,
:meth:`cancel` stops one mid-transfer and reclaims its quota and
bandwidth credits immediately.

**Faults**: with an active injector the broker registers as a transfer
listener; a dead rail's jobs are stopped, their remaining bytes
requeued at the head of the queue, and rescheduled onto surviving
rails (counted per job in ``reschedules``).

**Crash tolerance**: the broker itself is a fault target
(``crash@transfer:<name>``).  While down it refuses submissions
(counted ``dropped``) and observes nothing; the data plane — running
fluid flows — survives.  On restart a *journaled* broker replays its
write-ahead :class:`~repro.service.journal.JobJournal`, reconciles
against the surviving flows (late completions counted exactly once,
banked bytes preserved), re-adopts still-running work without touching
its connections, and drains the queued backlog through a
reconnect-rate limiter so restart cannot trigger a CM storm.  An
*amnesiac* broker (``journal=False``) loses the queue and orphans its
running flows — the availability gap ``ext-availability`` measures.

**Degraded mode** (all opt-in, defaults preserve byte-identity):
heartbeat-based rail health (``heartbeat_s``/``suspicion`` replace the
instant link-down hook with missed-beat detection), per-job retry
budgets with jittered exponential backoff between reschedules, and
priority-tiered brownout admission that sheds low-priority tenants
first when alive rail capacity drops.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.injector import faults_active
from repro.faults.recovery import REQUEUE_EPSILON_BYTES as _EPSILON_BYTES
from repro.service.fleet import Rail, RailFleet
from repro.service.journal import JobJournal
from repro.service.scheduler import POLICIES, pick_rail
from repro.service.workload import WorkloadConfig, WorkloadGenerator
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.util.validation import check_positive

__all__ = ["BrokerConfig", "JobState", "ServiceStats", "TransferBroker"]


class JobState(enum.Enum):
    """Lifecycle of one transfer job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    SHED = "shed"
    CANCELLED = "cancelled"
    #: Retry budget exhausted: the job was rescheduled too many times.
    FAILED = "failed"
    #: Forgotten by an amnesiac broker restart (queued work vanished,
    #: orphaned flows torn down, unobserved completions never accounted).
    LOST = "lost"


@dataclass(frozen=True)
class BrokerConfig:
    """Admission and scheduling knobs of one broker."""

    policy: str = "numa-aware"
    #: Max concurrent *running* jobs per tenant (over-quota jobs queue).
    tenant_quota: int = 8
    #: Bounded queue length; a submission finding it full is shed.
    max_queue: int = 256
    #: Aggregate running nominal demand <= fraction x fleet rail rate.
    budget_fraction: float = 1.5
    #: Keep a write-ahead job journal while a fault injector is armed
    #: (pure bookkeeping on fault-free paths; see repro.service.journal).
    journal: bool = True
    #: Restart backlog drain rate (job starts/second) after a crash;
    #: 0 dispatches the whole backlog at once (the CM-storm baseline).
    recovery_rate: float = 64.0
    #: Rail health heartbeat interval (seconds); 0 keeps the pre-PR
    #: instant link-down detection.
    heartbeat_s: float = 0.0
    #: Consecutive missed heartbeats before a rail is declared dead.
    suspicion: int = 3
    #: Max reschedules per job before it fails; 0 = unlimited retries.
    retry_budget: int = 0
    #: First retry-requeue delay (doubles per reschedule, jittered from
    #: the "service.retry" stream); 0 requeues immediately (pre-PR).
    retry_backoff_base: float = 0.0
    retry_backoff_cap: float = 2.0
    #: Tenant priority tiers (tenant index mod tiers; tier 0 highest).
    priority_tiers: int = 1
    #: Brownout admission: when alive rail capacity drops, shed the
    #: lowest tiers first (needs priority_tiers > 1 to do anything).
    brownout: bool = False

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")
        check_positive("tenant_quota", self.tenant_quota)
        check_positive("max_queue", self.max_queue)
        check_positive("budget_fraction", self.budget_fraction)
        check_positive("suspicion", self.suspicion)
        check_positive("priority_tiers", self.priority_tiers)
        for name in ("recovery_rate", "heartbeat_s", "retry_budget",
                     "retry_backoff_base"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.retry_backoff_base > 0 and (
                self.retry_backoff_cap < self.retry_backoff_base):
            raise ValueError("retry_backoff_cap must be >= retry_backoff_base")


class ServiceStats:
    """Broker counters, with process-global totals for report footers.

    Mirrors :class:`~repro.faults.injector.FaultStats`: instance
    counters track one broker, the class attributes aggregate across
    every broker ever created in this process.
    """

    __slots__ = ("submitted", "completed", "shed", "cancelled",
                 "rescheduled", "remote_placements", "bytes_completed",
                 "crashes", "replayed", "lost", "lost_bytes", "dropped",
                 "failed", "browned_out")

    total_submitted = 0
    total_completed = 0
    total_shed = 0
    total_cancelled = 0
    total_rescheduled = 0
    total_remote_placements = 0
    total_bytes_completed = 0.0
    total_crashes = 0
    total_replayed = 0
    total_lost = 0
    total_lost_bytes = 0.0
    total_dropped = 0
    total_failed = 0
    total_browned_out = 0

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.cancelled = 0
        self.rescheduled = 0
        self.remote_placements = 0
        self.bytes_completed = 0.0
        self.crashes = 0
        self.replayed = 0
        self.lost = 0
        self.lost_bytes = 0.0
        self.dropped = 0
        self.failed = 0
        self.browned_out = 0

    def count_submitted(self) -> None:
        self.submitted += 1
        ServiceStats.total_submitted += 1

    def count_completed(self, nbytes: float) -> None:
        self.completed += 1
        self.bytes_completed += nbytes
        ServiceStats.total_completed += 1
        ServiceStats.total_bytes_completed += nbytes

    def count_shed(self) -> None:
        self.shed += 1
        ServiceStats.total_shed += 1

    def count_cancelled(self) -> None:
        self.cancelled += 1
        ServiceStats.total_cancelled += 1

    def count_rescheduled(self) -> None:
        self.rescheduled += 1
        ServiceStats.total_rescheduled += 1

    def count_remote_placement(self) -> None:
        self.remote_placements += 1
        ServiceStats.total_remote_placements += 1

    def count_crash(self) -> None:
        self.crashes += 1
        ServiceStats.total_crashes += 1

    def count_replayed(self) -> None:
        self.replayed += 1
        ServiceStats.total_replayed += 1

    def count_lost(self, nbytes: float) -> None:
        self.lost += 1
        self.lost_bytes += nbytes
        ServiceStats.total_lost += 1
        ServiceStats.total_lost_bytes += nbytes

    def count_dropped(self) -> None:
        self.dropped += 1
        ServiceStats.total_dropped += 1

    def count_failed(self) -> None:
        self.failed += 1
        ServiceStats.total_failed += 1

    def count_browned_out(self) -> None:
        self.browned_out += 1
        ServiceStats.total_browned_out += 1

    @classmethod
    def process_totals(cls) -> dict:
        """The process-global counters as a plain dict."""
        return {
            "submitted": cls.total_submitted,
            "completed": cls.total_completed,
            "shed": cls.total_shed,
            "cancelled": cls.total_cancelled,
            "rescheduled": cls.total_rescheduled,
            "remote_placements": cls.total_remote_placements,
            "bytes_completed": cls.total_bytes_completed,
            "crashes": cls.total_crashes,
            "replayed": cls.total_replayed,
            "lost": cls.total_lost,
            "lost_bytes": cls.total_lost_bytes,
            "dropped": cls.total_dropped,
            "failed": cls.total_failed,
            "browned_out": cls.total_browned_out,
        }

    def as_dict(self) -> dict:
        """The instance counters as a plain dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "rescheduled": self.rescheduled,
            "remote_placements": self.remote_placements,
            "bytes_completed": self.bytes_completed,
            "crashes": self.crashes,
            "replayed": self.replayed,
            "lost": self.lost,
            "lost_bytes": self.lost_bytes,
            "dropped": self.dropped,
            "failed": self.failed,
            "browned_out": self.browned_out,
        }


@dataclass(eq=False)
class _Job:
    """Broker-internal job record (sessions render it to plain dicts)."""

    job_id: int
    tenant: str
    size: float
    touch_node: int
    submitted_at: float
    state: JobState = JobState.QUEUED
    remaining: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rail: Optional[Rail] = None
    buffer_node: Optional[int] = None
    flow: Optional[FluidFlow] = None
    reschedules: int = 0
    #: Bytes completed by earlier flow generations (pre-reschedule).
    banked: float = 0.0


def _tenant_row() -> Dict[str, Any]:
    return {"submitted": 0, "completed": 0, "shed": 0, "cancelled": 0,
            "rescheduled": 0, "bytes": 0.0}


class TransferBroker:
    """One long-running transfer service over one :class:`RailFleet`."""

    def __init__(self, ctx: Context, fleet: RailFleet,
                 config: BrokerConfig = BrokerConfig(),
                 workload: Optional[WorkloadConfig] = None,
                 name: str = "service"):
        self.ctx = ctx
        self.fleet = fleet
        self.config = config
        self.name = name
        self.stats = ServiceStats()
        self.tenants: Dict[str, Dict[str, Any]] = {}
        self._jobs: Dict[int, _Job] = {}
        self._queue: Deque[_Job] = deque()
        self._next_id = 1
        self._cursor = 0  # fifo policy round-robin position
        self._running_by_tenant: Dict[str, int] = {}
        self._nominal = min(r.rate for r in fleet.rails)
        self._budget = config.budget_fraction * fleet.total_rate
        self._budget_used = 0.0
        self._latencies: List[float] = []
        #: Memoized static routes keyed (rail.index, buffer_node); cleared
        #: on fault-driven topology change (on_link_down / on_link_up).
        self._path_cache: Dict[Any, Any] = {}
        self.generator: Optional[WorkloadGenerator] = None
        if workload is not None:
            self.generator = WorkloadGenerator(
                ctx, workload, self.submit,
                n_nodes=fleet.hosts[0].n_nodes,
                submit_many=self.submit_many)
        # Fault integration is opt-in by plan: with no active injector
        # the broker registers nothing and the hooks below never run.
        inj = faults_active(ctx)
        self._inj = inj
        if inj is not None:
            inj.add_transfer(name, self)
        # Crash-tolerance state.  The journal only exists while an
        # injector is armed: no injector means no crash fault can fire,
        # and a fault-free run must not pay even the append cost.
        self.journal = JobJournal() if config.journal and inj is not None else None
        self._crashed = False
        #: Flow completions observed while crashed: reconciled (journaled)
        #: or forgotten (amnesiac) at restart.
        self._pending_done: List[Tuple[_Job, FluidFlow]] = []
        self._recovering = False
        self._pacer_gen = 0
        #: (time, bytes) per completion while an injector is armed — the
        #: goodput timeline MTTR curves are cut from.
        self._completion_log: List[Tuple[float, float]] = []
        self._retry_rng = None
        # Heartbeat-based rail health is opt-in; with it on, link-down
        # hooks defer to the monitor (missed beats accumulate suspicion).
        self._heartbeat_enabled = config.heartbeat_s > 0.0 and inj is not None
        if self._heartbeat_enabled:
            ctx.sim.process(self._heartbeat(), name=f"{name}/heartbeat")

    # -- ingress -----------------------------------------------------------
    def serve(self) -> None:
        """Start accepting the configured workload (begins arrivals)."""
        if self.generator is None:
            raise RuntimeError(f"broker {self.name!r} has no workload attached")
        self.generator.start()

    def drain(self) -> None:
        """Stop the arrival process (running jobs keep going)."""
        if self.generator is not None:
            self.generator.stop()

    def submit(self, tenant: str, size: float, touch_node: int = 0) -> Optional[int]:
        """Submit one job; returns its session id, or None when shed."""
        return self._submit_one(tenant, size, touch_node, None)

    def submit_many(
        self, arrivals: Iterable[Tuple[str, float, int]],
    ) -> List[Optional[int]]:
        """Submit a same-timestamp burst; one id (or None) per arrival.

        Admission, placement and shed decisions are made in arrival
        order — exactly the decisions a loop of :meth:`submit` would
        make — but when the fluid scheduler coalesces churn the whole
        burst's flow starts are deferred and launched through one
        :meth:`~repro.sim.fluid.FluidScheduler.start_many` settle.
        """
        batch: Optional[List[Tuple[_Job, FluidFlow]]] = (
            [] if self.ctx.fluid.coalescing else None)
        ids = [self._submit_one(tenant, size, touch_node, batch)
               for tenant, size, touch_node in arrivals]
        if batch:
            self._launch_many(batch)
        return ids

    def _submit_one(self, tenant: str, size: float, touch_node: int,
                    batch: Optional[List[Tuple["_Job", FluidFlow]]],
                    ) -> Optional[int]:
        check_positive("size", size)
        if self._crashed:
            # A dead control plane accepts nothing: the client's request
            # vanishes (no job record, no journal entry, no session id).
            self.stats.count_dropped()
            return None
        job = _Job(
            job_id=self._next_id, tenant=tenant, size=float(size),
            touch_node=touch_node, submitted_at=self.ctx.now,
            remaining=float(size),
        )
        self._next_id += 1
        self.stats.count_submitted()
        row = self.tenants.setdefault(tenant, _tenant_row())
        row["submitted"] += 1
        self._jobs[job.job_id] = job
        if self._browned_out(tenant):
            # Brownout admission: capacity dropped, low tiers shed first.
            job.state = JobState.SHED
            job.finished_at = self.ctx.now
            self.stats.count_shed()
            self.stats.count_browned_out()
            row["shed"] += 1
            return None
        self._queue.append(job)
        if self.journal is not None:
            self.journal.log_submit(job.job_id)
        self._dispatch(batch)
        if job.state is JobState.QUEUED and len(self._queue) > self.config.max_queue:
            # Bounded queue: the newcomer is shed, not an older job.
            self._queue.remove(job)
            job.state = JobState.SHED
            job.finished_at = self.ctx.now
            if self.journal is not None:
                self.journal.log_terminal(job.job_id)
            self.stats.count_shed()
            row["shed"] += 1
            return None
        return job.job_id

    def _tenant_tier(self, tenant: str) -> int:
        """The tenant's priority tier (0 = highest): index mod tiers."""
        # Workload tenants are "tenant<N>"; tier off the trailing digits,
        # falling back to a deterministic byte sum for free-form names.
        i = len(tenant)
        while i > 0 and tenant[i - 1].isdigit():
            i -= 1
        index = int(tenant[i:]) if i < len(tenant) else sum(tenant.encode())
        return index % self.config.priority_tiers

    def _browned_out(self, tenant: str) -> bool:
        """Brownout check: shed the lowest tiers while capacity is down.

        With ``alive_fraction`` of rail capacity up, only the top
        ``ceil(tiers x alive_fraction)`` tiers are admitted — a fleet at
        half capacity with four tiers serves tiers 0-1 and sheds 2-3.
        """
        cfg = self.config
        if not cfg.brownout or cfg.priority_tiers <= 1:
            return False
        total = self.fleet.total_rate
        alive = sum(r.rate for r in self.fleet.rails if r.alive)
        if alive >= total:
            return False
        admitted = max(1, math.ceil(cfg.priority_tiers * (alive / total)))
        return self._tenant_tier(tenant) >= admitted

    # -- admission + dispatch ----------------------------------------------
    def _admissible(self, job: _Job) -> bool:
        """Both admission clauses (inlined in ``_dispatch``'s hot scan)."""
        if self._running_by_tenant.get(job.tenant, 0) >= self.config.tenant_quota:
            return False
        return self._budget_used + self._nominal <= self._budget

    def _dispatch(
        self, batch: Optional[List[Tuple["_Job", FluidFlow]]] = None,
        limit: Optional[int] = None, force: bool = False,
    ) -> None:
        """Start every queued job that admission and placement allow.

        Scans in FIFO order; jobs blocked on quota or budget are skipped
        rather than head-of-line blocking unrelated tenants.  Under a
        coalescing fluid scheduler the pass defers every zero-delay
        launch and starts them through one bulk ``start_many`` settle;
        a caller-supplied *batch* (``submit_many``) widens that to the
        whole arrival burst.  Control-plane decisions are identical
        either way: placement reads rail loads, which ``_start``
        updates immediately.

        While crashed nothing dispatches; while draining a restart
        backlog only the pacer itself dispatches (``force``), with
        *limit* bounding each paced pass to one connection setup.
        """
        if self._crashed or (self._recovering and not force):
            return
        if not self._queue:
            return
        local = batch is None and self.ctx.fluid.coalescing
        if local:
            batch = []
        started: List[_Job] = []
        # Both admission clauses only tighten while the scan runs (starts
        # consume quota and budget; nothing frees them mid-scan), so a
        # tenant that fails quota stays failed for the rest of the scan
        # and a budget failure ends it.  Skipping on those facts is a
        # pure shortcut: the skipped iterations had no side effects.
        quota = self.config.tenant_quota
        running = self._running_by_tenant
        over_quota: set = set()
        for job in self._queue:
            if self._budget_used + self._nominal > self._budget:
                break  # budget exhausted: nothing else is admissible
            tenant = job.tenant
            if tenant in over_quota:
                continue
            if running.get(tenant, 0) >= quota:
                over_quota.add(tenant)
                continue
            rail, buffer_node, self._cursor = pick_rail(
                self.fleet.rails, self.config.policy, job.touch_node,
                self._cursor)
            if rail is None:
                break  # no live rails: leave the queue intact
            self._start(job, rail, buffer_node, batch)
            started.append(job)
            if limit is not None and len(started) >= limit:
                break
        for job in started:
            self._queue.remove(job)
        if local and batch:
            self._launch_many(batch)

    def _base_route(self, rail: Rail, buffer_node: int):
        """Memoized static rail route: ``(path, cap, remote)``.

        The route, its capacity, and whether the placement is remote
        depend only on (rail, buffer node) — never on the job — so they
        are computed once and cached until a fault changes the topology
        (see :meth:`on_link_down` / :meth:`on_link_up`).  Per-job taxes
        (stats, QP acquisition, boundary legs) stay in ``_job_path``.
        """
        key = (rail.index, buffer_node)
        hit = self._path_cache.get(key)
        if hit is not None:
            return hit
        nic, peer = rail.nic, rail.peer
        path = nic.dma_read_path(buffer_node)
        path.append((rail.link.direction(nic), 1.0))
        path += peer.dma_write_path(peer.node)
        cap = rail.rate
        remote = buffer_node != rail.node
        if remote:
            # Remote DMA read: the stream derates even uncontended (the
            # placement penalty the paper's NUMA tuning removes).
            cap *= self.ctx.cal.remote_access_derate
        hit = (tuple(path), cap, remote)
        self._path_cache[key] = hit
        return hit

    def _job_path(self, job: _Job, rail: Rail, buffer_node: int):
        """The job's fluid route: ``(path, cap, setup_delay, charges)``.

        Subclasses override this to reroute classes of jobs (e.g. the
        fleet broker sends WAN tenants out the pod uplink) or to tax
        admission (QP-cache derates, CM setup delays).  The default is
        the paper's host-to-sink rail route with the NUMA placement
        penalty and no delay.
        """
        path, cap, remote = self._base_route(rail, buffer_node)
        if remote:
            self.stats.count_remote_placement()
        return path, cap, 0.0, ()

    def _start(self, job: _Job, rail: Rail, buffer_node: int,
               batch: Optional[List[Tuple["_Job", FluidFlow]]] = None) -> None:
        path, cap, delay, charges = self._job_path(job, rail, buffer_node)
        flow = FluidFlow(
            path, size=job.remaining, cap=cap, charges=charges,
            name=f"{self.name}-j{job.job_id}g{job.reschedules}",
        )
        job.state = JobState.RUNNING
        job.rail = rail
        job.buffer_node = buffer_node
        job.flow = flow
        if job.started_at is None:
            job.started_at = self.ctx.now
        if self.journal is not None:
            self.journal.log_start(job.job_id)
        rail.jobs[job] = None
        self._running_by_tenant[job.tenant] = (
            self._running_by_tenant.get(job.tenant, 0) + 1)
        self._budget_used += self._nominal
        if delay > 0.0:
            # Setup tax (e.g. a CM handshake): the job holds its rail
            # slot and credits but moves no bytes until the delay runs.
            self.ctx.sim.timeout(delay).add_callback(
                lambda _ev, job=job, flow=flow: self._launch(job, flow))
        elif batch is not None:
            batch.append((job, flow))
        else:
            self._launch(job, flow)

    def _launch(self, job: _Job, flow: FluidFlow) -> None:
        if job.state is not JobState.RUNNING or job.flow is not flow:
            return  # cancelled or rescheduled during its setup delay
        done = self.ctx.fluid.start(flow)
        done.add_callback(lambda _ev, job=job, flow=flow:
                          self._on_done(job, flow))

    def _launch_many(
        self, batch: List[Tuple["_Job", FluidFlow]],
    ) -> None:
        """Start a dispatch pass's deferred flows in one bulk settle."""
        live = [(job, flow) for job, flow in batch
                if job.state is JobState.RUNNING and job.flow is flow]
        events = self.ctx.fluid.start_many([flow for _job, flow in live])
        for (job, flow), done in zip(live, events):
            done.add_callback(lambda _ev, job=job, flow=flow:
                              self._on_done(job, flow))

    def _halt(self, job: _Job) -> float:
        """Stop the job's flow (if it ever started) and return its bytes."""
        flow = job.flow
        if flow is None:
            return 0.0
        if flow._active:
            return self.ctx.fluid.stop(flow)
        return flow.transferred  # still in setup delay: nothing moved

    def _job_released(self, job: _Job) -> None:
        """Hook: the job is giving back its rail slot (subclass taps)."""

    def _release(self, job: _Job) -> None:
        """Return the job's rail slot, quota and bandwidth credits."""
        self._job_released(job)
        if job.rail is not None:
            job.rail.jobs.pop(job, None)
        self._running_by_tenant[job.tenant] -= 1
        self._budget_used -= self._nominal
        job.rail = None
        job.flow = None

    def _on_done(self, job: _Job, flow: FluidFlow) -> None:
        if self._crashed:
            # The data plane finished a transfer nobody was watching.
            # Hold the observation; restart reconciles it (journaled)
            # or forgets it ever happened (amnesiac).
            self._pending_done.append((job, flow))
            return
        # Cancel and reschedule paths stop the flow themselves (which
        # also fires this callback) after updating the job's state, so
        # anything but a RUNNING job on its current flow is stale here.
        if job.state is not JobState.RUNNING or job.flow is not flow:
            return
        job.banked += flow.transferred
        self._complete(job)
        self._dispatch()

    def _complete(self, job: _Job, release: bool = True) -> None:
        """Account one completion exactly once (live or replayed)."""
        job.state = JobState.COMPLETED
        job.finished_at = self.ctx.now
        if release:
            self._release(job)
        self._latencies.append(job.finished_at - job.submitted_at)
        self.stats.count_completed(job.size)
        if self.journal is not None:
            self.journal.log_terminal(job.job_id)
        if self._inj is not None:
            self._completion_log.append((self.ctx.now, job.size))
        row = self.tenants[job.tenant]
        row["completed"] += 1
        row["bytes"] += job.size

    # -- session API (the iscsi.global.sessions idiom) ---------------------
    def _session_row(self, job: _Job) -> Dict[str, Any]:
        transferred = job.banked
        if job.flow is not None:
            transferred += job.flow.transferred
        return {
            "id": job.job_id,
            "tenant": job.tenant,
            "state": job.state.value,
            "size": job.size,
            "transferred": transferred,
            "rail": None if job.rail is None else job.rail.index,
            "buffer_node": job.buffer_node,
            "touch_node": job.touch_node,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "reschedules": job.reschedules,
        }

    def sessions(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Live (queued or running) sessions, oldest first."""
        return [
            self._session_row(job)
            for job in self._jobs.values()
            if job.state in (JobState.QUEUED, JobState.RUNNING)
            and (tenant is None or job.tenant == tenant)
        ]

    def session(self, job_id: int) -> Dict[str, Any]:
        """Inspect one session (any state); raises KeyError if unknown."""
        return self._session_row(self._jobs[job_id])

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running session; reclaims its credits.

        Returns True if the job was cancelled, False if it had already
        reached a terminal state.
        """
        if self._crashed:
            return False  # nobody is listening
        job = self._jobs[job_id]
        if job.state is JobState.QUEUED:
            try:
                self._queue.remove(job)
            except ValueError:
                pass  # waiting out a retry backoff: queued but not enqueued
            job.state = JobState.CANCELLED
        elif job.state is JobState.RUNNING:
            job.state = JobState.CANCELLED
            job.banked += self._halt(job)
            self._release(job)
        else:
            return False
        job.finished_at = self.ctx.now
        if self.journal is not None:
            self.journal.log_terminal(job.job_id)
        self.stats.count_cancelled()
        self.tenants[job.tenant]["cancelled"] += 1
        self._dispatch()
        return True

    # -- fault hooks (invoked by an active FaultInjector only) -------------
    def _reschedule_rail(self, rail: Rail) -> None:
        """Kill a dead rail's jobs and requeue their remaining bytes."""
        victims = sorted(rail.jobs, key=lambda j: j.job_id)
        for job in victims:
            job.state = JobState.QUEUED  # before stop: staleness guard
        if self.ctx.fluid.coalescing:
            # Bulk halt: one settle covers every victim; the accounting
            # loop below then reads the already-frozen ``transferred``
            # values (``_halt`` on a deactivated flow is a pure read).
            active = [job.flow for job in victims
                      if job.flow is not None and job.flow._active]
            if active:
                self.ctx.fluid.finish_many(active)
        budget = self.config.retry_budget
        for job in victims:
            job.banked += self._halt(job)
            self._release(job)
            job.remaining = job.size - job.banked
            job.reschedules += 1
            self.stats.count_rescheduled()
            self.tenants[job.tenant]["rescheduled"] += 1
            if job.remaining <= _EPSILON_BYTES:
                # it was done modulo float dust: count the completion
                self._complete(job, release=False)
            elif budget > 0 and job.reschedules > budget:
                # Retry budget exhausted: fail the job instead of letting
                # it bounce between dying rails forever.
                job.state = JobState.FAILED
                job.finished_at = self.ctx.now
                self.stats.count_failed()
                if self.journal is not None:
                    self.journal.log_terminal(job.job_id)
        base = self.config.retry_backoff_base
        if base > 0.0:
            # Jittered exponential backoff: each survivor rejoins the
            # queue after base x 2^(reschedules-1) seconds (capped),
            # jittered by a [0.5, 1.5) factor from the dedicated
            # "service.retry" stream so synchronized victims do not
            # reconnect in lockstep.  The journal records the requeue
            # decision now (WAL: decision before effect).
            rng = self._retry_stream()
            for job in victims:
                if job.state is not JobState.QUEUED:
                    continue
                if self.journal is not None:
                    self.journal.log_requeue(job.job_id, job.banked)
                delay = min(self.config.retry_backoff_cap,
                            base * 2.0 ** (job.reschedules - 1))
                delay *= 0.5 + rng.random()
                self.ctx.sim.timeout(delay).add_callback(
                    lambda _ev, job=job: self._requeue_after_backoff(job))
        else:
            # Requeue in submit order ahead of newer arrivals.
            for job in reversed(victims):
                if job.state is JobState.QUEUED:
                    if self.journal is not None:
                        self.journal.log_requeue(job.job_id, job.banked)
                    self._queue.appendleft(job)

    def _retry_stream(self):
        """The lazily-created retry-jitter RNG (own stream: drawing it
        never perturbs the "faults" or workload sequences)."""
        if self._retry_rng is None:
            self._retry_rng = self.ctx.rng.stream("service.retry")
        return self._retry_rng

    def _requeue_after_backoff(self, job: _Job) -> None:
        if job.state is not JobState.QUEUED or job in self._queue:
            return  # cancelled/failed meanwhile, or a restart restored it
        self._queue.appendleft(job)
        self._dispatch()

    def on_link_down(self, link, permanent: bool) -> None:
        """Injector hook: a rail's link went dark — reschedule its jobs."""
        if self._heartbeat_enabled:
            return  # the heartbeat monitor declares rail death, not the wire
        rail = self.fleet.rail_for_link(link)
        if rail is None or not rail.alive:
            return
        rail.alive = False
        self._path_cache.clear()  # topology changed: drop memoized routes
        if self._crashed:
            # No control plane to reschedule: the restart reconciles the
            # dead rail's stranded jobs (journaled) or loses them.
            return
        self._reschedule_rail(rail)
        self._dispatch()

    def on_link_up(self, link) -> None:
        """Injector hook: a dead rail returned — resume scheduling on it."""
        rail = self.fleet.rail_for_link(link)
        if rail is None or rail.alive:
            return
        rail.alive = True
        rail.suspect = 0
        self._path_cache.clear()  # topology changed: drop memoized routes
        self._dispatch()

    def _heartbeat(self):
        """Rail-health monitor: suspicion accumulates over missed beats.

        Every ``heartbeat_s`` the monitor probes each schedulable rail;
        a failed link misses its beat and gains a suspicion point, a
        healthy probe clears them.  At ``suspicion`` consecutive misses
        the rail is declared dead and its jobs reschedule — trading the
        pre-PR instant detection for tolerance of blips shorter than
        ``heartbeat_s x suspicion``.
        """
        cfg = self.config
        while True:
            yield self.ctx.sim.timeout(cfg.heartbeat_s)
            if self._crashed:
                continue  # a dead broker probes nothing
            declared = False
            for rail in self.fleet.rails:
                if not rail.alive:
                    continue
                if rail.link.failed:
                    rail.suspect += 1
                    if rail.suspect >= cfg.suspicion:
                        rail.alive = False
                        rail.suspect = 0
                        self._path_cache.clear()
                        self._reschedule_rail(rail)
                        declared = True
                else:
                    rail.suspect = 0
            if declared:
                self._dispatch()

    def on_crash(self, restart_delay: float) -> None:
        """Injector hook (``crash@transfer:<name>``): the broker dies.

        The data plane survives — running fluid flows keep moving bytes
        — but the control plane goes dark: submissions drop, completions
        go unobserved, dead rails go unhandled.  After *restart_delay*
        seconds the broker restarts and reconciles (see ``_restart``).
        """
        if self._crashed:
            return
        self._crashed = True
        self.stats.count_crash()
        self._pacer_gen += 1  # orphan any in-flight recovery pacer
        self._recovering = False
        self.ctx.trace.emit("service", "crash", broker=self.name,
                            restart_delay=restart_delay)
        self.ctx.sim.timeout(max(0.0, restart_delay)).add_callback(
            lambda _ev: self._restart())

    def _restart(self) -> None:
        """Come back from a crash: reconcile (journaled) or forget."""
        self._crashed = False
        self.ctx.trace.emit(
            "service", "restart", broker=self.name,
            journaled=self.journal is not None,
            pending=len(self._pending_done))
        pending = self._pending_done
        self._pending_done = []
        self._path_cache.clear()
        if self.journal is None:
            self._restart_amnesiac(pending)
        else:
            self._restart_journaled(pending)

    def _restart_amnesiac(self, pending: List[Tuple[_Job, FluidFlow]]) -> None:
        """The baseline restart: no journal, so no memory of any job.

        Queued work vanishes, running flows are orphaned connections the
        fresh broker tears down, and completions that landed during the
        outage (*pending*) were never written anywhere — their bytes
        moved but are lost to the ledger.  Exactly the availability gap
        ``ext-availability`` quantifies.
        """
        for job, flow in pending:
            if job.state is not JobState.RUNNING or job.flow is not flow:
                continue
            job.banked += flow.transferred
            job.state = JobState.LOST
            job.finished_at = self.ctx.now
            self._release(job)
            self.stats.count_lost(job.banked)
        for rail in self.fleet.rails:
            for job in sorted(rail.jobs, key=lambda j: j.job_id):
                job.banked += self._halt(job)
                self._release(job)
                job.state = JobState.LOST
                job.finished_at = self.ctx.now
                self.stats.count_lost(job.banked)
        for job in list(self._queue):
            job.state = JobState.LOST
            job.finished_at = self.ctx.now
            self.stats.count_lost(job.banked)
        self._queue.clear()
        self._dispatch()

    def _restart_journaled(self, pending: List[Tuple[_Job, FluidFlow]]) -> None:
        """Replay the journal and reconcile with the surviving data plane.

        Completions that landed during the outage are accounted exactly
        once (their latency honestly includes the outage); still-running
        flows are re-adopted in place — no teardown, no CM storm; the
        queued backlog is rebuilt with banked bytes intact and drained
        through the ``recovery_rate`` pacer.
        """
        assert self.journal is not None
        for job, flow in pending:
            if job.state is not JobState.RUNNING or job.flow is not flow:
                continue  # superseded while crashed (e.g. rail death raced)
            job.banked += flow.transferred
            self._complete(job)
            self.stats.count_replayed()
        snap = self.journal.replay()
        # Rebuild the queue from the replayed snapshot.  Jobs the live
        # queue still holds are re-adopted; the rebuild also restores
        # banked bytes recorded in requeue entries (exactly-once: sizes
        # and banked bytes come from the journal, not guesses).
        self._queue.clear()
        for job_id in snap.queued:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue
            banked = snap.banked.get(job_id)
            if banked is not None and banked > job.banked:
                job.banked = banked
            job.remaining = job.size - job.banked
            self._queue.append(job)
            self.stats.count_replayed()
        # Dead rails that still hold stranded jobs (their link died while
        # the control plane was down) reschedule now.
        for rail in self.fleet.rails:
            if not rail.alive and rail.jobs:
                self._reschedule_rail(rail)
        if self.config.recovery_rate > 0.0 and self._queue:
            # Reconnect-rate limiter: drain the backlog at recovery_rate
            # connection setups per second instead of one thundering herd.
            self._recovering = True
            self._pacer_gen += 1
            self.ctx.sim.process(
                self._drain_backlog(self._pacer_gen),
                name=f"{self.name}/recovery")
        else:
            self._dispatch()

    def _drain_backlog(self, gen: int):
        """The recovery pacer: one paced dispatch per ``1/recovery_rate`` s."""
        gap = 1.0 / self.config.recovery_rate
        while (gen == self._pacer_gen and not self._crashed
               and self._queue):
            self._dispatch(limit=1, force=True)
            yield self.ctx.sim.timeout(gap)
        if gen == self._pacer_gen:
            self._recovering = False
            if not self._crashed:
                self._dispatch()

    # -- telemetry ---------------------------------------------------------
    @property
    def running(self) -> int:
        """Jobs currently running."""
        return sum(rail.load for rail in self.fleet.rails)

    @property
    def queued(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self._queue)

    @property
    def latencies(self) -> List[float]:
        """Completed-job sojourn times, completion order (a copy)."""
        return list(self._latencies)

    def latency_percentiles(self, qs=(50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Sojourn-time percentiles (seconds) over completed jobs."""
        if not self._latencies:
            return {f"p{q:g}": float("nan") for q in qs}
        arr = np.asarray(self._latencies)
        return {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}

    def summary(self) -> Dict[str, Any]:
        """One leg's worth of broker metrics (JSON-canonical)."""
        out: Dict[str, Any] = {
            "policy": self.config.policy,
            "rails": len(self.fleet.rails),
            "running": self.running,
            "queued": self.queued,
            **self.stats.as_dict(),
            **self.latency_percentiles(),
            "tenants": {t: dict(row) for t, row in sorted(self.tenants.items())},
        }
        return out

    def audit(self) -> Dict[str, Any]:
        """Exactly-once conservation check over every job ever admitted.

        The availability experiment and CI smoke gate on this: after any
        crash/restart sequence every submitted job must sit in exactly
        one terminal-or-live state, completed counts must match
        completed jobs one-for-one, and completed bytes must equal the
        sum of completed sizes (no loss, no double counting).
        """
        by_state: Dict[str, int] = {s.value: 0 for s in JobState}
        completed_bytes = 0.0
        for job in self._jobs.values():
            by_state[job.state.value] += 1
            if job.state is JobState.COMPLETED:
                completed_bytes += job.size
        live = by_state["queued"] + by_state["running"]
        terminal = (by_state["completed"] + by_state["shed"]
                    + by_state["cancelled"] + by_state["failed"]
                    + by_state["lost"])
        s = self.stats
        return {
            "by_state": by_state,
            "jobs_conserved": s.submitted == live + terminal,
            "completions_exact": s.completed == by_state["completed"],
            "bytes_exact": abs(s.bytes_completed - completed_bytes)
            <= max(1e-6, 1e-9 * completed_bytes),
            "unobserved": len(self._pending_done),
            "journaled": self.journal is not None,
            "journal_records": 0 if self.journal is None else len(self.journal),
            "crashes": s.crashes,
        }

    def goodput_timeline(self) -> List[Tuple[float, float]]:
        """(time, bytes) completion events (armed-injector runs only)."""
        return list(self._completion_log)
