"""The transfer broker: admission control, scheduling, sessions, recovery.

A :class:`TransferBroker` is the control plane of one simulated
transfer service.  Jobs arrive (usually from a
:class:`~repro.service.workload.WorkloadGenerator`), pass admission
control, wait in a bounded FIFO queue, and run as fluid flows across
the fleet's rails; completions come back from the fluid scheduler as
ordinary events.  Everything is deterministic per seed.

**Admission** enforces two budgets:

* a per-tenant quota on *concurrent running jobs* — a tenant over quota
  queues (it is not dropped), which is the multi-tenant fairness knob
  RDMAvisor-style sharing needs;
* an aggregate rail-bandwidth budget — the summed nominal demand of
  running jobs may not exceed ``budget_fraction`` times the fleet's
  rail capacity, bounding oversubscription of the fabric.

The queue itself is bounded: a submission that cannot start and finds
the queue full is **shed** and accounted per tenant (load shedding, not
silent loss).

**Scheduling** delegates placement to
:func:`repro.service.scheduler.pick_rail` (``fifo`` / ``numa-aware`` /
``numa-blind``).  A job placed on a rail local to its buffer runs at
the rail's full stream rate; a remote placement crosses QPI and pays
the calibrated remote-access stream derate — the paper's single-
transfer placement penalty, applied per job.

**Sessions** follow the middleware idiom (``iscsi.global.sessions``):
:meth:`sessions` lists live jobs, :meth:`session` inspects one,
:meth:`cancel` stops one mid-transfer and reclaims its quota and
bandwidth credits immediately.

**Faults**: with an active injector the broker registers as a transfer
listener; a dead rail's jobs are stopped, their remaining bytes
requeued at the head of the queue, and rescheduled onto surviving
rails (counted per job in ``reschedules``).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.injector import faults_active
from repro.faults.recovery import REQUEUE_EPSILON_BYTES as _EPSILON_BYTES
from repro.service.fleet import Rail, RailFleet
from repro.service.scheduler import POLICIES, pick_rail
from repro.service.workload import WorkloadConfig, WorkloadGenerator
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.util.validation import check_positive

__all__ = ["BrokerConfig", "JobState", "ServiceStats", "TransferBroker"]


class JobState(enum.Enum):
    """Lifecycle of one transfer job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    SHED = "shed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class BrokerConfig:
    """Admission and scheduling knobs of one broker."""

    policy: str = "numa-aware"
    #: Max concurrent *running* jobs per tenant (over-quota jobs queue).
    tenant_quota: int = 8
    #: Bounded queue length; a submission finding it full is shed.
    max_queue: int = 256
    #: Aggregate running nominal demand <= fraction x fleet rail rate.
    budget_fraction: float = 1.5

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")
        check_positive("tenant_quota", self.tenant_quota)
        check_positive("max_queue", self.max_queue)
        check_positive("budget_fraction", self.budget_fraction)


class ServiceStats:
    """Broker counters, with process-global totals for report footers.

    Mirrors :class:`~repro.faults.injector.FaultStats`: instance
    counters track one broker, the class attributes aggregate across
    every broker ever created in this process.
    """

    __slots__ = ("submitted", "completed", "shed", "cancelled",
                 "rescheduled", "remote_placements", "bytes_completed")

    total_submitted = 0
    total_completed = 0
    total_shed = 0
    total_cancelled = 0
    total_rescheduled = 0
    total_remote_placements = 0
    total_bytes_completed = 0.0

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.cancelled = 0
        self.rescheduled = 0
        self.remote_placements = 0
        self.bytes_completed = 0.0

    def count_submitted(self) -> None:
        self.submitted += 1
        ServiceStats.total_submitted += 1

    def count_completed(self, nbytes: float) -> None:
        self.completed += 1
        self.bytes_completed += nbytes
        ServiceStats.total_completed += 1
        ServiceStats.total_bytes_completed += nbytes

    def count_shed(self) -> None:
        self.shed += 1
        ServiceStats.total_shed += 1

    def count_cancelled(self) -> None:
        self.cancelled += 1
        ServiceStats.total_cancelled += 1

    def count_rescheduled(self) -> None:
        self.rescheduled += 1
        ServiceStats.total_rescheduled += 1

    def count_remote_placement(self) -> None:
        self.remote_placements += 1
        ServiceStats.total_remote_placements += 1

    @classmethod
    def process_totals(cls) -> dict:
        """The process-global counters as a plain dict."""
        return {
            "submitted": cls.total_submitted,
            "completed": cls.total_completed,
            "shed": cls.total_shed,
            "cancelled": cls.total_cancelled,
            "rescheduled": cls.total_rescheduled,
            "remote_placements": cls.total_remote_placements,
            "bytes_completed": cls.total_bytes_completed,
        }

    def as_dict(self) -> dict:
        """The instance counters as a plain dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "rescheduled": self.rescheduled,
            "remote_placements": self.remote_placements,
            "bytes_completed": self.bytes_completed,
        }


@dataclass(eq=False)
class _Job:
    """Broker-internal job record (sessions render it to plain dicts)."""

    job_id: int
    tenant: str
    size: float
    touch_node: int
    submitted_at: float
    state: JobState = JobState.QUEUED
    remaining: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rail: Optional[Rail] = None
    buffer_node: Optional[int] = None
    flow: Optional[FluidFlow] = None
    reschedules: int = 0
    #: Bytes completed by earlier flow generations (pre-reschedule).
    banked: float = 0.0


def _tenant_row() -> Dict[str, Any]:
    return {"submitted": 0, "completed": 0, "shed": 0, "cancelled": 0,
            "rescheduled": 0, "bytes": 0.0}


class TransferBroker:
    """One long-running transfer service over one :class:`RailFleet`."""

    def __init__(self, ctx: Context, fleet: RailFleet,
                 config: BrokerConfig = BrokerConfig(),
                 workload: Optional[WorkloadConfig] = None,
                 name: str = "service"):
        self.ctx = ctx
        self.fleet = fleet
        self.config = config
        self.name = name
        self.stats = ServiceStats()
        self.tenants: Dict[str, Dict[str, Any]] = {}
        self._jobs: Dict[int, _Job] = {}
        self._queue: Deque[_Job] = deque()
        self._next_id = 1
        self._cursor = 0  # fifo policy round-robin position
        self._running_by_tenant: Dict[str, int] = {}
        self._nominal = min(r.rate for r in fleet.rails)
        self._budget = config.budget_fraction * fleet.total_rate
        self._budget_used = 0.0
        self._latencies: List[float] = []
        #: Memoized static routes keyed (rail.index, buffer_node); cleared
        #: on fault-driven topology change (on_link_down / on_link_up).
        self._path_cache: Dict[Any, Any] = {}
        self.generator: Optional[WorkloadGenerator] = None
        if workload is not None:
            self.generator = WorkloadGenerator(
                ctx, workload, self.submit,
                n_nodes=fleet.hosts[0].n_nodes,
                submit_many=self.submit_many)
        # Fault integration is opt-in by plan: with no active injector
        # the broker registers nothing and the hooks below never run.
        inj = faults_active(ctx)
        if inj is not None:
            inj.add_transfer(name, self)

    # -- ingress -----------------------------------------------------------
    def serve(self) -> None:
        """Start accepting the configured workload (begins arrivals)."""
        if self.generator is None:
            raise RuntimeError(f"broker {self.name!r} has no workload attached")
        self.generator.start()

    def drain(self) -> None:
        """Stop the arrival process (running jobs keep going)."""
        if self.generator is not None:
            self.generator.stop()

    def submit(self, tenant: str, size: float, touch_node: int = 0) -> Optional[int]:
        """Submit one job; returns its session id, or None when shed."""
        return self._submit_one(tenant, size, touch_node, None)

    def submit_many(
        self, arrivals: Iterable[Tuple[str, float, int]],
    ) -> List[Optional[int]]:
        """Submit a same-timestamp burst; one id (or None) per arrival.

        Admission, placement and shed decisions are made in arrival
        order — exactly the decisions a loop of :meth:`submit` would
        make — but when the fluid scheduler coalesces churn the whole
        burst's flow starts are deferred and launched through one
        :meth:`~repro.sim.fluid.FluidScheduler.start_many` settle.
        """
        batch: Optional[List[Tuple[_Job, FluidFlow]]] = (
            [] if self.ctx.fluid.coalescing else None)
        ids = [self._submit_one(tenant, size, touch_node, batch)
               for tenant, size, touch_node in arrivals]
        if batch:
            self._launch_many(batch)
        return ids

    def _submit_one(self, tenant: str, size: float, touch_node: int,
                    batch: Optional[List[Tuple["_Job", FluidFlow]]],
                    ) -> Optional[int]:
        check_positive("size", size)
        job = _Job(
            job_id=self._next_id, tenant=tenant, size=float(size),
            touch_node=touch_node, submitted_at=self.ctx.now,
            remaining=float(size),
        )
        self._next_id += 1
        self.stats.count_submitted()
        row = self.tenants.setdefault(tenant, _tenant_row())
        row["submitted"] += 1
        self._jobs[job.job_id] = job
        self._queue.append(job)
        self._dispatch(batch)
        if job.state is JobState.QUEUED and len(self._queue) > self.config.max_queue:
            # Bounded queue: the newcomer is shed, not an older job.
            self._queue.remove(job)
            job.state = JobState.SHED
            job.finished_at = self.ctx.now
            self.stats.count_shed()
            row["shed"] += 1
            return None
        return job.job_id

    # -- admission + dispatch ----------------------------------------------
    def _admissible(self, job: _Job) -> bool:
        """Both admission clauses (inlined in ``_dispatch``'s hot scan)."""
        if self._running_by_tenant.get(job.tenant, 0) >= self.config.tenant_quota:
            return False
        return self._budget_used + self._nominal <= self._budget

    def _dispatch(
        self, batch: Optional[List[Tuple["_Job", FluidFlow]]] = None,
    ) -> None:
        """Start every queued job that admission and placement allow.

        Scans in FIFO order; jobs blocked on quota or budget are skipped
        rather than head-of-line blocking unrelated tenants.  Under a
        coalescing fluid scheduler the pass defers every zero-delay
        launch and starts them through one bulk ``start_many`` settle;
        a caller-supplied *batch* (``submit_many``) widens that to the
        whole arrival burst.  Control-plane decisions are identical
        either way: placement reads rail loads, which ``_start``
        updates immediately.
        """
        if not self._queue:
            return
        local = batch is None and self.ctx.fluid.coalescing
        if local:
            batch = []
        started: List[_Job] = []
        # Both admission clauses only tighten while the scan runs (starts
        # consume quota and budget; nothing frees them mid-scan), so a
        # tenant that fails quota stays failed for the rest of the scan
        # and a budget failure ends it.  Skipping on those facts is a
        # pure shortcut: the skipped iterations had no side effects.
        quota = self.config.tenant_quota
        running = self._running_by_tenant
        over_quota: set = set()
        for job in self._queue:
            if self._budget_used + self._nominal > self._budget:
                break  # budget exhausted: nothing else is admissible
            tenant = job.tenant
            if tenant in over_quota:
                continue
            if running.get(tenant, 0) >= quota:
                over_quota.add(tenant)
                continue
            rail, buffer_node, self._cursor = pick_rail(
                self.fleet.rails, self.config.policy, job.touch_node,
                self._cursor)
            if rail is None:
                break  # no live rails: leave the queue intact
            self._start(job, rail, buffer_node, batch)
            started.append(job)
        for job in started:
            self._queue.remove(job)
        if local and batch:
            self._launch_many(batch)

    def _base_route(self, rail: Rail, buffer_node: int):
        """Memoized static rail route: ``(path, cap, remote)``.

        The route, its capacity, and whether the placement is remote
        depend only on (rail, buffer node) — never on the job — so they
        are computed once and cached until a fault changes the topology
        (see :meth:`on_link_down` / :meth:`on_link_up`).  Per-job taxes
        (stats, QP acquisition, boundary legs) stay in ``_job_path``.
        """
        key = (rail.index, buffer_node)
        hit = self._path_cache.get(key)
        if hit is not None:
            return hit
        nic, peer = rail.nic, rail.peer
        path = nic.dma_read_path(buffer_node)
        path.append((rail.link.direction(nic), 1.0))
        path += peer.dma_write_path(peer.node)
        cap = rail.rate
        remote = buffer_node != rail.node
        if remote:
            # Remote DMA read: the stream derates even uncontended (the
            # placement penalty the paper's NUMA tuning removes).
            cap *= self.ctx.cal.remote_access_derate
        hit = (tuple(path), cap, remote)
        self._path_cache[key] = hit
        return hit

    def _job_path(self, job: _Job, rail: Rail, buffer_node: int):
        """The job's fluid route: ``(path, cap, setup_delay, charges)``.

        Subclasses override this to reroute classes of jobs (e.g. the
        fleet broker sends WAN tenants out the pod uplink) or to tax
        admission (QP-cache derates, CM setup delays).  The default is
        the paper's host-to-sink rail route with the NUMA placement
        penalty and no delay.
        """
        path, cap, remote = self._base_route(rail, buffer_node)
        if remote:
            self.stats.count_remote_placement()
        return path, cap, 0.0, ()

    def _start(self, job: _Job, rail: Rail, buffer_node: int,
               batch: Optional[List[Tuple["_Job", FluidFlow]]] = None) -> None:
        path, cap, delay, charges = self._job_path(job, rail, buffer_node)
        flow = FluidFlow(
            path, size=job.remaining, cap=cap, charges=charges,
            name=f"{self.name}-j{job.job_id}g{job.reschedules}",
        )
        job.state = JobState.RUNNING
        job.rail = rail
        job.buffer_node = buffer_node
        job.flow = flow
        if job.started_at is None:
            job.started_at = self.ctx.now
        rail.jobs[job] = None
        self._running_by_tenant[job.tenant] = (
            self._running_by_tenant.get(job.tenant, 0) + 1)
        self._budget_used += self._nominal
        if delay > 0.0:
            # Setup tax (e.g. a CM handshake): the job holds its rail
            # slot and credits but moves no bytes until the delay runs.
            self.ctx.sim.timeout(delay).add_callback(
                lambda _ev, job=job, flow=flow: self._launch(job, flow))
        elif batch is not None:
            batch.append((job, flow))
        else:
            self._launch(job, flow)

    def _launch(self, job: _Job, flow: FluidFlow) -> None:
        if job.state is not JobState.RUNNING or job.flow is not flow:
            return  # cancelled or rescheduled during its setup delay
        done = self.ctx.fluid.start(flow)
        done.add_callback(lambda _ev, job=job, flow=flow:
                          self._on_done(job, flow))

    def _launch_many(
        self, batch: List[Tuple["_Job", FluidFlow]],
    ) -> None:
        """Start a dispatch pass's deferred flows in one bulk settle."""
        live = [(job, flow) for job, flow in batch
                if job.state is JobState.RUNNING and job.flow is flow]
        events = self.ctx.fluid.start_many([flow for _job, flow in live])
        for (job, flow), done in zip(live, events):
            done.add_callback(lambda _ev, job=job, flow=flow:
                              self._on_done(job, flow))

    def _halt(self, job: _Job) -> float:
        """Stop the job's flow (if it ever started) and return its bytes."""
        flow = job.flow
        if flow is None:
            return 0.0
        if flow._active:
            return self.ctx.fluid.stop(flow)
        return flow.transferred  # still in setup delay: nothing moved

    def _job_released(self, job: _Job) -> None:
        """Hook: the job is giving back its rail slot (subclass taps)."""

    def _release(self, job: _Job) -> None:
        """Return the job's rail slot, quota and bandwidth credits."""
        self._job_released(job)
        if job.rail is not None:
            job.rail.jobs.pop(job, None)
        self._running_by_tenant[job.tenant] -= 1
        self._budget_used -= self._nominal
        job.rail = None
        job.flow = None

    def _on_done(self, job: _Job, flow: FluidFlow) -> None:
        # Cancel and reschedule paths stop the flow themselves (which
        # also fires this callback) after updating the job's state, so
        # anything but a RUNNING job on its current flow is stale here.
        if job.state is not JobState.RUNNING or job.flow is not flow:
            return
        job.banked += flow.transferred
        job.state = JobState.COMPLETED
        job.finished_at = self.ctx.now
        self._release(job)
        latency = job.finished_at - job.submitted_at
        self._latencies.append(latency)
        self.stats.count_completed(job.size)
        row = self.tenants[job.tenant]
        row["completed"] += 1
        row["bytes"] += job.size
        self._dispatch()

    # -- session API (the iscsi.global.sessions idiom) ---------------------
    def _session_row(self, job: _Job) -> Dict[str, Any]:
        transferred = job.banked
        if job.flow is not None:
            transferred += job.flow.transferred
        return {
            "id": job.job_id,
            "tenant": job.tenant,
            "state": job.state.value,
            "size": job.size,
            "transferred": transferred,
            "rail": None if job.rail is None else job.rail.index,
            "buffer_node": job.buffer_node,
            "touch_node": job.touch_node,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "reschedules": job.reschedules,
        }

    def sessions(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Live (queued or running) sessions, oldest first."""
        return [
            self._session_row(job)
            for job in self._jobs.values()
            if job.state in (JobState.QUEUED, JobState.RUNNING)
            and (tenant is None or job.tenant == tenant)
        ]

    def session(self, job_id: int) -> Dict[str, Any]:
        """Inspect one session (any state); raises KeyError if unknown."""
        return self._session_row(self._jobs[job_id])

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running session; reclaims its credits.

        Returns True if the job was cancelled, False if it had already
        reached a terminal state.
        """
        job = self._jobs[job_id]
        if job.state is JobState.QUEUED:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
        elif job.state is JobState.RUNNING:
            job.state = JobState.CANCELLED
            job.banked += self._halt(job)
            self._release(job)
        else:
            return False
        job.finished_at = self.ctx.now
        self.stats.count_cancelled()
        self.tenants[job.tenant]["cancelled"] += 1
        self._dispatch()
        return True

    # -- fault hooks (invoked by an active FaultInjector only) -------------
    def _reschedule_rail(self, rail: Rail) -> None:
        """Kill a dead rail's jobs and requeue their remaining bytes."""
        victims = sorted(rail.jobs, key=lambda j: j.job_id)
        for job in victims:
            job.state = JobState.QUEUED  # before stop: staleness guard
        if self.ctx.fluid.coalescing:
            # Bulk halt: one settle covers every victim; the accounting
            # loop below then reads the already-frozen ``transferred``
            # values (``_halt`` on a deactivated flow is a pure read).
            active = [job.flow for job in victims
                      if job.flow is not None and job.flow._active]
            if active:
                self.ctx.fluid.finish_many(active)
        for job in victims:
            job.banked += self._halt(job)
            self._release(job)
            job.remaining = job.size - job.banked
            job.reschedules += 1
            self.stats.count_rescheduled()
            self.tenants[job.tenant]["rescheduled"] += 1
            if job.remaining <= _EPSILON_BYTES:
                # it was done modulo float dust: count the completion
                job.state = JobState.COMPLETED
                job.finished_at = self.ctx.now
                self._latencies.append(job.finished_at - job.submitted_at)
                self.stats.count_completed(job.size)
                done_row = self.tenants[job.tenant]
                done_row["completed"] += 1
                done_row["bytes"] += job.size
        # Requeue in submit order ahead of newer arrivals.
        for job in reversed(victims):
            if job.state is JobState.QUEUED:
                self._queue.appendleft(job)

    def on_link_down(self, link, permanent: bool) -> None:
        """Injector hook: a rail's link went dark — reschedule its jobs."""
        rail = self.fleet.rail_for_link(link)
        if rail is None or not rail.alive:
            return
        rail.alive = False
        self._path_cache.clear()  # topology changed: drop memoized routes
        self._reschedule_rail(rail)
        self._dispatch()

    def on_link_up(self, link) -> None:
        """Injector hook: a dead rail returned — resume scheduling on it."""
        rail = self.fleet.rail_for_link(link)
        if rail is None or rail.alive:
            return
        rail.alive = True
        self._path_cache.clear()  # topology changed: drop memoized routes
        self._dispatch()

    # -- telemetry ---------------------------------------------------------
    @property
    def running(self) -> int:
        """Jobs currently running."""
        return sum(rail.load for rail in self.fleet.rails)

    @property
    def queued(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self._queue)

    @property
    def latencies(self) -> List[float]:
        """Completed-job sojourn times, completion order (a copy)."""
        return list(self._latencies)

    def latency_percentiles(self, qs=(50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Sojourn-time percentiles (seconds) over completed jobs."""
        if not self._latencies:
            return {f"p{q:g}": float("nan") for q in qs}
        arr = np.asarray(self._latencies)
        return {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}

    def summary(self) -> Dict[str, Any]:
        """One leg's worth of broker metrics (JSON-canonical)."""
        out: Dict[str, Any] = {
            "policy": self.config.policy,
            "rails": len(self.fleet.rails),
            "running": self.running,
            "queued": self.queued,
            **self.stats.as_dict(),
            **self.latency_percentiles(),
            "tenants": {t: dict(row) for t, row in sorted(self.tenants.items())},
        }
        return out
