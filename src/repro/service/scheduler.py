"""Placement policies: which rail a job runs on, and where its buffer lives.

A policy maps one admitted job to a ``(rail, buffer_node)`` pair:

* ``numa-aware`` — least-loaded live rail, buffer *bound* to the rail's
  own node (the per-job form of the paper's ``numactl`` tuning): the DMA
  read never crosses QPI and the stream runs at the rail's full rate.
* ``numa-blind`` — same least-loaded rail choice, but the buffer stays
  wherever first-touch put it (the drawn ``touch_node``): about half the
  jobs DMA across QPI, paying the interconnect crossing *and* the
  remote-access stream derate.
* ``fifo``      — round-robin rail cursor in cabling order, buffer at
  first-touch: the naive baseline that ignores both load and locality.

Ties break toward the lowest rail index, so placement is a pure
function of (policy, rail loads, job) and runs are deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.service.fleet import Rail

__all__ = ["POLICIES", "pick_rail"]

#: Every placement policy the broker accepts.
POLICIES = ("fifo", "numa-aware", "numa-blind")


def _least_loaded(rails: List[Rail]) -> Optional[Rail]:
    best: Optional[Rail] = None
    for r in rails:
        if r.alive and (best is None or r.load < best.load):
            best = r
    return best


def pick_rail(rails: List[Rail], policy: str, touch_node: int,
              cursor: int) -> Tuple[Optional[Rail], int, int]:
    """Place one job: returns ``(rail, buffer_node, next_cursor)``.

    ``rail`` is None when no rail is alive (the broker requeues).
    ``cursor`` is the fifo policy's round-robin position; the other
    policies pass it through untouched.
    """
    if policy == "fifo":
        n = len(rails)
        for step in range(n):
            rail = rails[(cursor + step) % n]
            if rail.alive:
                return rail, touch_node, (cursor + step + 1) % n
        return None, touch_node, cursor
    if policy == "numa-blind":
        return _least_loaded(rails), touch_node, cursor
    if policy == "numa-aware":
        rail = _least_loaded(rails)
        # bind the buffer to the chosen rail's node (numactl per job)
        return rail, (rail.node if rail is not None else touch_node), cursor
    raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
