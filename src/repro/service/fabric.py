"""Fleet-scale fabric: N-host/M-tenant pods over cut WAN links.

This is the datacenter the ROADMAP's north star asks about, assembled
from the pieces the paper calibrated: each **pod** is a
:class:`~repro.service.fleet.RailFleet` (front-end hosts with
NUMA-local RoCE rails), served by its own broker and workload, with a
pod **uplink** funnelling cross-fabric traffic onto one of the fabric's
WAN links.  WAN links are the shard cut (:mod:`repro.sim.shard`): a pod
is one *cell*, its NUMA-local rails never cross a shard boundary, and
only per-epoch boundary flow rates are exchanged between pods.

Two kinds of cross-boundary traffic exercise the exchange protocol:

* **WAN tenants** — tenants ``tenant0..tenant{wan_tenants-1}`` ship
  their jobs out the pod uplink and across the pod's WAN link instead
  of to the local sink;
* **elephants** — long-lived replication flows per pod, optionally
  skewed per cell, giving the cut links a deterministic standing load
  (and the differential suite its closed-form scenarios).

The :class:`FleetBroker` adds the RDMAvisor-style admission taxes from
:mod:`repro.rdma.qpool`: every job acquires a QP on its rail's NIC
(pooled or per-job), pays the CM setup delay before its flow starts,
and runs at the QP-cache thrash derate sampled at admission.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.faults.injector import faults_active
from repro.rdma.qpool import QP_MODES, QpPoolConfig, QpPoolSet
from repro.service.broker import BrokerConfig, TransferBroker
from repro.service.fleet import Rail, RailFleet
from repro.service.workload import WorkloadConfig
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow, FluidResource
from repro.sim.shard import BoundaryLink, BoundaryPort, run_sharded, run_unsharded
from repro.util.units import MIB
from repro.util.validation import check_positive

__all__ = ["FabricSpec", "FleetBroker", "boundary_links", "fleet_cell",
           "run_fabric"]

#: One Gbit/s in bytes/second.
_GBPS = 1e9 / 8.0


@dataclass(frozen=True)
class FabricSpec:
    """One fleet scenario: topology, workload, cliffs, horizon."""

    n_pods: int = 2
    hosts_per_pod: int = 8
    #: WAN links; pod *p* egresses over ``wan{p % n_wan_links}``.
    n_wan_links: int = 1
    wan_gbps: float = 100.0
    uplink_gbps: float = 80.0
    #: Long-lived replication flows per pod and their per-flow cap.
    elephants_per_pod: int = 2
    elephant_gbps: float = 4.0
    #: Per-cell elephant-cap skew: cap *= (1 + skew * cell).
    elephant_skew: float = 0.0
    #: Job arrivals per host per second; 0 disables the workload.
    rate_per_host: float = 0.0
    size_mean_mib: float = 64.0
    size_dist: str = "lognormal"
    lognormal_sigma: float = 1.0
    #: Jobs per arrival event (same-timestamp bursts when > 1).
    burst: int = 1
    n_tenants: int = 8
    #: Tenants whose jobs cross the WAN (the first this-many indices).
    wan_tenants: int = 2
    #: Arrivals stop at ``serve_s``; the sim drains until ``horizon_s``.
    serve_s: float = 8.0
    horizon_s: float = 10.0
    epoch_dt: float = 1.0
    policy: str = "numa-aware"
    tenant_quota: int = 8
    max_queue: int = 512
    budget_fraction: float = 1.5
    #: QP accounting: "pooled" / "per-job" / "off".
    qp_mode: str = "pooled"
    qp_per_tenant: int = 1
    qp_cache: int = 24
    thrash_floor: float = 0.35
    cm_rate: float = 64.0
    cm_base_ms: float = 2.0
    #: Crash tolerance / degraded mode (forwarded into BrokerConfig;
    #: defaults preserve byte-identity with pre-availability fabrics).
    journal: bool = True
    recovery_rate: float = 64.0
    heartbeat_s: float = 0.0
    suspicion: int = 3
    retry_budget: int = 0
    retry_backoff_base: float = 0.0
    retry_backoff_cap: float = 2.0
    priority_tiers: int = 1
    brownout: bool = False
    #: Pods per power domain: ``power:<d>`` cuts pods ``d*k .. d*k+k-1``.
    pods_per_power: int = 4

    def __post_init__(self) -> None:
        check_positive("pods_per_power", self.pods_per_power)
        check_positive("n_pods", self.n_pods)
        check_positive("hosts_per_pod", self.hosts_per_pod)
        check_positive("n_wan_links", self.n_wan_links)
        if self.qp_mode not in QP_MODES:
            raise ValueError(
                f"qp_mode must be one of {QP_MODES}, got {self.qp_mode!r}")
        if self.wan_tenants > self.n_tenants:
            raise ValueError("wan_tenants cannot exceed n_tenants")
        if self.serve_s > self.horizon_s:
            raise ValueError("serve_s cannot exceed horizon_s")

    @property
    def n_hosts(self) -> int:
        return self.n_pods * self.hosts_per_pod


def boundary_links(spec: FabricSpec) -> list[BoundaryLink]:
    """The fabric's cut set: its WAN links."""
    return [BoundaryLink(f"wan{k}", spec.wan_gbps * _GBPS)
            for k in range(spec.n_wan_links)]


class FleetBroker(TransferBroker):
    """A pod broker: WAN-tenant routing + QP/CM admission taxes."""

    def __init__(self, ctx: Context, fleet: RailFleet,
                 config: BrokerConfig,
                 workload: Optional[WorkloadConfig],
                 uplink: FluidResource, port: BoundaryPort,
                 wan_tenants: int = 0,
                 qpool: Optional[QpPoolSet] = None,
                 name: str = "pod"):
        super().__init__(ctx, fleet, config, workload, name=name)
        self.uplink = uplink
        self.port = port
        self.wan_tenants = wan_tenants
        self.qpool = qpool
        self.wan_jobs = 0

    def _is_wan(self, tenant: str) -> bool:
        try:
            return int(tenant[6:]) < self.wan_tenants
        except ValueError:
            return False

    def _wan_route(self, rail: Rail, buffer_node: int):
        """Memoized static WAN egress route: ``(path, cap, remote)``.

        Shares the broker's ``_path_cache`` (and its fault-driven
        invalidation); the per-job QP tax and boundary-port leg stay
        live in ``_job_path`` — only the host-to-uplink spine and its
        placement-derated cap are static per (rail, buffer node).
        """
        key = ("wan", rail.index, buffer_node)
        hit = self._path_cache.get(key)
        if hit is not None:
            return hit
        nic = rail.nic
        path = nic.dma_read_path(buffer_node)
        path.append((rail.link.direction(nic), 1.0))
        path.append((self.uplink, 1.0))
        cap = rail.rate
        remote = buffer_node != rail.node
        if remote:
            cap *= self.ctx.cal.remote_access_derate
        hit = (tuple(path), cap, remote)
        self._path_cache[key] = hit
        return hit

    def _job_path(self, job, rail: Rail, buffer_node: int):
        wan = self._is_wan(job.tenant)
        if wan:
            path, cap, remote = self._wan_route(rail, buffer_node)
            if remote:
                self.stats.count_remote_placement()
            delay, charges = 0.0, ()
        else:
            path, cap, delay, charges = super()._job_path(
                job, rail, buffer_node)
        if self.qpool is not None:
            derate, setup = self.qpool.acquire(rail.index, job.tenant)
            cap *= derate
            delay += setup
        if wan:
            # The boundary leg goes last so the port sees the flow's
            # final cap (its hungry-vs-pinned classification input).
            self.wan_jobs += 1
            leg, port_charges = self.port.flow_leg(cap=cap)
            path = tuple(path) + tuple(leg)
            charges = tuple(charges) + tuple(port_charges)
        return path, cap, delay, charges

    def _job_released(self, job) -> None:
        if self.qpool is not None and job.rail is not None:
            self.qpool.release(job.rail.index, job.tenant)


def fleet_cell(*, ctx: Context, cell: int, ports: Dict[str, BoundaryPort],
               horizon: float, spec: dict):
    """Shard cell target: build and serve one pod; ledger at ``finish()``."""
    s = FabricSpec(**spec)
    fleet = RailFleet(ctx, n_hosts=s.hosts_per_pod, name_prefix=f"pod{cell}-")
    # Fleet topology as failure domains: the pod's ToR is its rail set
    # (`tor:<cell>`), and pods share power domains in blocks of
    # `pods_per_power` (`power:<cell // pods_per_power>`).  Under
    # sharding each cell registers only its own pod, so a tor:/power:
    # cut lands on exactly the cells it covers — the same correlated
    # link set the unsharded reference expands.
    inj = faults_active(ctx)
    if inj is not None:
        pod_links = [r.link for r in fleet.rails]
        inj.register_domain("tor", str(cell), pod_links)
        inj.register_domain("power", str(cell // s.pods_per_power), pod_links)
    uplink = FluidResource(ctx.fluid, s.uplink_gbps * _GBPS,
                           f"pod{cell}/uplink")
    uplink.kind = "link"  # type: ignore[attr-defined]
    port = ports[f"wan{cell % s.n_wan_links}"]
    qpool = None
    if s.qp_mode != "off":
        qpool = QpPoolSet(ctx, QpPoolConfig(
            mode=s.qp_mode, qp_per_tenant=s.qp_per_tenant,
            qp_cache=s.qp_cache, thrash_floor=s.thrash_floor,
            cm_rate=s.cm_rate, cm_base_s=s.cm_base_ms / 1e3))
    workload = None
    if s.rate_per_host > 0.0:
        workload = WorkloadConfig(
            rate=s.rate_per_host * s.hosts_per_pod,
            size_mean=s.size_mean_mib * MIB,
            size_dist=s.size_dist,
            lognormal_sigma=s.lognormal_sigma,
            burst=s.burst,
            n_tenants=s.n_tenants)
    broker = FleetBroker(
        ctx, fleet,
        BrokerConfig(policy=s.policy, tenant_quota=s.tenant_quota,
                     max_queue=s.max_queue,
                     budget_fraction=s.budget_fraction,
                     journal=s.journal, recovery_rate=s.recovery_rate,
                     heartbeat_s=s.heartbeat_s, suspicion=s.suspicion,
                     retry_budget=s.retry_budget,
                     retry_backoff_base=s.retry_backoff_base,
                     retry_backoff_cap=s.retry_backoff_cap,
                     priority_tiers=s.priority_tiers, brownout=s.brownout),
        workload, uplink=uplink, port=port, wan_tenants=s.wan_tenants,
        qpool=qpool, name=f"pod{cell}")
    elephants = []
    for i in range(s.elephants_per_pod):
        cap = s.elephant_gbps * _GBPS * (1.0 + s.elephant_skew * cell)
        leg, charges = port.flow_leg(cap=cap)
        flow = FluidFlow([(uplink, 1.0)] + leg, size=None, cap=cap,
                         charges=charges, name=f"pod{cell}/eleph{i}")
        elephants.append(flow)
        ctx.fluid.start(flow)
    if broker.generator is not None:
        broker.serve()
        if s.serve_s < horizon:
            ctx.sim.timeout(s.serve_s).add_callback(
                lambda _ev: broker.drain())

    def finish() -> dict:
        for flow in elephants:
            if flow._active:
                ctx.fluid.stop(flow)
        ledger = {
            "pod": cell,
            **broker.stats.as_dict(),
            "queued": broker.queued,
            "running": broker.running,
            "wan_jobs": broker.wan_jobs,
            "wan_bytes": port.transferred,
            "elephant_bytes": [f.transferred for f in elephants],
            "latencies_s": broker.latencies,
            "qpool": None if qpool is None else qpool.as_dict(),
            "audit": broker.audit(),
            "goodput_timeline": broker.goodput_timeline(),
        }
        return ledger

    return finish


def run_fabric(spec: FabricSpec | dict, *, seed: int = 0, cal=None,
               sharded: bool = True, n_shards: int = 0, tol: float = 1e-9,
               max_rounds: int = 6, fixed_rounds: int = 0) -> dict:
    """One fabric scenario through the sharded (or reference) runtime."""
    if isinstance(spec, dict):
        spec = FabricSpec(**spec)
    common = dict(
        target="repro.service.fabric:fleet_cell",
        n_cells=spec.n_pods,
        boundaries=boundary_links(spec),
        horizon=spec.horizon_s,
        epoch_dt=spec.epoch_dt,
        params={"spec": asdict(spec)},
        seed=seed, cal=cal,
    )
    if sharded:
        return run_sharded(**common, n_shards=n_shards, tol=tol,
                           max_rounds=max_rounds, fixed_rounds=fixed_rounds)
    return run_unsharded(**common)
