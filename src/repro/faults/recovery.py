"""Recovery policy constants shared by the fault-tolerant protocol layer.

RFTP's recovery behaviour (modeled on refs [21-23]'s reliability layer
and the timeout/retransmission design of GBN-style RDMA protocols) is
parameterised here so tests and experiments can tighten or relax it
without touching the transfer engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryConfig", "DEFAULT_RECOVERY", "REQUEUE_EPSILON_BYTES"]

#: Remaining-bytes floor below which a fault-requeued job counts as done
#: (float dust from rate * elapsed accounting, not real payload).  Shared
#: by the broker's dead-rail requeue path, whose victims are now halted
#: in one bulk ``finish_many`` settle when the scheduler coalesces churn.
REQUEUE_EPSILON_BYTES = 1.0


@dataclass(frozen=True)
class RecoveryConfig:
    """Timeout/backoff policy for RFTP fault recovery."""

    #: Seconds a link must stay dark before streams are declared failed
    #: (block-ack timeout; outages shorter than this just stall).
    detect_timeout: float = 0.2
    #: First reconnect attempt delay; doubles per attempt up to the cap.
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: Reconnect attempts before giving the link up for good (the
    #: surviving-rail failover then becomes permanent).
    retransmit_budget: int = 8
    #: Fraction of each failed stream's in-flight credit window that
    #: must be retransmitted after recovery (1.0 = whole window lost).
    window_loss_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.detect_timeout < 0:
            raise ValueError("detect_timeout must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.retransmit_budget < 1:
            raise ValueError("retransmit_budget must be >= 1")
        if not (0.0 <= self.window_loss_fraction <= 1.0):
            raise ValueError("window_loss_fraction must be in [0, 1]")

    def backoff(self, attempt: int) -> float:
        """Delay before reconnect *attempt* (0-based), capped."""
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_cap)


#: The stack's default policy (documented in MODELING.md §9).
DEFAULT_RECOVERY = RecoveryConfig()
