"""The fault injector: turns a :class:`FaultPlan` into simulator events.

One :class:`FaultInjector` attaches to a :class:`~repro.sim.context.Context`
(``ctx.faults``).  Fault-capable components register themselves as they
are constructed — links, SSDs, iSER targets, transfers — and the
injector drives the plan's occurrences through ordinary simulation
events, so fault timing is part of the deterministic event order and
runs stay bit-reproducible per seed (randomized jitter draws from the
context's ``"faults"`` RNG stream).

An injector with an **empty** plan schedules nothing and applies
nothing: components see ``injector.active == False`` and take their
fault-free fast paths, so an empty plan is behaviourally (and
byte-for-byte) identical to having no injector at all — the property
the differential tests in ``tests/test_fault_injection.py`` pin down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec, parse_range

__all__ = ["FaultInjector", "FaultStats", "faults_active"]


class FaultStats:
    """Counters for injected faults and the recoveries they triggered.

    The class attributes with the same names aggregate across **all**
    injectors ever created in this process (mirroring
    :class:`~repro.sim.fluid.FluidStats`), so report footers can show
    fault telemetry without a handle on every context.
    """

    __slots__ = (
        "faults_injected", "unresolved", "retransmitted_bytes",
        "streams_failed", "reconnects", "giveups", "recovery_seconds",
        "domain_faults",
    )

    #: Process-global totals across all injectors (class-level).
    total_faults_injected = 0
    total_unresolved = 0
    total_retransmitted_bytes = 0.0
    total_streams_failed = 0
    total_reconnects = 0
    total_giveups = 0
    total_recovery_seconds = 0.0
    total_domain_faults = 0

    def __init__(self) -> None:
        self.faults_injected = 0
        self.unresolved = 0
        self.retransmitted_bytes = 0.0
        self.streams_failed = 0
        self.reconnects = 0
        self.giveups = 0
        self.recovery_seconds = 0.0
        self.domain_faults = 0

    # Increment helpers keep the instance counter and the process-global
    # class total in lockstep (single call site per event kind).
    def count_injected(self) -> None:
        self.faults_injected += 1
        FaultStats.total_faults_injected += 1

    def count_unresolved(self) -> None:
        self.unresolved += 1
        FaultStats.total_unresolved += 1

    def count_retransmit(self, nbytes: float) -> None:
        self.retransmitted_bytes += nbytes
        FaultStats.total_retransmitted_bytes += nbytes

    def count_stream_failed(self) -> None:
        self.streams_failed += 1
        FaultStats.total_streams_failed += 1

    def count_reconnect(self, recovery_seconds: float) -> None:
        self.reconnects += 1
        self.recovery_seconds += recovery_seconds
        FaultStats.total_reconnects += 1
        FaultStats.total_recovery_seconds += recovery_seconds

    def count_giveup(self) -> None:
        self.giveups += 1
        FaultStats.total_giveups += 1

    def count_domain(self) -> None:
        self.domain_faults += 1
        FaultStats.total_domain_faults += 1

    @classmethod
    def process_totals(cls) -> dict:
        """The process-global counters as a plain dict."""
        return {
            "faults_injected": cls.total_faults_injected,
            "unresolved": cls.total_unresolved,
            "retransmitted_bytes": cls.total_retransmitted_bytes,
            "streams_failed": cls.total_streams_failed,
            "reconnects": cls.total_reconnects,
            "giveups": cls.total_giveups,
            "recovery_seconds": cls.total_recovery_seconds,
            "domain_faults": cls.total_domain_faults,
        }

    def as_dict(self) -> dict:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "faults_injected": self.faults_injected,
            "unresolved": self.unresolved,
            "retransmitted_bytes": self.retransmitted_bytes,
            "streams_failed": self.streams_failed,
            "reconnects": self.reconnects,
            "giveups": self.giveups,
            "recovery_seconds": self.recovery_seconds,
            "domain_faults": self.domain_faults,
        }


def faults_active(ctx) -> "Optional[FaultInjector]":
    """The context's injector, iff it is attached with a non-empty plan."""
    inj = getattr(ctx, "faults", None)
    return inj if inj is not None and inj.active else None


class FaultInjector:
    """Applies a :class:`FaultPlan` to the components of one context."""

    def __init__(self, ctx, plan: FaultPlan):
        if getattr(ctx, "faults", None) is not None:
            raise RuntimeError("context already has a fault injector attached")
        self.ctx = ctx
        self.plan = plan
        self.stats = FaultStats()
        # Registration order defines index selectors (``link:1``).
        self.links: List = []
        self.ssds: List = []
        self.targets: List = []
        self.transfers: List[Tuple[str, object]] = []
        #: (category, name) -> correlated link set, e.g. ("tor", "3").
        self.domains: Dict[Tuple[str, str], List] = {}
        self._cm_penalty: Dict[int, Tuple[float, float]] = {}  # id(link) -> (until, s)
        self._rng = None
        ctx.faults = self
        if not plan.empty:
            for spec in plan.specs:
                ctx.sim.process(
                    self._drive(spec), name=f"faults/{spec.kind}@{spec.target}"
                )

    @property
    def active(self) -> bool:
        """True when the plan schedules at least one fault."""
        return not self.plan.empty

    # -- component registration (constructors call these) --------------------------
    def add_link(self, link) -> None:
        """Register a link in context creation order."""
        self.links.append(link)

    def add_ssd(self, dev) -> None:
        """Register an SSD device."""
        self.ssds.append(dev)

    def add_target(self, target) -> None:
        """Register an iSER target."""
        self.targets.append(target)

    def add_transfer(self, name: str, listener) -> None:
        """Register a recovery-capable transfer as a fault listener.

        *listener* may implement any of ``on_link_down(link, permanent)``,
        ``on_link_up(link)``, ``on_loss(link, fraction)``,
        ``on_qp_error(link)`` and ``on_crash(restart_delay)``; missing
        hooks are skipped.
        """
        self.transfers.append((name, listener))

    def register_domain(self, category: str, name: str, links) -> None:
        """Register a failure domain: *links* fail together under *name*.

        Domain categories are hierarchical topology groups — ``host``
        (one machine's rails), ``tor`` (a pod behind one ToR switch),
        ``power`` (the pods sharing a power domain).  Fleets register
        their hosts at construction; the fabric registers pod and power
        domains per cell (:func:`repro.service.fabric.fleet_cell`), so
        pod/ToR cuts land exactly on shard boundaries.  Registering the
        same domain twice extends it (the unsharded reference path
        builds every pod in one context).
        """
        self.domains.setdefault((category, name), []).extend(links)

    # -- CM handshake penalties ----------------------------------------------------
    def handshake_delay(self, link) -> float:
        """Extra seconds a CM handshake over *link* pays right now."""
        entry = self._cm_penalty.get(id(link))
        if entry is not None and self.ctx.sim.now < entry[0]:
            return entry[1]
        return 0.0

    # -- schedule driving ----------------------------------------------------------
    def _jitter(self, spec: FaultSpec) -> float:
        if spec.jitter <= 0.0:
            return 0.0
        if self._rng is None:
            self._rng = self.ctx.rng.stream("faults")
        return float(self._rng.exponential(spec.jitter))

    def _drive(self, spec: FaultSpec):
        sim = self.ctx.sim
        when = spec.at
        for _ in range(spec.count):
            fire_at = when + self._jitter(spec)
            if fire_at > sim.now:
                yield sim.timeout(fire_at - sim.now)
            self._apply(spec)
            when += spec.period

    # -- fault application ---------------------------------------------------------
    def _resolve(self, spec: FaultSpec) -> list:
        category = spec.category
        sel = spec.selector
        if category in ("host", "tor", "power"):
            return self._resolve_domain(category, sel)
        if category in ("link", "nic"):
            pool = self.links
        elif category == "ssd":
            pool = self.ssds
        elif category == "target":
            pool = self.targets
        else:  # transfer
            if sel == "*":
                return [lst for _, lst in self.transfers]
            return [lst for nm, lst in self.transfers if nm == sel]
        if sel == "*":
            return list(pool)
        if sel.isdigit():
            idx = int(sel)
            return [pool[idx]] if idx < len(pool) else []
        rng = parse_range(sel)
        if rng is not None:
            lo, hi = rng
            return pool[lo:hi + 1]
        return [c for c in pool if getattr(c, "name", None) == sel]

    def _resolve_domain(self, category: str, sel: str) -> list:
        """Expand a failure domain to its correlated link set.

        Registration order is preserved and duplicates dropped (a link
        may belong to several overlapping domains of one wildcard).
        """
        if sel == "*":
            groups = [links for (cat, _nm), links in self.domains.items()
                      if cat == category]
        else:
            hit = self.domains.get((category, sel))
            groups = [hit] if hit is not None else []
        out: list = []
        seen: set = set()
        for links in groups:
            for link in links:
                if id(link) not in seen:
                    seen.add(id(link))
                    out.append(link)
        return out

    def _notify(self, hook: str, *args) -> None:
        for _, listener in self.transfers:
            fn = getattr(listener, hook, None)
            if fn is not None:
                fn(*args)

    def _apply(self, spec: FaultSpec) -> None:
        targets = self._resolve(spec)
        if not targets:
            if spec.is_domain:
                # A domain missing from *this* context is expected under
                # sharding (each cell registers only its own pods), so it
                # is traced but not counted as a plan error.
                self.ctx.trace.emit("fault", "domain not local",
                                    kind=spec.kind, target=spec.target)
            else:
                self.stats.count_unresolved()
                self.ctx.trace.emit("fault", "unresolved target",
                                    kind=spec.kind, target=spec.target)
            return
        if spec.is_domain:
            self.stats.count_domain()
        if spec.stagger > 0.0:
            # Correlated-but-cascading failure: every component of the
            # expansion fires after its own seeded exponential offset,
            # drawn in registration order so the cascade is identical at
            # any worker or shard count (the draws happen in this cell's
            # own "faults" stream).
            if self._rng is None:
                self._rng = self.ctx.rng.stream("faults")
            for component in targets:
                delay = float(self._rng.exponential(spec.stagger))
                self.ctx.sim.timeout(delay).add_callback(
                    lambda _ev, c=component: self._apply_one(spec, c))
            return
        for component in targets:
            self._apply_one(spec, component)

    def _apply_one(self, spec: FaultSpec, component) -> None:
        self.stats.count_injected()
        self.ctx.trace.emit(
            "fault", spec.kind,
            target=getattr(component, "name", spec.target),
            duration=spec.duration, magnitude=spec.magnitude,
        )
        getattr(self, "_apply_" + spec.kind.replace("-", "_"))(spec, component)

    def _apply_link_down(self, spec: FaultSpec, link) -> None:
        permanent = spec.duration <= 0.0
        link.fail()
        self._notify("on_link_down", link, permanent)
        if not permanent:
            self.ctx.sim.process(self._restore_link(link, spec.duration),
                                 name=f"faults/restore-{link.name}")

    def _apply_nic_down(self, spec: FaultSpec, link) -> None:
        link.fail()
        self._notify("on_link_down", link, True)

    def _restore_link(self, link, duration: float):
        yield self.ctx.sim.timeout(duration)
        if link.failed:
            link.restore()
            self._notify("on_link_up", link)

    def _apply_degrade(self, spec: FaultSpec, link) -> None:
        link.degrade(spec.magnitude)
        if spec.duration > 0.0:
            self.ctx.sim.process(self._undegrade_link(link, spec.duration),
                                 name=f"faults/undegrade-{link.name}")

    def _undegrade_link(self, link, duration: float):
        yield self.ctx.sim.timeout(duration)
        link.degrade(1.0)

    def _apply_loss(self, spec: FaultSpec, link) -> None:
        self._notify("on_loss", link, spec.magnitude)

    def _apply_qp_error(self, spec: FaultSpec, link) -> None:
        self._notify("on_qp_error", link)

    def _apply_cm_delay(self, spec: FaultSpec, link) -> None:
        until = (self.ctx.sim.now + spec.duration
                 if spec.duration > 0.0 else float("inf"))
        self._cm_penalty[id(link)] = (until, spec.magnitude)

    def _apply_target_stall(self, spec: FaultSpec, target) -> None:
        # An unresponsive tgtd looks like dead fabric from the initiator:
        # every link terminating on the target's machine goes down.
        machine = target.machine
        stalled = [ln for ln in self.links
                   if ln.a.machine is machine or ln.b.machine is machine]
        for link in stalled:
            link.fail()
            self._notify("on_link_down", link, spec.duration <= 0.0)
            if spec.duration > 0.0:
                self.ctx.sim.process(self._restore_link(link, spec.duration),
                                     name=f"faults/restore-{link.name}")

    def _apply_ssd_degrade(self, spec: FaultSpec, dev) -> None:
        base = dev.throttled_rate if dev.throttled else dev.burst_rate
        dev.bandwidth.set_capacity(base * spec.magnitude)
        if spec.duration > 0.0:
            self.ctx.sim.process(self._restore_ssd(dev, spec.duration),
                                 name=f"faults/restore-{dev.name}")

    def _restore_ssd(self, dev, duration: float):
        yield self.ctx.sim.timeout(duration)
        # Re-read the thermal state at restore time: a device that crossed
        # its thermal budget during the spike comes back throttled.
        dev.bandwidth.set_capacity(
            dev.throttled_rate if dev.throttled else dev.burst_rate
        )

    def _apply_crash(self, spec: FaultSpec, listener) -> None:
        fn = getattr(listener, "on_crash", None)
        if fn is not None:
            fn(spec.duration)
