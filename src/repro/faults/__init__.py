"""Deterministic fault injection and the recovery policy that answers it.

``repro.faults`` adds the missing half of the paper's WAN story: what
the modeled stack does when the fabric misbehaves.  A
:class:`~repro.faults.plan.FaultPlan` declares typed faults (link
outages and flaps, degradation, loss bursts, NIC failures, QP/CM
errors, iSER target stalls, SSD latency spikes, process crashes); the
:class:`~repro.faults.injector.FaultInjector` drives them through
ordinary simulator events so runs stay bit-reproducible per seed; and
:class:`~repro.faults.recovery.RecoveryConfig` parameterises how the
RFTP engine retransmits, reconnects, and fails over.

Attach a plan ambiently with ``REPRO_FAULTS`` / ``--faults`` (every
:meth:`~repro.sim.context.Context.create` then wires an injector), or
explicitly with ``FaultInjector(ctx, FaultPlan.parse(spec))``.
"""

from repro.faults.injector import FaultInjector, FaultStats, faults_active
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    REPRO_FAULTS_ENV,
    ambient_plan,
    ambient_spec,
)
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryConfig

__all__ = [
    "DEFAULT_RECOVERY",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "RecoveryConfig",
    "REPRO_FAULTS_ENV",
    "ambient_plan",
    "ambient_spec",
    "faults_active",
]
