"""Declarative fault plans: what breaks, where, when, and how often.

A :class:`FaultPlan` is an immutable schedule of typed
:class:`FaultSpec` entries.  Plans are data, not behaviour: the
:class:`~repro.faults.injector.FaultInjector` turns them into simulator
events, and :meth:`FaultPlan.canonical` turns them into the JSON string
hashed into the result-cache identity — two spellings of the same plan
share one cache entry, and different plans never collide.

Plans parse from a compact spec string (the ``--faults`` CLI argument
and the ``REPRO_FAULTS`` environment variable)::

    kind@target[,key=value...][;kind@target,...]

    link-down@link:1,at=5,duration=2      # one 2 s outage on link 1
    link-down@link:0,at=4,period=6,count=3  # a flapping port
    degrade@link:*,at=10,magnitude=0.5    # halve every link
    nic-down@link:2,at=8                  # permanent NIC failure
    loss@link:0,at=5,magnitude=0.3,period=4,count=5,jitter=0.5

Targets are ``category:selector`` pairs; the selector is an index into
the context's registration order, an inclusive index range
(``link:0-3``), a component name, or ``*`` for all registered
components of that category.  ``jitter`` adds an
exponentially-distributed delay (mean ``jitter`` seconds, drawn from the
context's ``"faults"`` RNG stream) to each occurrence, so randomized
plans stay bit-reproducible per seed.

**Failure domains** are hierarchical targets over registered topology
(``host:<name>``, ``tor:<pod>``, ``power:<domain>``): at arm time the
injector expands a domain to the correlated set of links registered
under it — a ToR cut takes out a whole pod of rails at once.  The
``stagger`` field spreads a multi-component expansion over seeded
exponential per-component offsets (mean ``stagger`` seconds from the
same ``"faults"`` stream), modeling the cascade of a real domain
failure instead of one synchronized instant.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "REPRO_FAULTS_ENV",
    "ambient_plan",
    "ambient_spec",
    "parse_range",
]

#: Environment variable carrying the ambient fault plan (``--faults``).
REPRO_FAULTS_ENV = "REPRO_FAULTS"

#: Every fault type the injector knows how to apply.
FAULT_KINDS = frozenset({
    "link-down",     # link outage; duration=0 means permanent
    "nic-down",      # permanent NIC/port failure (never restored)
    "degrade",       # clamp link to magnitude x nominal for duration
    "loss",          # loss burst: magnitude = fraction of in-flight window
    "qp-error",      # RDMA QP async error (stale rkey / retry exceeded)
    "cm-delay",      # CM handshakes pay +magnitude seconds for duration
    "target-stall",  # iSER target unresponsive: its links drop for duration
    "ssd-degrade",   # SSD latency spike: magnitude x bandwidth for duration
    "crash",         # process crash; restart after duration seconds
})

_TARGET_CATEGORIES = ("link", "nic", "ssd", "target", "transfer")

#: Hierarchical failure-domain categories: selectors name registered
#: topology groups (see ``FaultInjector.register_domain``) instead of
#: individual components, and expand to correlated link sets at arm time.
_DOMAIN_CATEGORIES = ("host", "tor", "power")

_FIELD_ALIASES = {
    "at": "at", "t": "at",
    "duration": "duration", "dur": "duration",
    "magnitude": "magnitude", "mag": "magnitude",
    "period": "period",
    "count": "count", "n": "count",
    "jitter": "jitter",
    "stagger": "stagger",
}


def parse_range(selector: str) -> "tuple[int, int] | None":
    """``"lo-hi"`` as an inclusive index pair, or None if not a range."""
    lo, sep, hi = selector.partition("-")
    if not sep or not lo.isdigit() or not hi.isdigit():
        return None
    return int(lo), int(hi)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a kind, a target selector, and its timing."""

    kind: str
    target: str
    at: float = 0.0
    duration: float = 0.0
    magnitude: float = 1.0
    period: float = 0.0
    count: int = 1
    jitter: float = 0.0
    #: Mean per-component offset (seconds) when the target expands to
    #: several components; 0 applies the whole set at one instant.
    stagger: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        category, sep, selector = self.target.partition(":")
        known = _TARGET_CATEGORIES + _DOMAIN_CATEGORIES
        if not sep or category not in known or not selector:
            raise ValueError(
                f"fault target must be 'category:selector' with category in "
                f"{known}, got {self.target!r}"
            )
        rng = parse_range(selector)
        if rng is not None:
            if category in _DOMAIN_CATEGORIES:
                raise ValueError(
                    f"range selectors index registration order and do not "
                    f"apply to failure domains, got {self.target!r}"
                )
            lo, hi = rng
            if lo > hi:
                raise ValueError(
                    f"bad range selector {selector!r} in {self.target!r}: "
                    f"need lo <= hi"
                )
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.stagger < 0:
            raise ValueError(f"stagger must be >= 0, got {self.stagger}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.count > 1 and self.period <= 0:
            raise ValueError("period must be > 0 when count > 1")
        if self.kind in ("degrade", "ssd-degrade", "loss"):
            if not (0.0 < self.magnitude <= 1.0):
                raise ValueError(
                    f"{self.kind} magnitude must be in (0, 1], "
                    f"got {self.magnitude}"
                )
        elif self.magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {self.magnitude}")

    @property
    def category(self) -> str:
        """The target category (``link``, ``ssd``, ...)."""
        return self.target.partition(":")[0]

    @property
    def selector(self) -> str:
        """The target selector (index, range, name, or ``*``)."""
        return self.target.partition(":")[2]

    @property
    def is_domain(self) -> bool:
        """True when the target names a failure domain (host/tor/power)."""
        return self.category in _DOMAIN_CATEGORIES

    @classmethod
    def parse(cls, clause: str) -> "FaultSpec":
        """Parse one ``kind@target[,key=value...]`` clause."""
        head, sep, _ = clause.partition("@")
        if not sep:
            raise ValueError(
                f"fault clause must look like 'kind@target[,key=value...]', "
                f"got {clause!r}"
            )
        parts = clause[len(head) + 1:].split(",")
        kwargs: dict = {"kind": head.strip(), "target": parts[0].strip()}
        for part in parts[1:]:
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or key not in _FIELD_ALIASES:
                raise ValueError(
                    f"bad fault field {part!r} in {clause!r}; expected one of "
                    f"{sorted(set(_FIELD_ALIASES))}"
                )
            name = _FIELD_ALIASES[key]
            kwargs[name] = int(value) if name == "count" else float(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered schedule of faults."""

    specs: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan entries must be FaultSpec, got {spec!r}")

    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.specs

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-separated spec string (empty string = empty plan)."""
        clauses = [c.strip() for c in text.split(";") if c.strip()]
        return cls(tuple(FaultSpec.parse(c) for c in clauses))

    def canonical(self) -> str:
        """Stable JSON form — the plan's result-cache identity component.

        ``stagger`` only appears when set: a plan that never staggers
        keys identically to its pre-domain-era spelling.
        """
        entries = []
        for s in self.specs:
            entry = {
                "kind": s.kind, "target": s.target, "at": s.at,
                "duration": s.duration, "magnitude": s.magnitude,
                "period": s.period, "count": s.count, "jitter": s.jitter,
            }
            if s.stagger > 0.0:
                entry["stagger"] = s.stagger
            entries.append(entry)
        return json.dumps(entries, sort_keys=True, separators=(",", ":"))


def ambient_plan() -> "FaultPlan | None":
    """The plan named by ``REPRO_FAULTS``, or None when unset/blank."""
    text = os.environ.get(REPRO_FAULTS_ENV, "").strip()
    return FaultPlan.parse(text) if text else None


def ambient_spec() -> str:
    """Canonical form of the ambient plan ("" when none) for cache keys."""
    plan = ambient_plan()
    return "" if plan is None or plan.empty else plan.canonical()
