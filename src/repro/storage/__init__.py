"""Storage substrate: block devices, tmpfs, SSD, SCSI/iSCSI/iSER SAN.

The paper's back-end is a storage area network: a tgtd-style target
daemon exports tmpfs-backed logical units over iSER (iSCSI extensions
for RDMA) across two IB FDR links; open-iscsi on the front-end hosts
exposes them as block devices.  This package rebuilds each layer:

* :mod:`repro.storage.blockdev` — block device abstraction + RAM disk,
* :mod:`repro.storage.tmpfs` — NUMA-placed memory store (``mpol=`` mounts),
* :mod:`repro.storage.ssd` — flash with thermal throttling (§4.1 anecdote),
* :mod:`repro.storage.scsi` — SCSI CDB encode/decode subset,
* :mod:`repro.storage.iscsi` — iSCSI PDU framing subset,
* :mod:`repro.storage.iser` — the RDMA datamover semantics,
* :mod:`repro.storage.target` — the multi-process target daemon + LUNs,
* :mod:`repro.storage.initiator` — open-iscsi-like initiator + sessions.
"""

from repro.storage.blockdev import BlockDevice, IoRequest, RamDisk
from repro.storage.daemon import QueuedCommand, TargetDaemon
from repro.storage.initiator import IserInitiator, IserSession, RemoteBlockDevice
from repro.storage.scsi import CDB, ScsiOp
from repro.storage.ssd import SsdDevice
from repro.storage.target import IserTarget, Lun
from repro.storage.tmpfs import TmpfsStore

__all__ = [
    "BlockDevice",
    "IoRequest",
    "RamDisk",
    "TmpfsStore",
    "SsdDevice",
    "ScsiOp",
    "CDB",
    "IserTarget",
    "Lun",
    "IserInitiator",
    "IserSession",
    "RemoteBlockDevice",
    "TargetDaemon",
    "QueuedCommand",
]
