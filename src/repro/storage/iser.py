"""iSER datamover: cost model and command semantics.

iSER (iSCSI Extensions for RDMA, RFC 7145) maps iSCSI data phases onto
one-sided RDMA (§3.1 of the paper):

* a **read** command makes the target push data with **RDMA WRITE**;
* a **write** command makes the target fetch data with **RDMA READ**.

The target in the paper is a tgtd-style daemon with a tmpfs *file*
backstore: data lands in registered bounce buffers by DMA and a worker
thread copies it to/from the tmpfs pages with the CPU.  That copy is the
NUMA-sensitive per-byte work behind Fig. 7/8 — remote placement slows the
copy and, for writes, adds cache-line invalidation traffic.

This module provides:

* the fluid **cost-spec builders** for target- and initiator-side work,
* :func:`io_round_trip_latency` — the fixed per-command latency that
  caps a queue-depth-limited stream,
* the :class:`IserDatamover` — event-level execution of one SCSI command
  over a QP, moving real bytes when the LUN stores them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.hw.cache import coherence_costs
from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path
from repro.net.link import Link
from repro.rdma.verbs import Opcode
from repro.sim.context import Context

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.target import Lun

__all__ = [
    "target_io_spec",
    "initiator_io_spec",
    "io_round_trip_latency",
    "IserDatamover",
]


def _copy_cpu_per_byte(cal, exec_fracs: Dict[int, float], mem_fracs: Dict[int, float]) -> float:
    remote = sum(
        ef * mf
        for en, ef in exec_fracs.items()
        for mn, mf in mem_fracs.items()
        if en != mn
    )
    return remote / cal.memcpy_rate_remote + (1 - remote) / cal.memcpy_rate_local


def target_io_spec(
    ctx: Context,
    thread: SimThread,
    file_fractions: Dict[int, float],
    is_write: bool,
    block_size: int,
    remote_shared_fraction: float,
    threads_per_lun: int = 1,
) -> PathSpec:
    """Per-byte work of the target serving one I/O stream.

    * command parsing/dispatch (fixed per command, inflated by lock
      contention when many threads hammer one LUN),
    * the bounce<->tmpfs CPU copy with its memory traffic,
    * for writes: coherence invalidation cost on pages shared by remote
      nodes (the Fig. 7/8 asymmetry).
    """
    cal = ctx.cal
    exec_fracs = thread.execution_fractions()
    lock_factor = 1.0 + 0.15 * max(0, threads_per_lun - 1)
    copy_cpu = _copy_cpu_per_byte(cal, exec_fracs, file_fractions)

    # tgtd's bulk copies are large and sequential, so the destination side
    # is written with non-temporal stores (no write-allocate): 1 read +
    # 1 write line crossing per byte.
    if is_write:
        traffic = (
            WorkItem.mem(exec_fracs, 1.0),  # read the bounce buffer
            WorkItem.mem(file_fractions, 1.0),  # NT-store into tmpfs pages
        )
        copy_cat = "offload"
    else:
        traffic = (
            WorkItem.mem(file_fractions, 1.0),  # read tmpfs pages
            WorkItem.mem(exec_fracs, 1.0),  # NT-store into the bounce buffer
        )
        copy_cat = "load"

    items = [
        WorkItem(
            "scsi command handling",
            per_op_cpu=cal.scsi_per_cmd_cpu * lock_factor,
            category="io",
        ),
        WorkItem(
            "bounce<->backstore copy",
            cpu_per_byte=copy_cpu,
            category=copy_cat,
            mem_traffic=traffic,
        ),
        WorkItem(
            "iser protocol",
            cpu_per_byte=1.0 / cal.iser_target_rate,
            category="usr_proto",
        ),
    ]
    coh = coherence_costs(cal, remote_shared_fraction, is_write=is_write)
    if coh.cpu_per_byte > 0:
        items.append(
            WorkItem(
                "coherence invalidation",
                cpu_per_byte=coh.cpu_per_byte,
                category="coherence",
            )
        )
    spec = build_thread_path(thread, items, op_size=block_size)
    # invalidation/ownership traffic crosses the interconnect both ways
    if coh.qpi_traffic_factor > 0 and thread.machine.n_nodes > 1:
        m = thread.machine
        half = coh.qpi_traffic_factor / 2.0
        spec.path.append((m.qpi(0, 1), half))
        spec.path.append((m.qpi(1, 0), half))
    return spec


def initiator_io_spec(
    ctx: Context,
    thread: SimThread,
    block_size: int,
) -> PathSpec:
    """Per-byte work at the initiator: command issue + completion.

    The initiator is zero-copy (iSER DMAs straight into the application
    buffer for raw-device access), so only fixed per-command CPU remains.
    """
    cal = ctx.cal
    items = [
        WorkItem(
            "scsi issue/complete",
            per_op_cpu=cal.scsi_initiator_per_cmd_cpu,
            category="io",
        ),
        WorkItem(
            "iser initiator protocol",
            cpu_per_byte=1.0 / (2 * cal.iser_target_rate),
            category="usr_proto",
        ),
    ]
    return build_thread_path(thread, items, op_size=block_size)


def io_round_trip_latency(ctx: Context, link: Link, is_write: bool) -> float:
    """Fixed latency of one SCSI command round trip over iSER.

    command PDU (SEND) + RDMA data op + response PDU (SEND); writes pay
    the RDMA READ request trip on top.
    """
    cal = ctx.cal
    fixed = 2 * link.delay + 3 * cal.rdma_op_latency
    fixed += cal.scsi_per_cmd_cpu + cal.scsi_initiator_per_cmd_cpu
    if is_write:
        fixed += cal.rdma_read_extra_latency + link.delay
    return fixed


@dataclass
class IserDatamover:
    """Event-level execution of SCSI commands over a QP pair.

    ``initiator_qp``/``target_qp`` must be a connected pair.  Data is
    carried by real RDMA ops so MR protection and (when LUNs store real
    bytes) payload integrity are exercised end to end.
    """

    ctx: Context
    initiator_qp: "object"  # QueuePair
    target_qp: "object"  # QueuePair

    def execute(self, lun: "Lun", is_write: bool, offset: int, length: int,
                initiator_mr, initiator_offset: int = 0):
        """A process generator performing one I/O; yields until complete.

        Returns the SCSI status (0 = GOOD).
        """
        from repro.rdma.verbs import WorkRequest, WrStatus

        sim = self.ctx.sim
        cal = self.ctx.cal
        link = self.initiator_qp.link

        # command PDU: SEND (latency-only, small)
        yield sim.timeout(cal.rdma_op_latency + link.delay)
        if offset + length > lun.capacity_bytes:
            # target: check condition, response PDU back
            yield sim.timeout(cal.rdma_op_latency + link.delay)
            return 0x02  # CHECK CONDITION

        lun_mr = lun.memory_region()
        if is_write:
            # target fetches payload from the initiator via RDMA READ
            wr = WorkRequest(
                Opcode.RDMA_READ,
                lun_mr,
                local_offset=offset,
                length=length,
                remote_rkey=initiator_mr.rkey,
                remote_offset=initiator_offset,
            )
            completion = yield self.target_qp.post_send(wr)
        else:
            # target pushes payload with RDMA WRITE
            wr = WorkRequest(
                Opcode.RDMA_WRITE,
                lun_mr,
                local_offset=offset,
                length=length,
                remote_rkey=initiator_mr.rkey,
                remote_offset=initiator_offset,
            )
            completion = yield self.target_qp.post_send(wr)
        # response PDU
        yield sim.timeout(cal.rdma_op_latency + link.delay)
        return 0x00 if completion.status is WrStatus.SUCCESS else 0x02
