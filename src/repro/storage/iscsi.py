"""iSCSI PDU framing subset (RFC 7143 layout).

iSER replaces iSCSI's TCP data phases with RDMA operations but keeps the
PDU vocabulary for commands and responses.  This module implements the
Basic Header Segment (48 bytes) for the PDUs the SAN path exchanges:
SCSI Command, SCSI Response, Login Request/Response, NOP — byte-exact,
with property-tested round-trips.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.storage.scsi import CDB, ScsiError

__all__ = ["PduOpcode", "BasicHeaderSegment", "ScsiCommandPdu", "ScsiResponsePdu",
           "LoginRequestPdu", "LoginResponsePdu", "NopOutPdu", "NopInPdu",
           "TaskManagementRequestPdu", "TaskManagementResponsePdu",
           "TmFunction", "decode_pdu", "IscsiError"]

BHS_SIZE = 48


class IscsiError(ValueError):
    """Malformed PDU."""


class PduOpcode(enum.IntEnum):
    # initiator opcodes
    """iSCSI PDU opcodes (initiator and target halves)."""
    NOP_OUT = 0x00
    SCSI_COMMAND = 0x01
    TASK_MGMT_REQUEST = 0x02
    LOGIN_REQUEST = 0x03
    # target opcodes
    NOP_IN = 0x20
    SCSI_RESPONSE = 0x21
    TASK_MGMT_RESPONSE = 0x22
    LOGIN_RESPONSE = 0x23


class TmFunction(enum.IntEnum):
    """Task-management functions (RFC 7143 §11.5.1)."""

    ABORT_TASK = 1
    LUN_RESET = 5


@dataclass(frozen=True)
class BasicHeaderSegment:
    """The fixed 48-byte header common to all PDUs."""

    opcode: PduOpcode
    flags: int = 0
    data_segment_length: int = 0
    lun: int = 0
    initiator_task_tag: int = 0
    opcode_specific: bytes = bytes(28)

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        if not (0 <= self.data_segment_length < 1 << 24):
            raise IscsiError(f"DSL out of range: {self.data_segment_length}")
        if len(self.opcode_specific) != 28:
            raise IscsiError("opcode-specific field must be 28 bytes")
        dsl = self.data_segment_length
        header = struct.pack(
            ">BBBB",
            int(self.opcode),
            self.flags,
            0,
            0,
        )
        ahs_dsl = bytes([0, (dsl >> 16) & 0xFF, (dsl >> 8) & 0xFF, dsl & 0xFF])
        lun = struct.pack(">Q", self.lun)
        itt = struct.pack(">I", self.initiator_task_tag)
        out = header + ahs_dsl + lun + itt + self.opcode_specific
        assert len(out) == BHS_SIZE
        return out

    @classmethod
    def decode(cls, raw: bytes) -> "BasicHeaderSegment":
        """Parse the wire format (raises the typed protocol error on junk)."""
        if len(raw) < BHS_SIZE:
            raise IscsiError(f"short BHS: {len(raw)} bytes")
        opcode_byte = raw[0] & 0x3F
        try:
            opcode = PduOpcode(opcode_byte)
        except ValueError as exc:
            raise IscsiError(f"unknown PDU opcode {opcode_byte:#x}") from exc
        flags = raw[1]
        dsl = (raw[5] << 16) | (raw[6] << 8) | raw[7]
        (lun,) = struct.unpack(">Q", raw[8:16])
        (itt,) = struct.unpack(">I", raw[16:20])
        return cls(
            opcode=opcode,
            flags=flags,
            data_segment_length=dsl,
            lun=lun,
            initiator_task_tag=itt,
            opcode_specific=bytes(raw[20:48]),
        )


@dataclass(frozen=True)
class ScsiCommandPdu:
    """SCSI Command PDU: BHS carrying a CDB and expected transfer length."""

    lun: int
    task_tag: int
    cdb: CDB
    expected_data_length: int

    FLAG_FINAL = 0x80
    FLAG_READ = 0x40
    FLAG_WRITE = 0x20

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        flags = self.FLAG_FINAL
        if self.cdb.is_data_transfer:
            flags |= self.FLAG_WRITE if self.cdb.is_write else self.FLAG_READ
        cdb_bytes = self.cdb.encode().ljust(16, b"\x00")
        specific = struct.pack(">I", self.expected_data_length) + cdb_bytes + bytes(8)
        return BasicHeaderSegment(
            opcode=PduOpcode.SCSI_COMMAND,
            flags=flags,
            data_segment_length=0,
            lun=self.lun,
            initiator_task_tag=self.task_tag,
            opcode_specific=specific,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "ScsiCommandPdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.SCSI_COMMAND:
            raise IscsiError(f"not a SCSI command PDU: {bhs.opcode!r}")
        (edl,) = struct.unpack(">I", bhs.opcode_specific[:4])
        try:
            cdb = CDB.decode(bhs.opcode_specific[4:20])
        except ScsiError as exc:
            raise IscsiError(f"bad CDB in command PDU: {exc}") from exc
        return cls(
            lun=bhs.lun, task_tag=bhs.initiator_task_tag, cdb=cdb,
            expected_data_length=edl,
        )


@dataclass(frozen=True)
class ScsiResponsePdu:
    """SCSI Response PDU: status, residual count and sense data.

    ``sense_key``/``asc`` carry the fixed-format sense essentials when
    ``status`` is CHECK CONDITION (0x02).
    """

    task_tag: int
    status: int = 0
    residual: int = 0
    sense_key: int = 0
    asc: int = 0

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        specific = (
            struct.pack(">BIBB", self.status, self.residual,
                        self.sense_key, self.asc)
            + bytes(21)
        )
        return BasicHeaderSegment(
            opcode=PduOpcode.SCSI_RESPONSE,
            flags=0x80,
            initiator_task_tag=self.task_tag,
            opcode_specific=specific,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "ScsiResponsePdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.SCSI_RESPONSE:
            raise IscsiError(f"not a SCSI response PDU: {bhs.opcode!r}")
        status, residual, sense_key, asc = struct.unpack(
            ">BIBB", bhs.opcode_specific[:7])
        return cls(task_tag=bhs.initiator_task_tag, status=status,
                   residual=residual, sense_key=sense_key, asc=asc)


@dataclass(frozen=True)
class NopOutPdu:
    """NOP-Out: initiator keepalive ping."""

    task_tag: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        return BasicHeaderSegment(
            opcode=PduOpcode.NOP_OUT, flags=0x80,
            initiator_task_tag=self.task_tag,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "NopOutPdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.NOP_OUT:
            raise IscsiError(f"not a NOP-Out: {bhs.opcode!r}")
        return cls(task_tag=bhs.initiator_task_tag)


@dataclass(frozen=True)
class NopInPdu:
    """NOP-In: the target's pong."""

    task_tag: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        return BasicHeaderSegment(
            opcode=PduOpcode.NOP_IN, flags=0x80,
            initiator_task_tag=self.task_tag,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "NopInPdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.NOP_IN:
            raise IscsiError(f"not a NOP-In: {bhs.opcode!r}")
        return cls(task_tag=bhs.initiator_task_tag)


@dataclass(frozen=True)
class TaskManagementRequestPdu:
    """ABORT TASK / LUN RESET request."""

    function: TmFunction
    task_tag: int
    referenced_task_tag: int = 0
    lun: int = 0

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        specific = struct.pack(">I", self.referenced_task_tag) + bytes(24)
        return BasicHeaderSegment(
            opcode=PduOpcode.TASK_MGMT_REQUEST,
            flags=0x80 | int(self.function),
            lun=self.lun,
            initiator_task_tag=self.task_tag,
            opcode_specific=specific,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "TaskManagementRequestPdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.TASK_MGMT_REQUEST:
            raise IscsiError(f"not a TM request: {bhs.opcode!r}")
        try:
            fn = TmFunction(bhs.flags & 0x7F)
        except ValueError as exc:
            raise IscsiError(f"unknown TM function {bhs.flags & 0x7F}") from exc
        (ref,) = struct.unpack(">I", bhs.opcode_specific[:4])
        return cls(function=fn, task_tag=bhs.initiator_task_tag,
                   referenced_task_tag=ref, lun=bhs.lun)


@dataclass(frozen=True)
class TaskManagementResponsePdu:
    """TM response: 0 = function complete, 1 = task does not exist."""

    task_tag: int
    response: int = 0

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        specific = bytes([self.response]) + bytes(27)
        return BasicHeaderSegment(
            opcode=PduOpcode.TASK_MGMT_RESPONSE, flags=0x80,
            initiator_task_tag=self.task_tag, opcode_specific=specific,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "TaskManagementResponsePdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.TASK_MGMT_RESPONSE:
            raise IscsiError(f"not a TM response: {bhs.opcode!r}")
        return cls(task_tag=bhs.initiator_task_tag,
                   response=bhs.opcode_specific[0])


@dataclass(frozen=True)
class LoginRequestPdu:
    """Login request (simplified: a single full-feature negotiation)."""

    initiator_name: str
    target_name: str
    task_tag: int = 0

    def encode(self) -> tuple[bytes, bytes]:
        """Returns (BHS, data segment) — login carries text keys as data."""
        text = (
            f"InitiatorName={self.initiator_name}\x00"
            f"TargetName={self.target_name}\x00"
            "HeaderDigest=None\x00DataDigest=None\x00RDMAExtensions=Yes\x00"
        ).encode()
        bhs = BasicHeaderSegment(
            opcode=PduOpcode.LOGIN_REQUEST,
            flags=0x87,  # transit to full-feature
            data_segment_length=len(text),
            initiator_task_tag=self.task_tag,
        ).encode()
        return bhs, text

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment, data: bytes) -> "LoginRequestPdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.LOGIN_REQUEST:
            raise IscsiError(f"not a login request: {bhs.opcode!r}")
        keys = dict(
            kv.split("=", 1)
            for kv in data.decode(errors="replace").split("\x00")
            if "=" in kv
        )
        if "InitiatorName" not in keys or "TargetName" not in keys:
            raise IscsiError("login missing InitiatorName/TargetName")
        return cls(
            initiator_name=keys["InitiatorName"],
            target_name=keys["TargetName"],
            task_tag=bhs.initiator_task_tag,
        )


@dataclass(frozen=True)
class LoginResponsePdu:
    """Login response: success moves the session to full-feature phase."""

    task_tag: int = 0
    status_class: int = 0  # 0 = success

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        specific = bytes([self.status_class]) + bytes(27)
        return BasicHeaderSegment(
            opcode=PduOpcode.LOGIN_RESPONSE,
            flags=0x87,
            initiator_task_tag=self.task_tag,
            opcode_specific=specific,
        ).encode()

    @classmethod
    def from_bhs(cls, bhs: BasicHeaderSegment) -> "LoginResponsePdu":
        """Build from a decoded basic header segment."""
        if bhs.opcode is not PduOpcode.LOGIN_RESPONSE:
            raise IscsiError(f"not a login response: {bhs.opcode!r}")
        return cls(task_tag=bhs.initiator_task_tag, status_class=bhs.opcode_specific[0])


def decode_pdu(raw: bytes):
    """Decode a BHS and dispatch to the specific PDU class."""
    bhs = BasicHeaderSegment.decode(raw)
    dispatch = {
        PduOpcode.SCSI_COMMAND: ScsiCommandPdu.from_bhs,
        PduOpcode.SCSI_RESPONSE: ScsiResponsePdu.from_bhs,
        PduOpcode.LOGIN_RESPONSE: LoginResponsePdu.from_bhs,
        PduOpcode.NOP_OUT: NopOutPdu.from_bhs,
        PduOpcode.NOP_IN: NopInPdu.from_bhs,
        PduOpcode.TASK_MGMT_REQUEST: TaskManagementRequestPdu.from_bhs,
        PduOpcode.TASK_MGMT_RESPONSE: TaskManagementResponsePdu.from_bhs,
    }
    fn = dispatch.get(bhs.opcode)
    return fn(bhs) if fn is not None else bhs
