"""Event-level target daemon: command queue + worker pool.

The fluid layer models tgtd's steady-state throughput; this module
models its *queueing* behaviour at event granularity: SCSI commands
arrive over the session, wait in a bounded command queue, are picked up
by a fixed pool of worker processes (:data:`IserTarget.WORKERS_PER_PROCESS`
per target process), execute their RDMA data phase, and complete back to
the initiator.  Saturating the pool makes latency grow linearly with
queue depth — the contention the paper's threads-per-LUN sweep probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.rdma.verbs import Opcode, QueuePair, WorkRequest, WrStatus
from repro.sim.context import Context
from repro.sim.engine import Event, Interrupt
from repro.sim.resources import Store
from repro.storage.target import IserTarget, Lun

__all__ = ["QueuedCommand", "TargetDaemon"]

_cmd_ids = count(1)


@dataclass
class QueuedCommand:
    """One SCSI command waiting for a target worker."""

    lun: Lun
    is_write: bool
    offset: int
    length: int
    initiator_mr: object
    initiator_offset: int = 0
    done: Optional[Event] = None
    cmd_id: int = field(default_factory=lambda: next(_cmd_ids))
    enqueued_at: float = 0.0
    started_at: float = 0.0
    completed_at: float = 0.0

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting in the command queue."""
        return self.started_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Seconds from dispatch to completion."""
        return self.completed_at - self.started_at


class TargetDaemon:
    """The command loop of one target process.

    ``target_qp`` is the target side of a connected session QP pair (it
    posts the RDMA data operations).  ``n_workers`` bounds concurrency;
    ``queue_depth`` bounds the command queue (full queue -> the submit
    event blocks, exactly like a full iSCSI command window).
    """

    def __init__(
        self,
        ctx: Context,
        target: IserTarget,
        target_qp: QueuePair,
        n_workers: Optional[int] = None,
        queue_depth: int = 128,
        name: str = "",
    ):
        self.ctx = ctx
        self.target = target
        self.qp = target_qp
        self.name = name or f"{target.name}/daemon"
        self.n_workers = (
            n_workers if n_workers is not None else target.WORKERS_PER_PROCESS
        )
        if self.n_workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.n_workers}")
        self.queue = Store(ctx.sim, capacity=queue_depth, name=f"{self.name}/q")
        self.completed: list[QueuedCommand] = []
        self.running = True
        self._idle: set[int] = set()
        self._workers = [
            ctx.sim.process(self._worker(i), name=f"{self.name}/w{i}")
            for i in range(self.n_workers)
        ]

    # -- submission -----------------------------------------------------------------
    def submit(self, cmd: QueuedCommand) -> Event:
        """Enqueue a command; returns its completion event (SCSI status)."""
        if not self.running:
            raise RuntimeError(f"daemon {self.name!r} is shut down")
        cmd.done = self.ctx.sim.event(name=f"{self.name}/cmd{cmd.cmd_id}")
        cmd.enqueued_at = self.ctx.sim.now

        def enqueue():
            yield self.queue.put(cmd)

        self.ctx.sim.process(enqueue(), name=f"{self.name}/enq")
        return cmd.done

    # -- the worker loop ---------------------------------------------------------------
    def _worker(self, index: int):
        cal = self.ctx.cal
        sim = self.ctx.sim
        while True:
            self._idle.add(index)
            try:
                cmd = yield self.queue.get()
            except Interrupt:
                return
            finally:
                self._idle.discard(index)
            cmd.started_at = sim.now
            # per-command CPU at the target (parse, tag, dispatch)
            yield sim.timeout(cal.scsi_per_cmd_cpu)
            if cmd.offset + cmd.length > cmd.lun.capacity_bytes:
                status = 0x02  # CHECK CONDITION: LBA out of range
            else:
                lun_mr = cmd.lun.memory_region()
                if cmd.is_write:
                    wr = WorkRequest(
                        Opcode.RDMA_READ, lun_mr, local_offset=cmd.offset,
                        length=cmd.length,
                        remote_rkey=cmd.initiator_mr.rkey,
                        remote_offset=cmd.initiator_offset,
                    )
                else:
                    wr = WorkRequest(
                        Opcode.RDMA_WRITE, lun_mr, local_offset=cmd.offset,
                        length=cmd.length,
                        remote_rkey=cmd.initiator_mr.rkey,
                        remote_offset=cmd.initiator_offset,
                    )
                completion = yield self.qp.post_send(wr)
                status = 0x00 if completion.status is WrStatus.SUCCESS else 0x02
            # response PDU back to the initiator
            yield sim.timeout(cal.rdma_op_latency + self.qp.link.delay)
            cmd.completed_at = sim.now
            self.completed.append(cmd)
            cmd.done.succeed(status)

    # -- lifecycle --------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop accepting commands and terminate idle workers.

        Workers mid-command finish it; queued-but-unstarted commands are
        failed with a shutdown error."""
        self.running = False
        while True:
            cmd = self.queue.try_get()
            if cmd is None:
                break
            cmd.done.fail(RuntimeError("target daemon shut down"))
        for i, w in enumerate(self._workers):
            if w.is_alive and i in self._idle:
                w.interrupt("shutdown")

    # -- statistics --------------------------------------------------------------------
    def mean_queue_wait(self) -> float:
        """Mean queue wait over completed commands."""
        if not self.completed:
            return 0.0
        return sum(c.queue_wait for c in self.completed) / len(self.completed)

    def mean_service_time(self) -> float:
        """Mean service time over completed commands."""
        if not self.completed:
            return 0.0
        return sum(c.service_time for c in self.completed) / len(self.completed)
