"""The iSER target daemon and its logical units.

Models tgtd (the paper uses "SCSI target daemon version 1.0.31") with a
tmpfs backstore and the two scheduling regimes of §3.1:

* ``tuning="default"`` — one multi-threaded target process, threads
  migrate across nodes, tmpfs files allocated with the default policy
  (pages spread over both nodes), and writes invalidate remotely shared
  cache lines;
* ``tuning="numa"`` — one target process **per NUMA node**, each bound
  with numactl and serving only LUNs whose tmpfs files are pinned
  (``mpol``) to its node: all copies local, invalidations on-die.

Each LUN is assigned to an IB link round-robin, reproducing the paper's
"split and load-balanced all I/O requests between the two available
InfiniBand links".
"""

from __future__ import annotations

from typing import Dict, Literal, Optional

import numpy as np

from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy, numactl
from repro.kernel.process import SimProcess, SimThread
from repro.kernel.work import PathSpec
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.sim.context import Context
from repro.storage.iser import target_io_spec
from repro.storage.tmpfs import TmpfsFile, TmpfsStore
from repro.util.validation import check_positive

__all__ = ["Lun", "IserTarget"]

Tuning = Literal["default", "numa"]


class Lun:
    """One exported logical unit, backed by a tmpfs file."""

    def __init__(self, target: "IserTarget", lun_id: int, file: TmpfsFile,
                 link_index: int, store_data: bool = False):
        self.target = target
        self.lun_id = lun_id
        self.file = file
        self.link_index = link_index
        self.data: Optional[np.ndarray] = (
            np.zeros(file.size_bytes, dtype=np.uint8) if store_data else None
        )
        self._mr: Optional[MemoryRegion] = None

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes."""
        return self.file.size_bytes

    @property
    def node_fractions(self) -> Dict[int, float]:
        """Share of the region on each NUMA node."""
        return self.file.placement.node_fractions()

    @property
    def home_node(self) -> int:
        """The NUMA node holding (most of) the backing pages."""
        return self.file.placement.dominant_node()

    def memory_region(self) -> MemoryRegion:
        """The registered MR covering the backstore (lazy)."""
        if self._mr is None:
            self._mr = self.target.pd.register(
                self.file.placement, data=self.data, name=f"lun{self.lun_id}"
            )
        return self._mr

    def __repr__(self) -> str:
        return (
            f"<Lun {self.lun_id} {self.capacity_bytes >> 30} GiB "
            f"node={self.home_node} link={self.link_index}>"
        )


class IserTarget:
    """The target daemon: processes, worker threads and exported LUNs."""

    #: worker threads per target process (tgtd default-ish pool).
    WORKERS_PER_PROCESS = 8

    def __init__(
        self,
        ctx: Context,
        machine: Machine,
        *,
        tuning: Tuning = "default",
        n_links: int = 2,
        name: str = "tgtd",
    ):
        check_positive("n_links", n_links)
        self.ctx = ctx
        self.machine = machine
        self.tuning: Tuning = tuning
        self.n_links = n_links
        self.name = name
        if ctx.faults is not None:
            ctx.faults.add_target(self)
        self.pd = ProtectionDomain(machine, f"{name}/pd")
        from repro.rdma.cm import ConnectionManager

        ConnectionManager.register_pd(self.pd)

        self.luns: list[Lun] = []
        self._rr: Dict[int, int] = {}  # per-process worker round-robin

        if tuning == "numa":
            # one tmpfs mount per node, one bound process per node
            self.stores = [
                TmpfsStore(
                    machine,
                    int(machine.mem_bank(n).size_bytes * 0.9),
                    mpol=NumaPolicy.bind(n),
                    name=f"{name}/tmpfs{n}",
                )
                for n in range(machine.n_nodes)
            ]
            self.processes = []
            for n in range(machine.n_nodes):
                proc = SimProcess(machine, f"{name}.{n}")
                numactl(proc, cpunodebind=[n], membind=[n])
                self.processes.append(proc)
        else:
            self.stores = [
                TmpfsStore(
                    machine,
                    int(machine.total_memory_bytes * 0.9),
                    mpol=NumaPolicy.default(),
                    name=f"{name}/tmpfs",
                )
            ]
            self.processes = [SimProcess(machine, f"{name}.0")]

        for proc in self.processes:
            for _ in range(self.WORKERS_PER_PROCESS):
                proc.spawn_thread()

    # -- LUN management ---------------------------------------------------------
    def create_lun(self, size_bytes: int, store_data: bool = False) -> Lun:
        """Create and export a LUN; placement follows the tuning regime."""
        lun_id = len(self.luns)
        link_index = lun_id % self.n_links
        if self.tuning == "numa":
            # pin the LUN to the node local to its link's NIC:
            # link i attaches to the NIC on socket i (Fig. 2 layout).
            node = link_index % self.machine.n_nodes
            store = self.stores[node]
            file = store.create(f"lun{lun_id}", size_bytes)
        else:
            store = self.stores[0]
            file = store.create(f"lun{lun_id}", size_bytes, touch_node=None)
        lun = Lun(self, lun_id, file, link_index, store_data=store_data)
        self.luns.append(lun)
        return lun

    def process_for(self, lun: Lun) -> SimProcess:
        """The target process responsible for a LUN."""
        if self.tuning == "numa":
            return self.processes[lun.home_node]
        return self.processes[0]

    def worker_for(self, lun: Lun) -> SimThread:
        """Pick a worker thread (round-robin within the owning process)."""
        proc = self.process_for(lun)
        idx = self._rr.get(id(proc), 0)
        self._rr[id(proc)] = idx + 1
        return proc.threads[idx % len(proc.threads)]

    def remote_shared_fraction(self) -> float:
        """Fraction of backstore pages with remote cache-line sharers.

        Default scheduling lets every node's threads touch every LUN, so
        roughly ``default_remote_fraction`` of written lines have remote
        copies to invalidate; per-node binding keeps sharing on-die.
        """
        if self.tuning == "numa":
            return 0.0
        return self.ctx.cal.default_remote_fraction

    def io_spec(
        self,
        lun: Lun,
        is_write: bool,
        block_size: int,
        threads_per_lun: int = 1,
    ) -> PathSpec:
        """Target-side fluid spec for a stream against *lun*."""
        thread = self.worker_for(lun)
        return target_io_spec(
            self.ctx,
            thread,
            lun.node_fractions,
            is_write=is_write,
            block_size=block_size,
            remote_shared_fraction=self.remote_shared_fraction(),
            threads_per_lun=threads_per_lun,
        )

    def accounting(self):
        """Merged CPU ledger across all target processes/threads."""
        ledgers = [p.merged_accounting() for p in self.processes]
        return ledgers[0].merged(ledgers[1:]) if ledgers else None

    def __repr__(self) -> str:
        return (
            f"<IserTarget {self.name!r} tuning={self.tuning} "
            f"luns={len(self.luns)} procs={len(self.processes)}>"
        )
