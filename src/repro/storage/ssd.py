"""Flash SSD with thermal throttling.

Reproduces the paper's §4.1 observation that forced the authors onto a
memory-backed SAN:

    "when applications read or wrote 100 gigabytes data or more
     continuously to the SSD drive, the thermal-throttling technology of
     SSDs proactively took actions to throttle the system's performance
     [...] degraded the I/O's performance to about 500MB/s"

The device is a fluid resource whose capacity drops from the burst rate
to the throttled rate when accumulated *heat* (bytes served above the
sustainable rate) exceeds a budget, and recovers after a cool-down.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path
from repro.sim.context import Context
from repro.sim.engine import Event
from repro.sim.fluid import FluidFlow, FluidResource
from repro.storage.blockdev import BlockDevice, IoRequest

__all__ = ["SsdDevice"]


class SsdDevice(BlockDevice):
    """A PCIe flash device (Fusion-IO class) with a thermal model.

    Heat accumulates with every byte served and dissipates at the
    sustainable (throttled) rate.  Above ``thermal_budget`` the firmware
    clamps throughput to the throttled rate until heat falls below half
    the budget (hysteresis), mirroring real drives' saw-tooth behaviour.
    """

    #: thermal-check period (seconds, simulated).
    CHECK_INTERVAL = 1.0

    def __init__(
        self,
        ctx: Context,
        name: str,
        capacity_bytes: int,
        *,
        burst_rate: Optional[float] = None,
        throttled_rate: Optional[float] = None,
        thermal_budget: Optional[float] = None,
    ):
        super().__init__(ctx, name, capacity_bytes)
        cal = ctx.cal
        self.burst_rate = burst_rate if burst_rate is not None else cal.ssd_burst_bandwidth
        self.throttled_rate = (
            throttled_rate if throttled_rate is not None else cal.ssd_throttled_bandwidth
        )
        self.thermal_budget = (
            thermal_budget if thermal_budget is not None else cal.ssd_thermal_budget_bytes
        )
        if self.throttled_rate >= self.burst_rate:
            raise ValueError("throttled rate must be below burst rate")
        self.bandwidth = FluidResource(ctx.fluid, self.burst_rate, f"{name}/flash")
        self.heat = 0.0
        self.throttled = False
        self._served_snapshot = 0.0
        self._served_total = 0.0
        self._last_check = ctx.sim.now
        ctx.sim.process(self._thermal_loop(), name=f"{name}/thermal")
        if ctx.faults is not None:
            ctx.faults.add_ssd(self)

    # -- thermal model ------------------------------------------------------------
    def _record_service(self, nbytes: float) -> None:
        self._served_total += nbytes

    def _thermal_loop(self):
        sim = self.ctx.sim
        while True:
            yield sim.timeout(self.CHECK_INTERVAL)
            self.ctx.fluid.settle()
            elapsed = sim.now - self._last_check
            self._last_check = sim.now
            served = self._served_total - self._served_snapshot
            self._served_snapshot = self._served_total
            # heat grows with service, dissipates at the sustainable rate
            self.heat = max(0.0, self.heat + served - self.throttled_rate * elapsed)
            if not self.throttled and self.heat >= self.thermal_budget:
                self.throttled = True
                self.bandwidth.set_capacity(self.throttled_rate)
                self.ctx.trace.emit("ssd", "thermal throttle engaged", name=self.name)
            elif self.throttled and self.heat <= 0.5 * self.thermal_budget:
                self.throttled = False
                self.bandwidth.set_capacity(self.burst_rate)
                self.ctx.trace.emit("ssd", "thermal throttle released", name=self.name)

    # -- BlockDevice API -------------------------------------------------------------
    class _Meter:
        """Charge target that feeds served bytes back into the heat model."""

        def __init__(self, ssd: "SsdDevice"):
            self.ssd = ssd

        def add(self, amount: float) -> None:
            """Accumulate an amount."""
            self.ssd._record_service(amount)

    def bulk_path(self, is_write: bool, thread: SimThread, block_size: int) -> PathSpec:
        """Fluid path of streaming sequential I/O on this device."""
        cal = self.ctx.cal
        items = [
            WorkItem(
                "nvme submission",
                cpu_per_byte=0.0,
                per_op_cpu=cal.scsi_per_cmd_cpu,
                category="io",
            )
        ]
        spec = build_thread_path(thread, items, op_size=block_size)
        spec.path.append((self.bandwidth, 1.0))
        spec.charges.append((SsdDevice._Meter(self), 1.0))
        return spec

    def submit(self, req: IoRequest, thread: Optional[SimThread] = None) -> Event:
        """Execute one I/O; the returned event fires at completion."""
        self._check(req)
        self._count(req)
        done = self.ctx.sim.event(name=f"{self.name}/io")

        def run():
            path = [(self.bandwidth, 1.0)]
            flow = FluidFlow(
                path,
                size=float(req.length),
                charges=((SsdDevice._Meter(self), 1.0),),
                name=f"{self.name}/io",
            )
            yield self.ctx.fluid.start(flow)
            done.succeed(req)

        self.ctx.sim.process(run(), name=f"{self.name}/io")
        return done
