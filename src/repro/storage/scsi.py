"""SCSI command subset: CDB encoding/decoding.

The iSCSI layer carries SCSI Command Descriptor Blocks; this module
implements the commands the SAN path needs — READ(16), WRITE(16),
READ CAPACITY(16), INQUIRY, TEST UNIT READY — with byte-exact encoding
so the protocol stack round-trips real bytes (validated by property
tests).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = ["ScsiOp", "CDB", "ScsiError", "SENSE_OK", "SENSE_ILLEGAL_REQUEST"]

#: Logical block size used throughout (512-byte sectors).
BLOCK_SIZE = 512

SENSE_OK = 0x00
SENSE_ILLEGAL_REQUEST = 0x05


class ScsiError(ValueError):
    """Malformed or unsupported CDB."""


class ScsiOp(enum.IntEnum):
    """Supported SCSI command opcodes."""
    TEST_UNIT_READY = 0x00
    INQUIRY = 0x12
    READ_CAPACITY_16 = 0x9E
    READ_16 = 0x88
    WRITE_16 = 0x8A


@dataclass(frozen=True)
class CDB:
    """A decoded command descriptor block."""

    op: ScsiOp
    lba: int = 0  # logical block address
    blocks: int = 0  # transfer length in logical blocks

    @property
    def byte_length(self) -> int:
        """Transfer length in bytes."""
        return self.blocks * BLOCK_SIZE

    @property
    def byte_offset(self) -> int:
        """Starting offset in bytes."""
        return self.lba * BLOCK_SIZE

    @property
    def is_write(self) -> bool:
        """True for WRITE commands."""
        return self.op is ScsiOp.WRITE_16

    @property
    def is_data_transfer(self) -> bool:
        """True for READ/WRITE (data-moving) commands."""
        return self.op in (ScsiOp.READ_16, ScsiOp.WRITE_16)

    # -- encoding ---------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the 16-byte (or 6-byte) wire CDB."""
        if self.op in (ScsiOp.READ_16, ScsiOp.WRITE_16):
            if self.lba < 0 or self.lba >= 1 << 64:
                raise ScsiError(f"LBA out of range: {self.lba}")
            if self.blocks <= 0 or self.blocks >= 1 << 32:
                raise ScsiError(f"transfer length out of range: {self.blocks}")
            return struct.pack(
                ">BBQIBB", int(self.op), 0, self.lba, self.blocks, 0, 0
            )
        if self.op is ScsiOp.READ_CAPACITY_16:
            # service action 0x10 in byte 1
            return struct.pack(">BB", int(self.op), 0x10) + bytes(14)
        if self.op is ScsiOp.INQUIRY:
            return struct.pack(">BBBHB", int(self.op), 0, 0, 96, 0) + bytes(0)
        if self.op is ScsiOp.TEST_UNIT_READY:
            return bytes(6)
        raise ScsiError(f"cannot encode op {self.op!r}")

    @classmethod
    def decode(cls, raw: bytes) -> "CDB":
        """Parse a wire CDB (raises :class:`ScsiError` on junk)."""
        if not raw:
            raise ScsiError("empty CDB")
        opcode = raw[0]
        if opcode == ScsiOp.TEST_UNIT_READY and len(raw) >= 6:
            return cls(ScsiOp.TEST_UNIT_READY)
        if opcode == ScsiOp.INQUIRY:
            if len(raw) < 6:
                raise ScsiError("short INQUIRY CDB")
            return cls(ScsiOp.INQUIRY)
        if opcode == ScsiOp.READ_CAPACITY_16:
            if len(raw) < 16:
                raise ScsiError("short READ CAPACITY(16) CDB")
            return cls(ScsiOp.READ_CAPACITY_16)
        if opcode in (ScsiOp.READ_16, ScsiOp.WRITE_16):
            if len(raw) < 16:
                raise ScsiError("short READ/WRITE(16) CDB")
            _, _, lba, blocks, _, _ = struct.unpack(">BBQIBB", raw[:16])
            if blocks == 0:
                raise ScsiError("zero-length transfer")
            return cls(ScsiOp(opcode), lba=lba, blocks=blocks)
        raise ScsiError(f"unsupported SCSI opcode {opcode:#x}")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def read(cls, offset_bytes: int, length_bytes: int) -> "CDB":
        """A READ(16) covering a byte range (must be block-aligned)."""
        return cls(ScsiOp.READ_16, *_to_blocks(offset_bytes, length_bytes))

    @classmethod
    def write(cls, offset_bytes: int, length_bytes: int) -> "CDB":
        """A WRITE(16) covering a byte range (must be block-aligned)."""
        return cls(ScsiOp.WRITE_16, *_to_blocks(offset_bytes, length_bytes))


def _to_blocks(offset_bytes: int, length_bytes: int) -> tuple[int, int]:
    if offset_bytes % BLOCK_SIZE or length_bytes % BLOCK_SIZE:
        raise ScsiError(
            f"byte range ({offset_bytes}, {length_bytes}) not {BLOCK_SIZE}-aligned"
        )
    if length_bytes <= 0:
        raise ScsiError("zero-length transfer")
    return offset_bytes // BLOCK_SIZE, length_bytes // BLOCK_SIZE
