"""The iSER initiator: sessions, login, and remote block devices.

Models open-iscsi + the iSER transport on the front-end hosts.  One
:class:`IserSession` runs per IB link (the paper load-balances six LUNs
over two links); each exported LUN appears as a
:class:`RemoteBlockDevice` that the filesystem and application layers
consume exactly like a local disk.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, merge_paths
from repro.rdma.cm import ConnectionManager
from repro.rdma.fabric import rdma_fluid_path
from repro.rdma.mr import ProtectionDomain
from repro.rdma.verbs import Opcode, QueuePair
from repro.sim.context import Context
from repro.sim.engine import Event
from repro.storage.blockdev import BlockDevice, IoRequest
from repro.storage.iscsi import LoginRequestPdu, LoginResponsePdu, BasicHeaderSegment
from repro.storage.iser import (
    IserDatamover,
    initiator_io_spec,
    io_round_trip_latency,
    target_io_spec,
)
from repro.storage.target import IserTarget, Lun

__all__ = ["IserSession", "IserInitiator", "RemoteBlockDevice", "TaskAborted"]


class TaskAborted(IOError):
    """The command was cancelled by ABORT TASK."""


class IserSession:
    """One iSCSI/iSER session over one IB link."""

    def __init__(
        self,
        ctx: Context,
        initiator_machine: Machine,
        target: IserTarget,
        initiator_nic: Nic,
        target_nic: Nic,
        name: str = "",
    ):
        self.ctx = ctx
        self.initiator_machine = initiator_machine
        self.target = target
        self.initiator_nic = initiator_nic
        self.target_nic = target_nic
        self.name = name or f"session:{initiator_nic.name}"
        self.pd = ProtectionDomain(initiator_machine, f"{self.name}/pd")
        ConnectionManager.register_pd(self.pd)
        self.qp_i: Optional[QueuePair] = None
        self.qp_t: Optional[QueuePair] = None
        self.logged_in = False
        self._login_event: Optional[Event] = None
        self._next_tag = 1
        self._outstanding: Dict[int, object] = {}

    @property
    def link(self):
        """The link this endpoint is cabled to."""
        return self.initiator_nic.link

    def login(self) -> Event:
        """Connect QPs and run the iSCSI login exchange; returns an event."""
        if self._login_event is not None:
            return self._login_event
        cm = ConnectionManager(self.ctx)
        qp_i, qp_t, handshake = cm.connect_pair(
            self.initiator_nic, self.target_nic, name=self.name
        )
        self.qp_i, self.qp_t = qp_i, qp_t
        done = self.ctx.sim.event(name=f"{self.name}/login")
        self._login_event = done

        def run():
            yield handshake
            # encode/decode the login PDUs (byte-exact framing)
            req = LoginRequestPdu(
                initiator_name=f"iqn.2013-11.repro:{self.initiator_machine.name}",
                target_name=f"iqn.2013-11.repro:{self.target.name}",
            )
            bhs_raw, text = req.encode()
            parsed = LoginRequestPdu.from_bhs(
                BasicHeaderSegment.decode(bhs_raw), text
            )
            assert parsed.target_name == req.target_name
            yield self.ctx.sim.timeout(self.link.rtt)  # login round trip
            resp = LoginResponsePdu(status_class=0)
            LoginResponsePdu.from_bhs(BasicHeaderSegment.decode(resp.encode()))
            self.logged_in = True
            done.succeed(self)

        self.ctx.sim.process(run(), name=f"{self.name}/login")
        return done

    # -- fluid streaming ---------------------------------------------------------
    def streaming_spec(
        self,
        lun: Lun,
        is_write: bool,
        thread: SimThread,
        block_size: int,
        app_fracs: Optional[Dict[int, float]] = None,
        queue_depth: int = 1,
        threads_per_lun: int = 1,
    ) -> PathSpec:
        """Full SAN path of a sequential stream against *lun*.

        Composes: initiator command work, the RDMA wire/DMA path, the
        target's copy/coherence work, and the queue-depth latency cap.
        """
        if not self.logged_in:
            raise RuntimeError(f"session {self.name!r} not logged in")
        assert self.qp_t is not None
        if app_fracs is None:
            app_fracs = place_region(
                block_size * max(1, queue_depth),
                thread.process.mem_policy,
                self.initiator_machine.n_nodes,
                touch_node=thread.home_node(),
            ).node_fractions()

        init_spec = initiator_io_spec(self.ctx, thread, block_size)

        worker = self.target.worker_for(lun)
        tgt_spec = target_io_spec(
            self.ctx,
            worker,
            lun.node_fractions,
            is_write=is_write,
            block_size=block_size,
            remote_shared_fraction=self.target.remote_shared_fraction(),
            threads_per_lun=threads_per_lun,
        )
        bounce_fracs = worker.execution_fractions()

        # data movement: write -> target RDMA READs from the app buffer;
        # read -> target RDMA WRITEs into the app buffer.  The QP we model
        # the bulk stream on is the *target* QP (it posts the data ops).
        opcode = Opcode.RDMA_READ if is_write else Opcode.RDMA_WRITE
        wire = rdma_fluid_path(self.qp_t, opcode, bounce_fracs, app_fracs)

        spec = merge_paths(init_spec, tgt_spec)
        spec.path.extend(wire)

        fixed = io_round_trip_latency(self.ctx, self.link, is_write)
        spec.with_cap(queue_depth * block_size / fixed)
        return spec

    # -- event-level I/O ----------------------------------------------------------
    def execute_io(self, lun: Lun, req: IoRequest, app_mr) -> Event:
        """Run one SCSI command through the datamover (real bytes)."""
        done, _tag = self.execute_io_tagged(lun, req, app_mr)
        return done

    def execute_io_tagged(self, lun: Lun, req: IoRequest, app_mr
                          ) -> tuple[Event, int]:
        """Like :meth:`execute_io` but also returns the initiator task tag
        (usable with :meth:`abort_task`)."""
        if not self.logged_in:
            raise RuntimeError(f"session {self.name!r} not logged in")
        dm = IserDatamover(self.ctx, self.qp_i, self.qp_t)
        done = self.ctx.sim.event(name=f"{self.name}/io")
        tag = self._next_tag
        self._next_tag += 1

        def run():
            from repro.sim.engine import Interrupt

            try:
                status = yield self.ctx.sim.process(
                    dm.execute(lun, req.is_write, req.offset, req.length,
                               app_mr),
                    name=f"{self.name}/io-body",
                )
            except Interrupt:
                done.fail(TaskAborted(f"task {tag} aborted"))
                return
            finally:
                self._outstanding.pop(tag, None)
            done.succeed(status)

        proc = self.ctx.sim.process(run(), name=f"{self.name}/io")
        self._outstanding[tag] = proc
        return done, tag

    def abort_task(self, tag: int) -> Event:
        """Issue ABORT TASK for *tag*; event yields the TM response code
        (0 = aborted, 1 = task did not exist)."""
        from repro.storage.iscsi import (
            TaskManagementRequestPdu,
            TaskManagementResponsePdu,
            TmFunction,
            decode_pdu,
        )

        done = self.ctx.sim.event(name=f"{self.name}/abort:{tag}")

        def run():
            req = TaskManagementRequestPdu(
                function=TmFunction.ABORT_TASK, task_tag=self._next_tag,
                referenced_task_tag=tag,
            )
            parsed = decode_pdu(req.encode())
            assert parsed.referenced_task_tag == tag
            yield self.ctx.sim.timeout(self.link.rtt)  # TM round trip
            proc = self._outstanding.pop(tag, None)
            response = 0 if proc is not None else 1
            if proc is not None and proc.is_alive:
                proc.interrupt("abort task")
            resp = TaskManagementResponsePdu(task_tag=req.task_tag,
                                             response=response)
            decode_pdu(resp.encode())
            done.succeed(response)

        self.ctx.sim.process(run(), name=f"{self.name}/abort")
        return done

    def ping(self) -> Event:
        """NOP-Out/NOP-In keepalive; event yields the measured RTT."""
        from repro.storage.iscsi import NopInPdu, NopOutPdu, decode_pdu

        done = self.ctx.sim.event(name=f"{self.name}/nop")

        def run():
            t0 = self.ctx.sim.now
            tag = self._next_tag
            decode_pdu(NopOutPdu(task_tag=tag).encode())
            yield self.ctx.sim.timeout(self.link.rtt
                                       + 2 * self.ctx.cal.rdma_op_latency)
            decode_pdu(NopInPdu(task_tag=tag).encode())
            done.succeed(self.ctx.sim.now - t0)

        self.ctx.sim.process(run(), name=f"{self.name}/nop")
        return done


class RemoteBlockDevice(BlockDevice):
    """A LUN surfaced on the initiator as /dev/sdX."""

    def __init__(self, session: IserSession, lun: Lun):
        super().__init__(
            session.ctx,
            f"{session.initiator_machine.name}/sd{lun.lun_id}",
            lun.capacity_bytes,
        )
        self.session = session
        self.lun = lun
        # fio-style knobs carried through bulk_path
        self.queue_depth = 1
        self.threads_per_lun = 1

    def bulk_path(self, is_write: bool, thread: SimThread, block_size: int) -> PathSpec:
        """Fluid path of streaming sequential I/O on this device."""
        return self.session.streaming_spec(
            self.lun,
            is_write,
            thread,
            block_size,
            queue_depth=self.queue_depth,
            threads_per_lun=self.threads_per_lun,
        )

    def submit(self, req: IoRequest, thread: Optional[SimThread] = None) -> Event:
        """Execute one I/O; the returned event fires at completion."""
        self._check(req)
        self._count(req)
        # register (or reuse) an MR over the request's buffer
        machine = self.session.initiator_machine
        placement = place_region(
            req.length,
            thread.process.mem_policy if thread else NumaPolicy.default(),
            machine.n_nodes,
            touch_node=thread.home_node() if thread else None,
        )
        data = req.data if req.data is not None else None
        if data is not None and data.dtype != np.uint8:
            raise ValueError("I/O payload must be uint8")
        app_mr = self.session.pd.register(placement, data=data, name=f"{self.name}/buf")
        inner = self.session.execute_io(self.lun, req, app_mr)
        done = self.ctx.sim.event(name=f"{self.name}/io")

        def run():
            status = yield inner
            app_mr.deregister()
            if status != 0:
                done.fail(OSError(f"SCSI status {status:#x} on {self.name}"))
            else:
                done.succeed(req)

        self.ctx.sim.process(run(), name=f"{self.name}/io")
        return done


class IserInitiator:
    """open-iscsi on one front-end host: sessions per link, devices per LUN."""

    def __init__(self, ctx: Context, machine: Machine, target: IserTarget,
                 name: str = ""):
        self.ctx = ctx
        self.machine = machine
        self.target = target
        self.name = name or f"{machine.name}/open-iscsi"
        i_nics = [
            s.device
            for s in machine.pcie_slots
            if s.device is not None and s.device.kind is NicKind.IB_FDR
        ]
        t_nics = [
            s.device
            for s in target.machine.pcie_slots
            if s.device is not None and s.device.kind is NicKind.IB_FDR
        ]
        if len(i_nics) < target.n_links or len(t_nics) < target.n_links:
            raise ValueError(
                f"need {target.n_links} IB NICs on both hosts "
                f"(have {len(i_nics)}/{len(t_nics)})"
            )
        self.sessions = [
            IserSession(ctx, machine, target, i_nics[i], t_nics[i],
                        name=f"{self.name}/s{i}")
            for i in range(target.n_links)
        ]
        self.devices: Dict[int, RemoteBlockDevice] = {}

    def login_all(self) -> Event:
        """Log in every session and surface the LUNs as block devices."""
        events = [s.login() for s in self.sessions]
        done = self.ctx.sim.event(name=f"{self.name}/login-all")

        def run():
            for ev in events:
                yield ev
            for lun in self.target.luns:
                session = self.sessions[lun.link_index % len(self.sessions)]
                self.devices[lun.lun_id] = RemoteBlockDevice(session, lun)
            done.succeed(self)

        self.ctx.sim.process(run(), name=f"{self.name}/login-all")
        return done

    def device(self, lun_id: int) -> RemoteBlockDevice:
        """The block device exported for a logical unit."""
        dev = self.devices.get(lun_id)
        if dev is None:
            raise KeyError(f"LUN {lun_id} not logged in on {self.name!r}")
        return dev
