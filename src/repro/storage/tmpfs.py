"""tmpfs: memory-backed file store with NUMA mount policies.

The paper builds its back-end out of tmpfs (§3.1): "By adjusting the
location of the memory file with the *mpol* and *remount* options, we pin
each file into a specified NUMA node memory."  :class:`TmpfsStore` models
one tmpfs mount; files created in it inherit the mount's ``mpol`` policy
and get a :class:`~repro.kernel.pages.RegionPlacement` accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import RegionPlacement, place_region
from repro.util.validation import check_positive

__all__ = ["TmpfsFile", "TmpfsStore"]


@dataclass
class TmpfsFile:
    """One file pinned in memory."""

    name: str
    placement: RegionPlacement

    @property
    def size_bytes(self) -> int:
        """Size in bytes."""
        return self.placement.size_bytes


class TmpfsStore:
    """A tmpfs mount on one machine.

    ``mpol`` is the mount's NUMA memory policy (``mpol=bind:0`` etc.);
    remounting with a different policy affects *new* files, as on Linux.
    """

    def __init__(
        self,
        machine: Machine,
        size_bytes: int,
        mpol: Optional[NumaPolicy] = None,
        name: str = "tmpfs",
    ):
        check_positive("size_bytes", size_bytes)
        if size_bytes > machine.total_memory_bytes:
            raise ValueError(
                f"tmpfs of {size_bytes} exceeds machine memory "
                f"{machine.total_memory_bytes}"
            )
        self.machine = machine
        self.size_bytes = size_bytes
        self.mpol = mpol or NumaPolicy.default()
        self.name = name
        self._files: Dict[str, TmpfsFile] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.size_bytes - self._used

    def remount(self, mpol: NumaPolicy) -> None:
        """Change the mount policy (affects files created afterwards)."""
        self.mpol = mpol

    def create(
        self, name: str, size_bytes: int, touch_node: Optional[int] = None
    ) -> TmpfsFile:
        """Create a file; pages are placed per the mount policy.

        ``touch_node`` models which node's thread faults the pages in
        (first-touch under the default policy).
        """
        check_positive("size_bytes", size_bytes)
        if name in self._files:
            raise FileExistsError(f"tmpfs file {name!r} exists")
        if size_bytes > self.free_bytes:
            raise OSError(f"tmpfs {self.name!r} full: need {size_bytes}, "
                          f"free {self.free_bytes}")
        placement = place_region(
            size_bytes, self.mpol, self.machine.n_nodes, touch_node=touch_node
        )
        f = TmpfsFile(name=name, placement=placement)
        self._files[name] = f
        self._used += size_bytes
        return f

    def open(self, name: str) -> TmpfsFile:
        """Open an existing entry."""
        f = self._files.get(name)
        if f is None:
            raise FileNotFoundError(f"tmpfs file {name!r} not found")
        return f

    def unlink(self, name: str) -> None:
        """Remove a file."""
        f = self._files.pop(name, None)
        if f is None:
            raise FileNotFoundError(f"tmpfs file {name!r} not found")
        self._used -= f.size_bytes

    def files(self) -> list[TmpfsFile]:
        """All files in the mount."""
        return list(self._files.values())
