"""Block-device abstraction and a local RAM disk.

A :class:`BlockDevice` exposes two granularities, mirroring the rest of
the library:

* :meth:`BlockDevice.submit` — event-level I/O for protocol tests and the
  real-byte datapath;
* :meth:`BlockDevice.bulk_path` — a fluid :class:`~repro.kernel.work.PathSpec`
  describing the per-byte cost of streaming sequential I/O, which the
  filesystem and application layers compose into end-to-end flows.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernel.pages import RegionPlacement
from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path
from repro.sim.context import Context
from repro.sim.engine import Event
from repro.util.validation import check_non_negative, check_positive

__all__ = ["IoRequest", "BlockDevice", "RamDisk"]


@dataclass
class IoRequest:
    """One block-level I/O."""

    is_write: bool
    offset: int
    length: int
    data: Optional[np.ndarray] = None  # payload for writes / filled on reads

    def __post_init__(self):
        check_non_negative("offset", self.offset)
        check_positive("length", self.length)
        if self.data is not None and len(self.data) != self.length:
            raise ValueError(
                f"data length {len(self.data)} != request length {self.length}"
            )


class BlockDevice(abc.ABC):
    """Abstract block device."""

    def __init__(self, ctx: Context, name: str, capacity_bytes: int):
        check_positive("capacity_bytes", capacity_bytes)
        self.ctx = ctx
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.stats = {"read_bytes": 0, "write_bytes": 0, "read_ops": 0, "write_ops": 0}

    def _check(self, req: IoRequest) -> None:
        if req.offset + req.length > self.capacity_bytes:
            raise ValueError(
                f"I/O [{req.offset}, {req.offset + req.length}) beyond device "
                f"capacity {self.capacity_bytes}"
            )

    def _count(self, req: IoRequest) -> None:
        if req.is_write:
            self.stats["write_bytes"] += req.length
            self.stats["write_ops"] += 1
        else:
            self.stats["read_bytes"] += req.length
            self.stats["read_ops"] += 1

    @abc.abstractmethod
    def submit(self, req: IoRequest, thread: Optional[SimThread] = None) -> Event:
        """Execute one I/O; the returned event fires at completion."""

    @abc.abstractmethod
    def bulk_path(
        self, is_write: bool, thread: SimThread, block_size: int
    ) -> PathSpec:
        """Fluid path of a sequential streaming workload on this device."""


class RamDisk(BlockDevice):
    """A memory-backed block device on one host.

    ``placement`` is the NUMA placement of the backing pages; I/O cost is
    a CPU copy between the caller's buffer and the backing store (this is
    what a tmpfs-file-backed loop device costs).
    """

    def __init__(
        self,
        ctx: Context,
        name: str,
        placement: RegionPlacement,
        *,
        store_data: bool = False,
    ):
        super().__init__(ctx, name, placement.size_bytes)
        self.placement = placement
        self.data: Optional[np.ndarray] = (
            np.zeros(placement.size_bytes, dtype=np.uint8) if store_data else None
        )

    # -- cost model -----------------------------------------------------------------
    def _items(self, is_write: bool, thread: SimThread) -> list[WorkItem]:
        cal = self.ctx.cal
        exec_fracs = thread.execution_fractions()
        store_fracs = self.placement.node_fractions()
        remote = sum(
            ef * sf
            for en, ef in exec_fracs.items()
            for sn, sf in store_fracs.items()
            if en != sn
        )
        cpu = (
            remote / cal.memcpy_rate_remote + (1 - remote) / cal.memcpy_rate_local
        )
        if is_write:
            traffic = (
                WorkItem.mem(exec_fracs, 1.0),  # read source buffer
                WorkItem.mem(store_fracs, 2.0),  # write-allocate the store
            )
            cat = "offload"
        else:
            traffic = (
                WorkItem.mem(store_fracs, 1.0),  # read the store
                WorkItem.mem(exec_fracs, 2.0),  # write-allocate dest buffer
            )
            cat = "load"
        return [WorkItem("ramdisk copy", cpu_per_byte=cpu, category=cat,
                         mem_traffic=traffic)]

    def bulk_path(self, is_write: bool, thread: SimThread, block_size: int) -> PathSpec:
        """Fluid path of streaming sequential I/O on this device."""
        return build_thread_path(
            thread, self._items(is_write, thread), op_size=block_size
        )

    def submit(self, req: IoRequest, thread: Optional[SimThread] = None) -> Event:
        """Execute one I/O; the returned event fires at completion."""
        self._check(req)
        self._count(req)
        done = self.ctx.sim.event(name=f"{self.name}/io")

        def run():
            if thread is not None:
                spec = self.bulk_path(req.is_write, thread, req.length)
                from repro.sim.fluid import FluidFlow

                flow = FluidFlow(
                    spec.path,
                    size=float(req.length),
                    cap=spec.cap,
                    charges=spec.charges,
                    name=f"{self.name}/io",
                )
                yield self.ctx.fluid.start(flow)
            else:
                # uninstrumented fast path: memory-speed copy
                yield self.ctx.sim.timeout(
                    req.length / self.ctx.cal.memcpy_rate_local
                )
            if self.data is not None:
                if req.is_write and req.data is not None:
                    self.data[req.offset : req.offset + req.length] = req.data
                elif not req.is_write and req.data is not None:
                    req.data[:] = self.data[req.offset : req.offset + req.length]
            done.succeed(req)

        self.ctx.sim.process(run(), name=f"{self.name}/io")
        return done
