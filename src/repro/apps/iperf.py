"""iperf: the TCP load generator of the §2.3 motivating experiment.

The experiment: two hosts, three 40 Gbps RoCE links, bi-directional
parallel TCP streams for ten minutes.

* With the **default** Linux scheduler: 83.5 Gbps aggregate, with
  ``copy_user_generic_string`` eating ~35% of all CPU cycles.
* With **NUMA tuning** (processes bound so each link's streams run on
  the NIC-local node with local buffers): 91.8 Gbps (+10%).

``cached_buffer=True`` reproduces iperf's *default* small-buffer mode,
where the send buffer stays resident in LLC and the memory read of the
user buffer disappears — the cache effect the authors purposely defeat
by enlarging the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.kernel.process import SimProcess
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.util.units import to_gbps
from repro.util.validation import check_positive

__all__ = ["IperfResult", "run_iperf"]


@dataclass
class IperfResult:
    """Aggregate outcome of one iperf run."""

    total_bytes: float
    duration: float
    n_streams: int
    accounting: CpuAccounting
    per_direction_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def aggregate_rate(self) -> float:
        """Sum of all streams' payload rates (bytes/s)."""
        return self.total_bytes / self.duration

    @property
    def aggregate_gbps(self) -> float:
        """Aggregate rate in gigabits/second."""
        return to_gbps(self.aggregate_rate)

    def cpu_percent(self) -> Dict[str, float]:
        """Percent-of-one-core per category over the run."""
        return {
            k: 100.0 * v / self.duration
            for k, v in self.accounting.seconds_by_category().items()
        }

    def copy_share(self) -> float:
        """Fraction of all CPU cycles spent in data copies (perf's view)."""
        by_cat = self.accounting.seconds_by_category()
        total = sum(by_cat.values())
        return by_cat.get("copy", 0.0) / total if total else 0.0


def _roce_nics(machine: Machine) -> List[Nic]:
    return [
        s.device
        for s in machine.pcie_slots
        if s.device is not None and s.device.kind is NicKind.ROCE_QDR
    ]


def run_iperf(
    ctx: Context,
    a: Machine,
    b: Machine,
    *,
    duration: float = 60.0,
    streams_per_link: int = 4,
    bidirectional: bool = True,
    numa_tuned: bool = False,
    cached_buffer: bool = False,
    buffer_bytes: int = 1 << 30,
) -> IperfResult:
    """Run iperf between two cabled hosts and return aggregate results.

    ``numa_tuned`` binds each link's sender/receiver processes (and their
    buffers, via first-touch) to the NIC-local NUMA node and steers IRQs
    there; the default leaves everything to the stock scheduler.
    """
    check_positive("duration", duration)
    check_positive("streams_per_link", streams_per_link)
    a_nics, b_nics = _roce_nics(a), _roce_nics(b)
    if len(a_nics) != len(b_nics) or not a_nics:
        raise ValueError("hosts must have matching cabled RoCE NICs")

    connections: List[TcpConnection] = []
    flows: List[FluidFlow] = []
    directions = [("a->b", a, b, a_nics, b_nics)]
    if bidirectional:
        directions.append(("b->a", b, a, b_nics, a_nics))

    home_rr: Dict[int, int] = {}  # per-host round-robin of home nodes

    def _next_home(machine: Machine) -> int:
        idx = home_rr.get(id(machine), 0)
        home_rr[id(machine)] = idx + 1
        return idx % machine.n_nodes

    for dir_name, src, dst, src_nics, dst_nics in directions:
        for li, (sn, dn) in enumerate(zip(src_nics, dst_nics)):
            if numa_tuned:
                s_policy = NumaPolicy.bind(sn.node)
                d_policy = NumaPolicy.bind(dn.node)
            else:
                # long-running untuned processes settle on arbitrary home
                # nodes (NUMA balancing), uncorrelated with NIC locality;
                # the load balancer spreads homes evenly per host
                bias = ctx.cal.numa_balancing_home_fraction
                s_policy = NumaPolicy.biased(_next_home(src), bias)
                d_policy = NumaPolicy.biased(_next_home(dst), bias)
            sproc = SimProcess(src, f"iperf-c-{dir_name}-{li}",
                               cpu_policy=s_policy, mem_policy=s_policy)
            dproc = SimProcess(dst, f"iperf-s-{dir_name}-{li}",
                               cpu_policy=d_policy, mem_policy=d_policy)
            for k in range(streams_per_link):
                st = sproc.spawn_thread()
                dt = dproc.spawn_thread()
                sbuf = place_region(
                    buffer_bytes, sproc.mem_policy, src.n_nodes,
                    touch_node=st.home_node(),
                )
                dbuf = place_region(
                    buffer_bytes, dproc.mem_policy, dst.n_nodes,
                    touch_node=dt.home_node(),
                )
                conn = TcpConnection(
                    ctx,
                    f"iperf-{dir_name}-l{li}s{k}",
                    TcpEndpoint(st, sn, sbuf),
                    TcpEndpoint(dt, dn, dbuf),
                    tuned_irq=numa_tuned,
                    sender_buffer_cached=cached_buffer,
                )
                flows.append(conn.open())
                connections.append(conn)

    t0 = ctx.sim.now
    ctx.sim.run(until=t0 + duration)
    ctx.fluid.settle()

    per_direction: Dict[str, float] = {}
    total = 0.0
    for conn, flow in zip(connections, flows):
        moved = flow.transferred
        total += moved
        key = conn.name.split("-l")[0].replace("iperf-", "")
        per_direction[key] = per_direction.get(key, 0.0) + moved
        conn.close()

    ledger = CpuAccounting("iperf")
    for conn in connections:
        for acc in (conn.sender.thread.accounting, conn.receiver.thread.accounting):
            ledger.add_many(acc.seconds_by_category())

    return IperfResult(
        total_bytes=total,
        duration=duration,
        n_streams=len(connections),
        accounting=ledger,
        per_direction_bytes=per_direction,
    )
