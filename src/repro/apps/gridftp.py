"""GridFTP-style baseline: TCP data movers with blocking buffered I/O.

The paper attributes GridFTP's 29 Gbps (vs RFTP's 91) to three causes
(§4.3), each modelled explicitly:

1. **TCP stack overhead** — kernel processing + two copies per end
   (the same Fig. 4-calibrated costs as iperf);
2. **single-threaded data movers** — each process alternates between
   blocking file I/O and network sends, so the per-process rate is the
   *harmonic* composition of I/O and network stage rates ("the network
   [is] in an idle state when this thread performs I/O"); running
   multiple processes recovers parallelism at higher CPU cost;
3. **no direct I/O** — file access goes through the page cache, adding
   a copy per byte on each host.

Under fault injection (:mod:`repro.faults`) GridFTP keeps its naive
stall-until-restore behaviour deliberately: a mover whose link dies
blocks in the kernel until the route returns, and nothing reclaims its
share — the baseline contrast for RFTP's multi-rail failover in the
``ext_recovery`` experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fs.vfs import FileSystem
from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.kernel.process import SimProcess, SimThread
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.sim.trace import ThroughputProbe, TimeSeries
from repro.util.units import to_gbps
from repro.util.validation import check_positive

__all__ = ["GridFtp", "GridFtpResult"]


def _harmonic(*rates: Optional[float]) -> float:
    inv = 0.0
    for r in rates:
        if r is None or math.isinf(r):
            continue
        if r <= 0:
            return 0.0
        inv += 1.0 / r
    return 1.0 / inv if inv > 0 else math.inf


@dataclass
class GridFtpResult:
    """Aggregate outcome of one GridFTP run."""
    total_bytes: float
    duration: float
    n_processes: int
    sender_accounting: CpuAccounting
    receiver_accounting: CpuAccounting
    series: Optional[TimeSeries] = None

    @property
    def goodput(self) -> float:
        """Mean payload rate over the run (bytes/s)."""
        return self.total_bytes / self.duration

    @property
    def goodput_gbps(self) -> float:
        """Mean payload rate in gigabits/second."""
        return to_gbps(self.goodput)

    def cpu_percent(self, side: str = "sender") -> Dict[str, float]:
        """CPU utilization in percent-of-one-core, by category."""
        acc = self.sender_accounting if side == "sender" else self.receiver_accounting
        return {
            k: 100.0 * v / self.duration
            for k, v in acc.seconds_by_category().items()
        }


class GridFtp:
    """A globus-url-copy-style transfer between two cabled hosts."""

    def __init__(
        self,
        ctx: Context,
        sender: Machine,
        receiver: Machine,
        *,
        source_fs,
        sink_fs,
        processes: Optional[int] = None,
        block_size: Optional[int] = None,
        numa_tuned: bool = True,
        name: str = "gridftp",
    ):
        self.ctx = ctx
        self.sender = sender
        self.receiver = receiver
        self.source_fs = source_fs
        self.sink_fs = sink_fs
        self.processes = (
            processes if processes is not None else ctx.cal.gridftp_processes
        )
        check_positive("processes", self.processes)
        self.block_size = (
            block_size if block_size is not None else int(ctx.cal.gridftp_io_block_bytes)
        )
        self.numa_tuned = numa_tuned
        self.name = name
        self.flows: List[FluidFlow] = []
        self.connections: List[TcpConnection] = []
        self._send_threads: List[SimThread] = []
        self._recv_threads: List[SimThread] = []

    def _nics(self, machine: Machine) -> List[Nic]:
        return [
            s.device
            for s in machine.pcie_slots
            if s.device is not None and s.device.kind.is_roce
            and s.device.link is not None
        ]

    @staticmethod
    def _fs_for(spec, index: int) -> FileSystem:
        if isinstance(spec, list):
            if not spec:
                raise ValueError("empty filesystem list")
            return spec[index % len(spec)]
        return spec

    def start(self) -> List[FluidFlow]:
        """Start the activity."""
        s_nics = self._nics(self.sender)
        if not s_nics:
            raise ValueError(f"{self.sender.name!r} has no cabled RoCE NICs")
        for pi in range(self.processes):
            sn = s_nics[pi % len(s_nics)]
            rn = sn.link.peer(sn)
            policy_s = NumaPolicy.bind(sn.node) if self.numa_tuned else NumaPolicy.default()
            policy_r = NumaPolicy.bind(rn.node) if self.numa_tuned else NumaPolicy.default()
            sproc = SimProcess(self.sender, f"{self.name}-s{pi}",
                               cpu_policy=policy_s, mem_policy=policy_s)
            rproc = SimProcess(self.receiver, f"{self.name}-r{pi}",
                               cpu_policy=policy_r, mem_policy=policy_r)
            st = sproc.spawn_thread()
            rt = rproc.spawn_thread()
            self._send_threads.append(st)
            self._recv_threads.append(rt)

            sbuf = place_region(self.block_size, sproc.mem_policy,
                                self.sender.n_nodes, touch_node=st.home_node())
            rbuf = place_region(self.block_size, rproc.mem_policy,
                                self.receiver.n_nodes, touch_node=rt.home_node())
            conn = TcpConnection(
                self.ctx,
                f"{self.name}-p{pi}",
                TcpEndpoint(st, sn, sbuf),
                TcpEndpoint(rt, rn, rbuf),
                tuned_irq=self.numa_tuned,
            )
            self.connections.append(conn)
            tcp_spec = conn.build_path()

            # buffered (page-cache) file I/O, accounted serially with TCP
            # on the same single thread -- no pipelining.
            src_fs = self._fs_for(self.source_fs, pi)
            dst_fs = self._fs_for(self.sink_fs, pi)
            fs_read = src_fs.streaming_spec(
                False, st, self.block_size, direct=False,
                n_streams=self.processes, include_device=False,
            )
            fs_write = dst_fs.streaming_spec(
                True, rt, self.block_size, direct=False,
                n_streams=self.processes, include_device=False,
            )
            dev_read = src_fs.device.bulk_path(False, st, self.block_size)
            dev_write = dst_fs.device.bulk_path(True, rt, self.block_size)

            # single-threaded duty cycle: network idles during file I/O
            serial_cap = _harmonic(
                tcp_spec.cap, fs_read.cap, fs_write.cap, dev_read.cap, dev_write.cap
            )
            path = (
                tcp_spec.path + fs_read.path + fs_write.path
                + dev_read.path + dev_write.path
            )
            charges = (
                tcp_spec.charges + fs_read.charges + fs_write.charges
                + dev_read.charges + dev_write.charges
            )
            flow = FluidFlow(path, size=None, cap=serial_cap, charges=charges,
                             name=conn.name)
            self.ctx.fluid.start(flow)
            self.flows.append(flow)
        return self.flows

    def transferred(self) -> float:
        """Total bytes moved so far across all streams.

        Kept allocation-free (plain loop, no ``sum()`` generator): this
        bound method is the sampler counter for the throughput probe.
        """
        total = 0.0
        for f in self.flows:
            total += f.transferred
        return total

    def run(self, duration: float, sample_interval: float = 1.0) -> GridFtpResult:
        """Run the experiment; returns the paper-vs-measured report."""
        if not self.flows:
            self.start()
        probe = ThroughputProbe(
            self.ctx.sim,
            counter=self.transferred,
            interval=sample_interval,
            name=f"{self.name}/throughput",
            pre_sample=self.ctx.fluid.settle,
        )
        t0 = self.ctx.sim.now
        self.ctx.sim.run(until=t0 + duration)
        self.ctx.fluid.settle()
        series = probe.stop()
        total = self.transferred()
        for f in self.flows:
            if f._active:
                self.ctx.fluid.stop(f)

        def ledger(threads, name):
            acc = CpuAccounting(name)
            for t in threads:
                acc.add_many(t.accounting.seconds_by_category())
            return acc

        return GridFtpResult(
            total_bytes=total,
            duration=duration,
            n_processes=self.processes,
            sender_accounting=ledger(self._send_threads, "gridftp-snd"),
            receiver_accounting=ledger(self._recv_threads, "gridftp-rcv"),
            series=series,
        )
