"""STREAM Triad: the memory-bandwidth benchmark (McCalpin).

Triad computes ``a[i] = b[i] + q * c[i]`` and reports bandwidth counting
3 x 8 bytes per iteration.  With write-allocate the hardware moves four
cache-line streams, which is how the model's *raw* per-node capacity
relates to the STREAM-reported figure (see the calibration notes).

Two entry points:

* :func:`run_stream_model` — the simulated benchmark on a
  :class:`~repro.hw.topology.Machine`; reproduces the paper's "peak
  memory bandwidth for two NUMA nodes is 50 GB/s".
* :func:`run_stream_real` — actually runs a NumPy triad on the host
  (used by an example as a sanity check of the harness, not of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.process import SimProcess
from repro.sim.fluid import FluidFlow

__all__ = ["StreamResult", "run_stream_model", "run_stream_real"]


@dataclass(frozen=True)
class StreamResult:
    """Triad outcome in STREAM's own accounting."""

    triad_bytes_per_s: float  # 3 counted bytes per iteration-byte
    threads: int
    duration: float

    @property
    def triad_gb_per_s(self) -> float:
        """Triad bandwidth in STREAM's GB/s convention."""
        return self.triad_bytes_per_s / 1e9


def run_stream_model(
    machine: Machine,
    threads_per_node: int = 8,
    duration: float = 5.0,
    numa_aware: bool = True,
) -> StreamResult:
    """Run the simulated Triad with OpenMP-style threads.

    ``numa_aware=True`` is STREAM compiled with OpenMP + first-touch
    initialization (each thread's arrays local) — the configuration the
    paper measured at 50 GB/s.
    """
    ctx = machine.ctx
    flows = []
    for node in range(machine.n_nodes):
        policy = NumaPolicy.bind(node) if numa_aware else NumaPolicy.default()
        proc = SimProcess(machine, f"stream{node}", cpu_policy=policy,
                          mem_policy=policy)
        for k in range(threads_per_node):
            thread = proc.spawn_thread()
            exec_fracs = thread.execution_fractions()
            # triad moves 4 hardware streams per iteration (2 loads +
            # write-allocate + store); per counted byte that is 4/3.
            path = []
            for en, ef in exec_fracs.items():
                mem_fracs = (
                    {en: 1.0} if numa_aware
                    else {n: 1.0 / machine.n_nodes for n in range(machine.n_nodes)}
                )
                for mn, mf in mem_fracs.items():
                    for res, w in machine.mem_path(en, mn, 4.0 / 3.0):
                        path.append((res, w * ef * mf))
            # one core sustains ~12 GB/s of triad (AVX FMA-bound ceiling)
            flow = FluidFlow(path, size=None, cap=12e9,
                             name=f"triad-{node}.{k}")
            ctx.fluid.start(flow)
            flows.append(flow)
    t0 = ctx.sim.now
    ctx.sim.run(until=t0 + duration)
    ctx.fluid.settle()
    total = sum(f.transferred for f in flows)
    for f in flows:
        ctx.fluid.stop(f)
    return StreamResult(
        triad_bytes_per_s=total / duration,
        threads=threads_per_node * machine.n_nodes,
        duration=duration,
    )


def run_stream_real(n: int = 10_000_000, repeats: int = 5) -> StreamResult:
    """A real NumPy triad on the host running this library."""
    rng = np.random.default_rng(0)
    b = rng.random(n)
    c = rng.random(n)
    q = 3.0
    a = np.empty_like(b)
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(c, q, out=a)
        a += b
        dt = time.perf_counter() - t0
        rate = 3 * 8 * n / dt
        best = max(best, rate)
    return StreamResult(triad_bytes_per_s=best, threads=1, duration=dt)
