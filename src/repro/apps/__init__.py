"""Applications: the measured programs of the paper's evaluation.

* :mod:`repro.apps.streambench` — STREAM Triad (memory-bandwidth anchor),
* :mod:`repro.apps.iperf` — TCP load generator (§2.3 motivating experiment),
* :mod:`repro.apps.fio` — flexible I/O tester (Figs. 7/8),
* :mod:`repro.apps.rftp` — the paper's RDMA file transfer protocol,
* :mod:`repro.apps.gridftp` — the GridFTP-style TCP baseline (Figs. 9-12).
"""

from repro.apps.fio import FioJob, FioResult, run_fio
from repro.apps.gridftp import GridFtp, GridFtpResult
from repro.apps.iperf import IperfResult, run_iperf
from repro.apps.streambench import StreamResult, run_stream_model, run_stream_real

__all__ = [
    "run_stream_model",
    "run_stream_real",
    "StreamResult",
    "run_iperf",
    "IperfResult",
    "FioJob",
    "FioResult",
    "run_fio",
    "GridFtp",
    "GridFtpResult",
]
