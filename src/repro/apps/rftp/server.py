"""RFTP server: a listener accepting transfer sessions.

The event-level session layer above :mod:`repro.apps.rftp.filetransfer`:
an :class:`RftpServer` listens on a host, accepts connections, exposes a
sink filesystem, and records every completed transfer (path, bytes,
digest) in a manifest — which is what allows clients to *resume*
interrupted directory pushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fs.vfs import FileSystem
from repro.hw.nic import Nic
from repro.sim.context import Context

__all__ = ["RftpServer", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed (verified) transfer."""

    path: str
    size: int
    digest_hex: str
    completed_at: float


@dataclass
class RftpServer:
    """A running RFTP daemon on one host."""

    ctx: Context
    nic: Nic
    sink_fs: FileSystem
    name: str = "rftpd"
    manifest: Dict[str, TransferRecord] = field(default_factory=dict)
    accepting: bool = True

    def record(self, path: str, size: int, digest_hex: str) -> TransferRecord:
        """Append one entry."""
        rec = TransferRecord(path=path, size=size, digest_hex=digest_hex,
                             completed_at=self.ctx.sim.now)
        self.manifest[path] = rec
        return rec

    def has_complete(self, path: str, size: int) -> bool:
        """True if *path* was already fully received (resume support)."""
        rec = self.manifest.get(path)
        return rec is not None and rec.size == size

    def completed(self) -> List[TransferRecord]:
        """Completed entries in completion order."""
        return sorted(self.manifest.values(), key=lambda r: r.completed_at)

    def stop(self) -> None:
        """Refuse new sessions (in-flight transfers finish)."""
        self.accepting = False
