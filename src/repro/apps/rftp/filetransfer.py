"""Event-level RFTP file transfer: real bytes, real framing, verified.

This is the correctness path: a file is read from the source filesystem
block by block, each block advertised with a :class:`BlockDescriptor`
(crc32 included), moved by RDMA WRITE into the receiver's registered
buffer under credit-based flow control, and written to the sink
filesystem.  The sink verifies every block's checksum and the whole-file
digest from :class:`TransferComplete`.

Use for correctness-scale payloads (MBs); the fluid engine
(:mod:`repro.apps.rftp.transfer`) covers sustained-throughput scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.rftp.protocol import (
    BlockDescriptor,
    CreditGrant,
    FileRequest,
    TransferComplete,
    decode_message,
)
from repro.datapath.integrity import StreamingDigest, checksum
from repro.fs.vfs import FileSystem, O_DIRECT, O_RDWR
from repro.kernel.pages import place_region
from repro.kernel.numa import NumaPolicy
from repro.kernel.process import SimThread
from repro.rdma.cm import ConnectionManager
from repro.rdma.mr import ProtectionDomain
from repro.rdma.verbs import Opcode, WorkRequest, WrStatus
from repro.sim.context import Context
from repro.sim.engine import Event

__all__ = ["rftp_send_file"]


def rftp_send_file(
    ctx: Context,
    *,
    source_fs: FileSystem,
    sink_fs: FileSystem,
    src_path: str,
    dst_path: str,
    client_nic,
    server_nic,
    block_size: int = 1 << 20,
    credits: int = 4,
    src_thread: Optional[SimThread] = None,
    dst_thread: Optional[SimThread] = None,
) -> Event:
    """Transfer one file; the event fires with the verified sink digest.

    Raises (fails the event) on checksum mismatch, truncated transfer or
    RDMA errors — the failure modes a transfer tool must detect.
    """
    size = source_fs.stat_size(src_path)
    if not sink_fs.exists(dst_path):
        sink_fs.create(dst_path, size)

    cm = ConnectionManager(ctx)
    qp_c, qp_s, handshake = cm.connect_pair(client_nic, server_nic,
                                            name=f"rftp:{src_path}")
    client_machine = client_nic.machine
    server_machine = server_nic.machine
    pd_c = ProtectionDomain(client_machine, "rftp-c/pd")
    pd_s = ProtectionDomain(server_machine, "rftp-s/pd")
    ConnectionManager.register_pd(pd_c)
    ConnectionManager.register_pd(pd_s)

    done = ctx.sim.event(name=f"rftp:{src_path}")

    def run():
        yield handshake

        # --- control-plane: file request (framed + decoded for real) ----
        req = FileRequest(path=dst_path, size=size, block_size=block_size)
        parsed = decode_message(req.encode())
        assert parsed == req
        yield ctx.sim.timeout(client_nic.link.rtt)

        n_blocks = (size + block_size - 1) // block_size

        # receiver-side ring of registered landing buffers
        ring_placement = place_region(
            block_size, NumaPolicy.bind(server_nic.node), server_machine.n_nodes
        )
        landing = pd_s.register(
            ring_placement,
            data=np.zeros(block_size, dtype=np.uint8),
            name="rftp-landing",
        )
        src_placement = place_region(
            block_size, NumaPolicy.bind(client_nic.node), client_machine.n_nodes
        )
        stage = pd_c.register(
            src_placement,
            data=np.zeros(block_size, dtype=np.uint8),
            name="rftp-stage",
        )

        src = source_fs.open(src_path)
        dst = sink_fs.open(dst_path, O_RDWR | O_DIRECT)
        send_digest = StreamingDigest()
        recv_digest = StreamingDigest()

        available_credits = credits
        seq = 0
        offset = 0
        while offset < size:
            length = min(block_size, size - offset)
            if available_credits == 0:
                # credit grant round trip (decoded for real)
                grant = decode_message(CreditGrant(credits).encode())
                yield ctx.sim.timeout(client_nic.link.rtt)
                available_credits = grant.credits
            available_credits -= 1

            # load: file -> staging buffer
            view = stage.data[:length]
            yield src.read(length, data=view, thread=src_thread)
            send_digest.update(view)
            desc = BlockDescriptor(
                sequence=seq,
                offset=offset,
                length=length,
                rkey=landing.rkey,
                crc32=checksum(view),
            )
            desc = decode_message(desc.encode())

            # transmit: one-sided RDMA WRITE into the landing buffer
            wr = WorkRequest(
                Opcode.RDMA_WRITE,
                stage,
                local_offset=0,
                length=length,
                remote_rkey=desc.rkey,
                remote_offset=0,
            )
            completion = yield qp_c.post_send(wr)
            if completion.status is not WrStatus.SUCCESS:
                raise IOError(f"RDMA WRITE failed: {completion.status}")

            # offload: verify + landing buffer -> sink file
            arrived = landing.data[:length]
            if checksum(arrived) != desc.crc32:
                raise IOError(f"block {seq} checksum mismatch")
            recv_digest.update(arrived)
            dst.seek(desc.offset)
            yield dst.write(arrived, thread=dst_thread)

            offset += length
            seq += 1

        complete = decode_message(
            TransferComplete(n_blocks=seq, digest_hex=send_digest.hexdigest()).encode()
        )
        yield ctx.sim.timeout(client_nic.link.rtt / 2)
        if complete.n_blocks != n_blocks:
            raise IOError("block count mismatch at EOF")
        if recv_digest.hexdigest() != complete.digest_hex:
            raise IOError("whole-file digest mismatch")
        return recv_digest.hexdigest()

    def wrapper():
        try:
            digest = yield ctx.sim.process(run(), name=f"rftp:{src_path}/body")
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            done.fail(exc)
            return
        done.succeed(digest)

    ctx.sim.process(wrapper(), name=f"rftp:{src_path}/wrap")
    return done
