"""Dataset synthesis and transfer-time estimation for file-size mixes.

The paper's corpus is six 50 GB files — the friendliest possible shape
for a bulk mover.  Real science datasets are messier: climate output
mixes multi-GB history files with thousands of small diagnostics.  This
module generates such mixes and predicts RFTP's completion time over
them, exposing the classic *lots-of-small-files* penalty: every file
pays a fixed control cost (open/request round trips, digest finalize)
that large files amortize and small files do not.

Used by the E3 extension experiment and validated there against the
event-level transfer engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import check_positive

__all__ = ["Dataset", "synth_dataset", "transfer_time_estimate",
           "effective_bandwidth"]


@dataclass(frozen=True)
class Dataset:
    """A synthetic corpus: file sizes in bytes."""

    sizes: tuple[int, ...]
    kind: str

    @property
    def total_bytes(self) -> int:
        """Total payload bytes."""
        return sum(self.sizes)

    @property
    def n_files(self) -> int:
        """Number of files in the corpus."""
        return len(self.sizes)

    @property
    def mean_size(self) -> float:
        """Mean file size in bytes."""
        return self.total_bytes / max(1, self.n_files)


def synth_dataset(
    rng: np.random.Generator,
    total_bytes: int,
    kind: str = "bulk",
    *,
    bulk_file_size: int = 256 << 20,
    small_file_size: int = 256 << 10,
    lognormal_median: int = 4 << 20,
    lognormal_sigma: float = 2.0,
) -> Dataset:
    """Generate a corpus of roughly *total_bytes* with the given shape.

    * ``bulk`` — the paper's regime: equal large files;
    * ``small`` — the pathological regime: equal small files;
    * ``lognormal`` — a realistic mix (file sizes are famously
      lognormal); heavy tail carries most bytes, most *files* are small.
    """
    check_positive("total_bytes", total_bytes)
    if kind == "bulk":
        n = max(1, round(total_bytes / bulk_file_size))
        sizes = [total_bytes // n] * n
    elif kind == "small":
        n = max(1, round(total_bytes / small_file_size))
        sizes = [total_bytes // n] * n
    elif kind == "lognormal":
        sizes = []
        acc = 0
        mu = np.log(lognormal_median)
        while acc < total_bytes:
            s = int(rng.lognormal(mean=mu, sigma=lognormal_sigma))
            s = max(4096, min(s, total_bytes))
            sizes.append(s)
            acc += s
        overshoot = acc - total_bytes
        sizes[-1] = max(4096, sizes[-1] - overshoot)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    return Dataset(sizes=tuple(int(s) for s in sizes), kind=kind)


def transfer_time_estimate(
    sizes: Sequence[int],
    bandwidth: float,
    per_file_overhead: float,
    pipeline_depth: int = 1,
) -> float:
    """Completion time of transferring *sizes* sequentially over one
    session.

    Each file costs ``size / bandwidth`` of data time plus a fixed
    ``per_file_overhead`` (request/complete round trips).  With
    ``pipeline_depth > 1`` (a client overlapping the control phase of
    the next file with the data phase of the current), the per-file
    overhead is amortized by that factor — RFTP's answer to small
    files, as in GridFTP's pipelining extension.
    """
    check_positive("bandwidth", bandwidth)
    if per_file_overhead < 0:
        raise ValueError("per_file_overhead must be >= 0")
    check_positive("pipeline_depth", pipeline_depth)
    data_time = sum(sizes) / bandwidth
    control_time = len(sizes) * per_file_overhead / pipeline_depth
    return data_time + control_time


def effective_bandwidth(
    sizes: Sequence[int],
    bandwidth: float,
    per_file_overhead: float,
    pipeline_depth: int = 1,
) -> float:
    """Goodput over the whole corpus (bytes/s)."""
    t = transfer_time_estimate(sizes, bandwidth, per_file_overhead,
                               pipeline_depth)
    return sum(sizes) / t if t > 0 else 0.0
