"""RFTP client: put/get of files and directories against a server.

Wraps the event-level verified transfer in a session API:

* :meth:`RftpClient.put` — push one file (skips files the server's
  manifest already records: resume semantics);
* :meth:`RftpClient.put_tree` — push every file of the source
  filesystem, resuming across interruptions;
* :meth:`RftpClient.get` — pull a file the server holds.

All methods return events; run the simulator until them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.rftp.filetransfer import rftp_send_file
from repro.apps.rftp.server import RftpServer, TransferRecord
from repro.fs.vfs import FileSystem
from repro.hw.nic import Nic
from repro.sim.context import Context
from repro.sim.engine import Event

__all__ = ["RftpClient"]


class RftpClient:
    """One client host's RFTP session toward a server."""

    def __init__(self, ctx: Context, nic: Nic, source_fs: FileSystem,
                 server: RftpServer, block_size: int = 1 << 20,
                 credits: int = 8, name: str = "rftp-client"):
        if nic.link is None or nic.link.peer(nic) is not server.nic:
            raise ValueError(
                f"client NIC {nic.name!r} is not cabled to the server's "
                f"{server.nic.name!r}"
            )
        self.ctx = ctx
        self.nic = nic
        self.source_fs = source_fs
        self.server = server
        self.block_size = block_size
        self.credits = credits
        self.name = name

    # -- single file -------------------------------------------------------------
    def put(self, path: str, dst_path: Optional[str] = None) -> Event:
        """Push one file; the event yields the server's TransferRecord.

        If the server's manifest already holds a complete copy, the
        transfer is skipped (the event fires with the existing record).
        """
        if not self.server.accepting:
            raise ConnectionRefusedError(
                f"server {self.server.name!r} is not accepting sessions"
            )
        dst = dst_path or path
        size = self.source_fs.stat_size(path)
        done = self.ctx.sim.event(name=f"{self.name}/put:{path}")

        if self.server.has_complete(dst, size):
            existing = self.server.manifest[dst]

            def skip():
                yield self.ctx.sim.timeout(self.nic.link.rtt)  # manifest check
                done.succeed(existing)

            self.ctx.sim.process(skip(), name=f"{self.name}/skip")
            return done

        inner = rftp_send_file(
            self.ctx,
            source_fs=self.source_fs,
            sink_fs=self.server.sink_fs,
            src_path=path,
            dst_path=dst,
            client_nic=self.nic,
            server_nic=self.server.nic,
            block_size=self.block_size,
            credits=self.credits,
        )

        def finish():
            try:
                digest = yield inner
            except BaseException as exc:  # noqa: BLE001 - surfaced via event
                done.fail(exc)
                return
            done.succeed(self.server.record(dst, size, digest))

        self.ctx.sim.process(finish(), name=f"{self.name}/put")
        return done

    # -- directory ----------------------------------------------------------------
    def put_tree(self) -> Event:
        """Push every file of the source filesystem, oldest name first.

        Files already complete on the server are skipped, so re-running
        after an interruption transfers only the remainder.  The event
        yields the list of TransferRecords (one per file).
        """
        done = self.ctx.sim.event(name=f"{self.name}/put-tree")

        def run():
            records: List[TransferRecord] = []
            for path in self.source_fs.listdir():
                rec = yield self.put(path)
                records.append(rec)
            done.succeed(records)

        self.ctx.sim.process(run(), name=f"{self.name}/put-tree")
        return done

    # -- pull ----------------------------------------------------------------------
    def get(self, path: str, dst_path: Optional[str] = None) -> Event:
        """Fetch a file the server holds into the client's filesystem."""
        dst = dst_path or path
        done = self.ctx.sim.event(name=f"{self.name}/get:{path}")
        inner = rftp_send_file(
            self.ctx,
            source_fs=self.server.sink_fs,
            sink_fs=self.source_fs,
            src_path=path,
            dst_path=dst,
            client_nic=self.server.nic,
            server_nic=self.nic,
            block_size=self.block_size,
            credits=self.credits,
        )

        def finish():
            try:
                digest = yield inner
            except BaseException as exc:  # noqa: BLE001
                done.fail(exc)
                return
            done.succeed(digest)

        self.ctx.sim.process(finish(), name=f"{self.name}/get")
        return done
