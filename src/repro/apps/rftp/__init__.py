"""RFTP: the RDMA-based file transfer protocol (Ren et al.).

RFTP (refs [21-23] of the paper) moves files with one-sided RDMA,
credit-based flow control, pipelined load -> transmit -> offload stages
and parallel streams over multiple adapters.  This package provides:

* :mod:`repro.apps.rftp.protocol` — the control-message wire format
  (block descriptors, credit grants, completion notices),
* :mod:`repro.apps.rftp.transfer` — the sustained fluid transfer engine
  used for the minutes-long 100 Gbps runs of Figs. 9-14,
* :mod:`repro.apps.rftp.filetransfer` — event-level transfer of real
  bytes with checksum verification (correctness path).
"""

from repro.apps.rftp.client import RftpClient
from repro.apps.rftp.filetransfer import rftp_send_file
from repro.apps.rftp.server import RftpServer, TransferRecord
from repro.apps.rftp.protocol import (
    BlockDescriptor,
    CreditGrant,
    FileRequest,
    TransferComplete,
    decode_message,
)
from repro.apps.rftp.transfer import RftpConfig, RftpResult, RftpTransfer

__all__ = [
    "BlockDescriptor",
    "CreditGrant",
    "FileRequest",
    "TransferComplete",
    "decode_message",
    "RftpConfig",
    "RftpResult",
    "RftpTransfer",
    "rftp_send_file",
    "RftpClient",
    "RftpServer",
    "TransferRecord",
]
