"""RFTP sustained-transfer engine (the fluid data plane).

One :class:`RftpTransfer` stands for one direction of an end-to-end run:
data is loaded at the source (from a filesystem over the SAN, or from
``/dev/zero`` for WAN memory-to-memory tests), pushed with RDMA WRITE
over every available RoCE link in parallel streams, and offloaded at the
sink (filesystem or ``/dev/null``).

RFTP's design choices map to the model like this (refs [21-23]):

* **pipelining** — load, transmit and offload run on separate worker
  threads, so the flow's rate cap is the *minimum* of the stage caps
  (not their serial sum, which is GridFTP's fate);
* **zero-copy** — payload bytes cross DMA/link resources only; the CPU
  pays just the per-byte user-space protocol work plus a fixed per-block
  descriptor/credit cost (Fig. 4's 56% user CPU at 39 Gbps);
* **credit-based flow control** — at most ``credits`` blocks per stream
  are outstanding, capping each stream at ``credits x block / RTT`` —
  binding on the 95 ms WAN path (Fig. 13), irrelevant on the LAN;
* **control-message overhead** — each block costs a descriptor/credit
  round trip of ``rftp_ctrl_bytes_per_block`` on the wire, so payload
  efficiency rises with block size (Fig. 13's x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Literal, Optional, Union

from repro.faults.injector import faults_active
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryConfig
from repro.fs.vfs import FileSystem
from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy
from repro.kernel.process import SimProcess, SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path, merge_paths
from repro.rdma.cm import ConnectionManager
from repro.rdma.fabric import rdma_fluid_path
from repro.rdma.verbs import Opcode, QueuePair
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.sim.trace import ThroughputProbe, TimeSeries
from repro.util.units import MIB, to_gbps
from repro.util.validation import check_positive

__all__ = ["RftpConfig", "RftpResult", "RftpTransfer"]

Source = Union[FileSystem, List[FileSystem], Literal["zero"]]
Sink = Union[FileSystem, List[FileSystem], Literal["null"]]


def _fs_for(spec, index: int):
    """Pick the filesystem serving stream *index* (striped round-robin)."""
    if isinstance(spec, list):
        if not spec:
            raise ValueError("empty filesystem list")
        return spec[index % len(spec)]
    return spec


@dataclass(frozen=True)
class RftpConfig:
    """Tunables of one RFTP invocation."""

    block_size: int = 4 * MIB
    streams_per_link: int = 1
    io_threads_per_link: int = 2  # load/offload workers feeding each link
    credits: Optional[int] = None  # default: calibration constant
    direct_io: bool = True
    numa_tuned: bool = True  # numactl binding per NIC-local node
    #: Recover from injected faults (retransmit, reconnect, fail over).
    #: Only engages when the context has an active fault injector and the
    #: transfer is open-ended; False gives stall-until-restore behaviour.
    recover: bool = True
    #: Timeout/backoff policy; None uses the stack default.
    recovery: Optional[RecoveryConfig] = None
    #: Sweepable overrides for the recovery policy.  Each one, when set,
    #: overlays the corresponding :class:`RecoveryConfig` field on top of
    #: ``recovery`` (or the stack default), so experiments can sweep a
    #: single knob without assembling a whole policy object.  Unset (the
    #: default) keeps the stack values: 0.2 s detect, 0.1 s backoff base
    #: doubling to a 2.0 s cap, 8 reconnect attempts.
    detect_timeout: Optional[float] = None
    backoff_base: Optional[float] = None
    backoff_cap: Optional[float] = None
    retransmit_budget: Optional[int] = None

    def __post_init__(self):
        check_positive("block_size", self.block_size)
        check_positive("streams_per_link", self.streams_per_link)
        check_positive("io_threads_per_link", self.io_threads_per_link)
        # Validation of the overlay values themselves is delegated to
        # RecoveryConfig.__post_init__ via resolved_recovery(): building
        # the overlaid policy here fails fast at construction time.
        self.resolved_recovery()

    def resolved_recovery(self) -> RecoveryConfig:
        """The effective recovery policy: base plus any field overrides."""
        base = self.recovery or DEFAULT_RECOVERY
        overrides = {
            name: value
            for name, value in (("detect_timeout", self.detect_timeout),
                                ("backoff_base", self.backoff_base),
                                ("backoff_cap", self.backoff_cap),
                                ("retransmit_budget", self.retransmit_budget))
            if value is not None
        }
        return replace(base, **overrides) if overrides else base


@dataclass
class RftpResult:
    """Outcome of a sustained run."""

    total_bytes: float
    duration: float
    n_streams: int
    sender_accounting: CpuAccounting
    receiver_accounting: CpuAccounting
    series: Optional[TimeSeries] = None
    per_link_bytes: Dict[str, float] = field(default_factory=dict)
    # -- fault-recovery counters (all zero on fault-free runs) --
    retransmitted_bytes: float = 0.0
    reconnects: int = 0
    streams_failed: int = 0
    recovery_seconds: float = 0.0

    @property
    def goodput(self) -> float:
        """Mean payload rate over the run (bytes/s)."""
        return self.total_bytes / self.duration

    @property
    def goodput_gbps(self) -> float:
        """Mean payload rate in gigabits/second."""
        return to_gbps(self.goodput)

    def cpu_percent(self, side: str = "sender") -> Dict[str, float]:
        """CPU utilization in percent-of-one-core, by category."""
        acc = self.sender_accounting if side == "sender" else self.receiver_accounting
        return {
            k: 100.0 * v / self.duration
            for k, v in acc.seconds_by_category().items()
        }


class _LinkRail:
    """Per-link runtime state: one rail of the multi-NIC transfer."""

    __slots__ = ("li", "sn", "rn", "qp_s", "load_t", "sproto_t", "rproto_t",
                 "offload_t", "nst", "flows", "caps", "generation", "alive",
                 "gave_up", "supervising")

    def __init__(self, li, sn, rn, qp_s, load_t, sproto_t, rproto_t,
                 offload_t, nst):
        self.li = li
        self.sn = sn
        self.rn = rn
        self.qp_s = qp_s
        self.load_t = load_t
        self.sproto_t = sproto_t
        self.rproto_t = rproto_t
        self.offload_t = offload_t
        self.nst = nst
        self.flows: List[FluidFlow] = []  # current generation only
        self.caps: Dict[FluidFlow, tuple] = {}  # flow -> (stage_cap, credit_cap)
        self.generation = 0
        self.alive = True
        self.gave_up = False
        self.supervising = False


def _roce_nics(machine: Machine) -> List[Nic]:
    return [
        s.device
        for s in machine.pcie_slots
        if s.device is not None and s.device.kind.is_roce
        and s.device.link is not None
    ]


class RftpTransfer:
    """One direction of an RFTP run between two cabled hosts."""

    def __init__(
        self,
        ctx: Context,
        sender: Machine,
        receiver: Machine,
        *,
        source: Source = "zero",
        sink: Sink = "null",
        config: RftpConfig = RftpConfig(),
        name: str = "rftp",
    ):
        self.ctx = ctx
        self.sender = sender
        self.receiver = receiver
        self.source = source
        self.sink = sink
        self.config = config
        self.name = name
        self.flows: List[FluidFlow] = []
        self._qps: List[QueuePair] = []
        self._send_threads: List[SimThread] = []
        self._recv_threads: List[SimThread] = []
        self._started = False
        self._stopped = False
        # -- fault-recovery state (inert unless an injector is active) --
        self._rails: List[_LinkRail] = []
        self._rail_by_link: Dict[object, _LinkRail] = {}
        self._fault_mode = False
        self._credits = 0
        self._size: Optional[float] = None
        self._lost_bytes = 0.0
        self.retransmitted_bytes = 0.0
        self.reconnects = 0
        self.streams_failed = 0
        self.recovery_seconds = 0.0
        self.ready = ctx.sim.event(name=f"{name}/ready")
        self.s_nics = _roce_nics(sender)
        self.r_nics = [n.link.peer(n) for n in self.s_nics]
        if not self.s_nics:
            raise ValueError(f"{sender.name!r} has no cabled RoCE NICs")

    # -- stage builders ------------------------------------------------------------
    def _stage_threads(self, machine: Machine, nic: Nic, role: str) -> SimProcess:
        if self.config.numa_tuned:
            policy = NumaPolicy.bind(nic.node)
        else:
            policy = NumaPolicy.default()
        proc = SimProcess(
            machine, f"{self.name}-{role}-{nic.name}", cpu_policy=policy,
            mem_policy=policy,
        )
        return proc

    def _load_spec(self, thread: SimThread, n_streams_total: int,
                   stream_index: int = 0) -> PathSpec:
        cal = self.ctx.cal
        bs = self.config.block_size
        if isinstance(self.source, str):
            item = WorkItem(
                "load /dev/zero",
                cpu_per_byte=1.0 / cal.dev_zero_fill_rate,
                category="load",
                mem_traffic=(WorkItem.mem(thread.execution_fractions(), 1.0),),
            )
            spec = build_thread_path(thread, [item], op_size=bs)
        else:
            fs = _fs_for(self.source, stream_index)
            spec = fs.streaming_spec(
                False, thread, bs, direct=self.config.direct_io,
                n_streams=n_streams_total,
            )
        # the stage is served by a small worker team
        if spec.cap is not None:
            spec.cap *= self.config.io_threads_per_link
        return spec

    def _offload_spec(self, thread: SimThread, n_streams_total: int,
                      stream_index: int = 0) -> PathSpec:
        bs = self.config.block_size
        if isinstance(self.sink, str):
            item = WorkItem(
                "offload /dev/null",
                cpu_per_byte=1.0 / 400e9,  # write(2) to /dev/null: ~free
                category="offload",
            )
            spec = build_thread_path(thread, [item], op_size=bs)
        else:
            fs = _fs_for(self.sink, stream_index)
            spec = fs.streaming_spec(
                True, thread, bs, direct=self.config.direct_io,
                n_streams=n_streams_total,
            )
        if spec.cap is not None:
            spec.cap *= self.config.io_threads_per_link
        return spec

    def _proto_spec(self, thread: SimThread) -> PathSpec:
        cal = self.ctx.cal
        item = WorkItem(
            "rftp protocol",
            cpu_per_byte=1.0 / cal.rdma_proto_rate,
            category="usr_proto",
            per_op_cpu=cal.rftp_per_block_cpu,
        )
        return build_thread_path(thread, [item], op_size=self.config.block_size)

    # -- lifecycle -------------------------------------------------------------------
    def start(self, size: Optional[float] = None) -> List[FluidFlow]:
        """Connect QPs and start the per-stream flows.

        ``size`` is total bytes (split evenly over streams); None runs
        until :meth:`stop`/:meth:`run`.
        """
        if self._started:
            raise RuntimeError(f"{self.name!r} already started")
        self._started = True
        cal = self.ctx.cal
        cfg = self.config
        credits = cfg.credits if cfg.credits is not None else cal.rftp_credits_per_stream
        self._credits = credits
        self._size = size
        n_streams_total = len(self.s_nics) * cfg.streams_per_link
        cm = ConnectionManager(self.ctx)

        # Recovery only engages for open-ended runs under an active
        # injector; otherwise every code path below is the classic one.
        inj = faults_active(self.ctx)
        self._fault_mode = inj is not None and cfg.recover and size is None

        handshakes = []
        for li, (sn, rn) in enumerate(zip(self.s_nics, self.r_nics)):
            qp_s, qp_r, hs = cm.connect_pair(sn, rn, name=f"{self.name}-l{li}")
            handshakes.append(hs)
            self._qps += [qp_s, qp_r]

            sproc = self._stage_threads(self.sender, sn, "snd")
            rproc = self._stage_threads(self.receiver, rn, "rcv")
            load_t = sproc.spawn_thread(f"{self.name}-load{li}")
            sproto_t = sproc.spawn_thread(f"{self.name}-sproto{li}")
            rproto_t = rproc.spawn_thread(f"{self.name}-rproto{li}")
            offload_t = rproc.spawn_thread(f"{self.name}-offload{li}")
            self._send_threads += [load_t, sproto_t]
            self._recv_threads += [rproto_t, offload_t]
            rail = _LinkRail(li, sn, rn, qp_s, load_t, sproto_t, rproto_t,
                             offload_t, n_streams_total)
            self._rails.append(rail)
            self._rail_by_link[sn.link] = rail

        if self._fault_mode:
            inj.add_transfer(self.name, self)

        def launch():
            for hs in handshakes:
                yield hs
            for rail in self._rails:
                self._build_flows(rail)
            self.ready.succeed(tuple(self.flows))

        self.ctx.sim.process(launch(), name=f"{self.name}/launch")
        return self.flows

    def _build_flows(self, rail: _LinkRail) -> None:
        """Create and start rail's per-stream flows (initial or rebuilt).

        Deterministic pure-Python spec assembly: safe to call again on
        reconnect (generation > 0 names keep the per-link prefix).
        """
        cal = self.ctx.cal
        cfg = self.config
        bs = cfg.block_size
        credits = self._credits
        sn, rn = rail.sn, rail.rn
        # pipelined stages: min of caps, all resources on one path
        sproto = self._proto_spec(rail.sproto_t)
        rproto = self._proto_spec(rail.rproto_t)

        if cfg.numa_tuned:
            s_fracs = {sn.node: 1.0}
            r_fracs = {rn.node: 1.0}
        else:
            s_fracs = {n: 1.0 / self.sender.n_nodes
                       for n in range(self.sender.n_nodes)}
            r_fracs = {n: 1.0 / self.receiver.n_nodes
                       for n in range(self.receiver.n_nodes)}
        wire = rdma_fluid_path(rail.qp_s, Opcode.RDMA_WRITE, s_fracs, r_fracs)
        # per-block control messages share the wire with the payload
        ctrl_overhead = cal.rftp_ctrl_bytes_per_block / bs
        wire = [(r, w * (1.0 + ctrl_overhead)) for r, w in wire]

        link_rtt = sn.link.rtt + 2 * cal.rdma_op_latency
        rail.flows = []
        rail.caps = {}
        gen = f"r{rail.generation}" if rail.generation else ""
        new_flows: List[FluidFlow] = []
        for s in range(cfg.streams_per_link):
            stream_index = rail.li * cfg.streams_per_link + s
            load = self._load_spec(rail.load_t, rail.nst, stream_index)
            offload = self._offload_spec(rail.offload_t, rail.nst, stream_index)
            spec = merge_paths(load, sproto, rproto, offload)
            spec.path.extend(wire)
            # per-stream share of the pipelined stage caps
            if spec.cap is not None and cfg.streams_per_link > 1:
                spec.cap /= cfg.streams_per_link
            stage_cap = spec.cap
            credit_cap = credits * bs / link_rtt
            spec.with_cap(credit_cap)
            flow = FluidFlow(
                spec.path,
                size=None if self._size is None else self._size / rail.nst,
                cap=spec.cap,
                charges=spec.charges,
                name=f"{self.name}-l{rail.li}s{s}{gen}",
            )
            new_flows.append(flow)
            self.flows.append(flow)
            rail.flows.append(flow)
            if self._fault_mode:
                rail.caps[flow] = (stage_cap, credit_cap)
        # One settle covers the whole rail's streams (a per-flow loop
        # when the scheduler is eager — byte-identical either way).
        self.ctx.fluid.start_many(new_flows)

    # -- fault recovery ------------------------------------------------------------
    # The hooks below are only ever invoked by an active FaultInjector
    # (registered via add_transfer); on fault-free runs none of this
    # executes and the transfer behaves exactly as before.
    @property
    def _recovery(self) -> RecoveryConfig:
        return self.config.resolved_recovery()

    def _boost(self) -> float:
        """Credit multiplier: dead rails' windows reassigned to survivors."""
        alive = sum(1 for rail in self._rails if rail.alive)
        return len(self._rails) / alive if alive else 1.0

    def _apply_boost(self) -> None:
        boost = self._boost()
        fluid = self.ctx.fluid
        for rail in self._rails:
            if not rail.alive:
                continue
            for flow in rail.flows:
                if not flow._active:
                    continue
                stage_cap, credit_cap = rail.caps[flow]
                cap = credit_cap * boost
                if stage_cap is not None and stage_cap < cap:
                    cap = stage_cap
                fluid.set_cap(flow, cap)

    def _kill_streams(self, rail: _LinkRail) -> None:
        """Declare a rail's streams dead; account their in-flight windows.

        Blocks inside the credit window were unacknowledged when the
        rail died, so they are retransmitted after recovery: goodput is
        debited (``_lost_bytes``) and the retransmit counters charged.
        """
        inj = self.ctx.faults
        window = (self._recovery.window_loss_fraction
                  * self._credits * self.config.block_size)
        fluid = self.ctx.fluid
        if fluid.coalescing:
            # Bulk halt: one settle freezes every stream's byte count;
            # the accounting loop below then only reads ``transferred``.
            active = [f for f in rail.flows if f._active]
            if active:
                fluid.finish_many(active)
        for flow in rail.flows:
            delivered = fluid.stop(flow) if flow._active else flow.transferred
            lost = window if window < delivered else delivered
            self._lost_bytes += lost
            self.retransmitted_bytes += lost
            self.streams_failed += 1
            inj.stats.count_retransmit(lost)
            inj.stats.count_stream_failed()
        rail.alive = False

    def _account_loss(self, rail: _LinkRail, fraction: float) -> None:
        """A loss burst: *fraction* of each stream's window is resent."""
        inj = self.ctx.faults
        # close the open rate epoch so flow.transferred is current
        self.ctx.fluid.settle()
        window = fraction * self._credits * self.config.block_size
        for flow in rail.flows:
            lost = window if window < flow.transferred else flow.transferred
            self._lost_bytes += lost
            self.retransmitted_bytes += lost
            inj.stats.count_retransmit(lost)

    def _reconnect(self, rail: _LinkRail, t_down: float):
        """Pay the CM handshake, rebuild the rail, release the boost."""
        inj = self.ctx.faults
        link = rail.sn.link
        yield self.ctx.sim.timeout(3 * link.delay + inj.handshake_delay(link))
        if self._stopped or link.failed:
            return False
        rail.generation += 1
        rail.alive = True
        rail.gave_up = False
        self._build_flows(rail)
        self._apply_boost()
        dt = self.ctx.sim.now - t_down
        self.reconnects += 1
        self.recovery_seconds += dt
        inj.stats.count_reconnect(dt)
        self.ctx.trace.emit("fault", "reconnected", link=link.name,
                            transfer=self.name, recovery_seconds=dt)
        return True

    def _supervise(self, rail: _LinkRail, permanent: bool,
                   qp_error: bool = False):
        """Detect a dead rail, reclaim its credits, and try to reconnect."""
        rec = self._recovery
        inj = self.ctx.faults
        sim = self.ctx.sim
        link = rail.sn.link
        t_down = sim.now
        if not qp_error:
            if rec.detect_timeout > 0.0:
                yield sim.timeout(rec.detect_timeout)
            if self._stopped or not rail.alive:
                rail.supervising = False
                return
            if not link.failed:
                # a blip shorter than the block-ack timeout: just a stall
                rail.supervising = False
                return
        self._kill_streams(rail)
        self._apply_boost()
        attempt = 0
        while not self._stopped:
            if permanent or attempt >= rec.retransmit_budget:
                rail.gave_up = True
                inj.stats.count_giveup()
                break
            yield sim.timeout(rec.backoff(attempt))
            attempt += 1
            if self._stopped:
                break
            if not link.failed:
                ok = yield from self._reconnect(rail, t_down)
                if ok:
                    break
        rail.supervising = False

    def on_link_down(self, link, permanent: bool) -> None:
        """Injector hook: a rail's link went dark."""
        rail = self._rail_by_link.get(link)
        if (rail is None or not rail.alive or rail.supervising
                or self._stopped):
            return
        rail.supervising = True
        self.ctx.sim.process(
            self._supervise(rail, permanent),
            name=f"{self.name}/recover-l{rail.li}",
        )

    def on_link_up(self, link) -> None:
        """Injector hook: a given-up rail's link came back — re-attach."""
        rail = self._rail_by_link.get(link)
        if (rail is None or rail.alive or not rail.gave_up
                or rail.supervising or self._stopped):
            return
        rail.supervising = True

        def reattach():
            yield self.ctx.sim.timeout(self._recovery.backoff_base)
            if not self._stopped and not link.failed and not rail.alive:
                yield from self._reconnect(rail, self.ctx.sim.now)
            rail.supervising = False

        self.ctx.sim.process(reattach(), name=f"{self.name}/reattach-l{rail.li}")

    def on_loss(self, link, fraction: float) -> None:
        """Injector hook: loss burst — part of the window is retransmitted."""
        rail = self._rail_by_link.get(link)
        if rail is None or not rail.alive or self._stopped:
            return
        self._account_loss(rail, fraction)

    def on_qp_error(self, link) -> None:
        """Injector hook: QP async error — tear down and reconnect now."""
        rail = self._rail_by_link.get(link)
        if (rail is None or not rail.alive or rail.supervising
                or self._stopped):
            return
        rail.supervising = True
        self.ctx.sim.process(
            self._supervise(rail, permanent=False, qp_error=True),
            name=f"{self.name}/qp-recover-l{rail.li}",
        )

    def on_crash(self, restart_delay: float) -> None:
        """Injector hook: process crash — all rails die, restart later."""
        if self._stopped:
            return

        def crash():
            t_down = self.ctx.sim.now
            for rail in self._rails:
                if rail.alive and not rail.supervising:
                    self._kill_streams(rail)
            yield self.ctx.sim.timeout(restart_delay)
            for rail in self._rails:
                if (self._stopped or rail.alive or rail.supervising
                        or rail.sn.link.failed):
                    continue
                yield from self._reconnect(rail, t_down)

        self.ctx.sim.process(crash(), name=f"{self.name}/crash")

    def transferred(self) -> float:
        """Total bytes moved so far across all streams.

        This bound method is the sampler counter for the run's
        throughput probe, so it is kept allocation-free: a plain loop
        over a cached local instead of a ``sum()`` generator (rebuilt
        ~23k times per full fig13 run under the per-tick sampler).
        """
        total = 0.0
        for f in self.flows:
            total += f.transferred
        lost = self._lost_bytes
        if lost:
            # retransmitted windows crossed the wire but are not goodput
            total -= lost
            if total < 0.0:
                total = 0.0
        return total

    def stop(self) -> float:
        """Stop the activity; returns/flushes what it accumulated."""
        self._stopped = True
        fluid = self.ctx.fluid
        if fluid.coalescing:
            # Bulk halt: one settle for every still-active stream.
            active = [f for f in self.flows if f._active]
            if active:
                fluid.finish_many(active)
        total = 0.0
        for f in self.flows:
            if f._active:
                total += fluid.stop(f)
            else:
                total += f.transferred
        return total

    def _ledger(self, threads: List[SimThread], name: str) -> CpuAccounting:
        acc = CpuAccounting(name)
        for t in threads:
            acc.add_many(t.accounting.seconds_by_category())
        return acc

    def run(self, duration: float, sample_interval: float = 1.0) -> RftpResult:
        """Start (if needed), run for *duration*, and summarize."""
        if not self._started:
            self.start()
        probe = ThroughputProbe(
            self.ctx.sim,
            counter=self.transferred,
            interval=sample_interval,
            name=f"{self.name}/throughput",
            pre_sample=self.ctx.fluid.settle,
        )
        t0 = self.ctx.sim.now
        self.ctx.sim.run(until=t0 + duration)
        self.ctx.fluid.settle()
        series = probe.stop()
        total = self.transferred()
        per_link: Dict[str, float] = {}
        for f in self.flows:
            key = f.name.rsplit("s", 1)[0]
            per_link[key] = per_link.get(key, 0.0) + f.transferred
        self.stop()
        return RftpResult(
            total_bytes=total,
            duration=duration,
            n_streams=len(self.flows),
            sender_accounting=self._ledger(self._send_threads, "rftp-snd"),
            receiver_accounting=self._ledger(self._recv_threads, "rftp-rcv"),
            series=series,
            per_link_bytes=per_link,
            retransmitted_bytes=self.retransmitted_bytes,
            reconnects=self.reconnects,
            streams_failed=self.streams_failed,
            recovery_seconds=self.recovery_seconds,
        )
