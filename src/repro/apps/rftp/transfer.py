"""RFTP sustained-transfer engine (the fluid data plane).

One :class:`RftpTransfer` stands for one direction of an end-to-end run:
data is loaded at the source (from a filesystem over the SAN, or from
``/dev/zero`` for WAN memory-to-memory tests), pushed with RDMA WRITE
over every available RoCE link in parallel streams, and offloaded at the
sink (filesystem or ``/dev/null``).

RFTP's design choices map to the model like this (refs [21-23]):

* **pipelining** — load, transmit and offload run on separate worker
  threads, so the flow's rate cap is the *minimum* of the stage caps
  (not their serial sum, which is GridFTP's fate);
* **zero-copy** — payload bytes cross DMA/link resources only; the CPU
  pays just the per-byte user-space protocol work plus a fixed per-block
  descriptor/credit cost (Fig. 4's 56% user CPU at 39 Gbps);
* **credit-based flow control** — at most ``credits`` blocks per stream
  are outstanding, capping each stream at ``credits x block / RTT`` —
  binding on the 95 ms WAN path (Fig. 13), irrelevant on the LAN;
* **control-message overhead** — each block costs a descriptor/credit
  round trip of ``rftp_ctrl_bytes_per_block`` on the wire, so payload
  efficiency rises with block size (Fig. 13's x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Union

from repro.fs.vfs import FileSystem
from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy
from repro.kernel.process import SimProcess, SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path, merge_paths
from repro.rdma.cm import ConnectionManager
from repro.rdma.fabric import rdma_fluid_path
from repro.rdma.verbs import Opcode, QueuePair
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.sim.trace import ThroughputProbe, TimeSeries
from repro.util.units import MIB, to_gbps
from repro.util.validation import check_positive

__all__ = ["RftpConfig", "RftpResult", "RftpTransfer"]

Source = Union[FileSystem, List[FileSystem], Literal["zero"]]
Sink = Union[FileSystem, List[FileSystem], Literal["null"]]


def _fs_for(spec, index: int):
    """Pick the filesystem serving stream *index* (striped round-robin)."""
    if isinstance(spec, list):
        if not spec:
            raise ValueError("empty filesystem list")
        return spec[index % len(spec)]
    return spec


@dataclass(frozen=True)
class RftpConfig:
    """Tunables of one RFTP invocation."""

    block_size: int = 4 * MIB
    streams_per_link: int = 1
    io_threads_per_link: int = 2  # load/offload workers feeding each link
    credits: Optional[int] = None  # default: calibration constant
    direct_io: bool = True
    numa_tuned: bool = True  # numactl binding per NIC-local node

    def __post_init__(self):
        check_positive("block_size", self.block_size)
        check_positive("streams_per_link", self.streams_per_link)
        check_positive("io_threads_per_link", self.io_threads_per_link)


@dataclass
class RftpResult:
    """Outcome of a sustained run."""

    total_bytes: float
    duration: float
    n_streams: int
    sender_accounting: CpuAccounting
    receiver_accounting: CpuAccounting
    series: Optional[TimeSeries] = None
    per_link_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Mean payload rate over the run (bytes/s)."""
        return self.total_bytes / self.duration

    @property
    def goodput_gbps(self) -> float:
        """Mean payload rate in gigabits/second."""
        return to_gbps(self.goodput)

    def cpu_percent(self, side: str = "sender") -> Dict[str, float]:
        """CPU utilization in percent-of-one-core, by category."""
        acc = self.sender_accounting if side == "sender" else self.receiver_accounting
        return {
            k: 100.0 * v / self.duration
            for k, v in acc.seconds_by_category().items()
        }


def _roce_nics(machine: Machine) -> List[Nic]:
    return [
        s.device
        for s in machine.pcie_slots
        if s.device is not None and s.device.kind.is_roce
        and s.device.link is not None
    ]


class RftpTransfer:
    """One direction of an RFTP run between two cabled hosts."""

    def __init__(
        self,
        ctx: Context,
        sender: Machine,
        receiver: Machine,
        *,
        source: Source = "zero",
        sink: Sink = "null",
        config: RftpConfig = RftpConfig(),
        name: str = "rftp",
    ):
        self.ctx = ctx
        self.sender = sender
        self.receiver = receiver
        self.source = source
        self.sink = sink
        self.config = config
        self.name = name
        self.flows: List[FluidFlow] = []
        self._qps: List[QueuePair] = []
        self._send_threads: List[SimThread] = []
        self._recv_threads: List[SimThread] = []
        self._started = False
        self.ready = ctx.sim.event(name=f"{name}/ready")
        self.s_nics = _roce_nics(sender)
        self.r_nics = [n.link.peer(n) for n in self.s_nics]
        if not self.s_nics:
            raise ValueError(f"{sender.name!r} has no cabled RoCE NICs")

    # -- stage builders ------------------------------------------------------------
    def _stage_threads(self, machine: Machine, nic: Nic, role: str) -> SimProcess:
        if self.config.numa_tuned:
            policy = NumaPolicy.bind(nic.node)
        else:
            policy = NumaPolicy.default()
        proc = SimProcess(
            machine, f"{self.name}-{role}-{nic.name}", cpu_policy=policy,
            mem_policy=policy,
        )
        return proc

    def _load_spec(self, thread: SimThread, n_streams_total: int,
                   stream_index: int = 0) -> PathSpec:
        cal = self.ctx.cal
        bs = self.config.block_size
        if isinstance(self.source, str):
            item = WorkItem(
                "load /dev/zero",
                cpu_per_byte=1.0 / cal.dev_zero_fill_rate,
                category="load",
                mem_traffic=(WorkItem.mem(thread.execution_fractions(), 1.0),),
            )
            spec = build_thread_path(thread, [item], op_size=bs)
        else:
            fs = _fs_for(self.source, stream_index)
            spec = fs.streaming_spec(
                False, thread, bs, direct=self.config.direct_io,
                n_streams=n_streams_total,
            )
        # the stage is served by a small worker team
        if spec.cap is not None:
            spec.cap *= self.config.io_threads_per_link
        return spec

    def _offload_spec(self, thread: SimThread, n_streams_total: int,
                      stream_index: int = 0) -> PathSpec:
        bs = self.config.block_size
        if isinstance(self.sink, str):
            item = WorkItem(
                "offload /dev/null",
                cpu_per_byte=1.0 / 400e9,  # write(2) to /dev/null: ~free
                category="offload",
            )
            spec = build_thread_path(thread, [item], op_size=bs)
        else:
            fs = _fs_for(self.sink, stream_index)
            spec = fs.streaming_spec(
                True, thread, bs, direct=self.config.direct_io,
                n_streams=n_streams_total,
            )
        if spec.cap is not None:
            spec.cap *= self.config.io_threads_per_link
        return spec

    def _proto_spec(self, thread: SimThread) -> PathSpec:
        cal = self.ctx.cal
        item = WorkItem(
            "rftp protocol",
            cpu_per_byte=1.0 / cal.rdma_proto_rate,
            category="usr_proto",
            per_op_cpu=cal.rftp_per_block_cpu,
        )
        return build_thread_path(thread, [item], op_size=self.config.block_size)

    # -- lifecycle -------------------------------------------------------------------
    def start(self, size: Optional[float] = None) -> List[FluidFlow]:
        """Connect QPs and start the per-stream flows.

        ``size`` is total bytes (split evenly over streams); None runs
        until :meth:`stop`/:meth:`run`.
        """
        if self._started:
            raise RuntimeError(f"{self.name!r} already started")
        self._started = True
        cal = self.ctx.cal
        cfg = self.config
        bs = cfg.block_size
        credits = cfg.credits if cfg.credits is not None else cal.rftp_credits_per_stream
        n_streams_total = len(self.s_nics) * cfg.streams_per_link
        cm = ConnectionManager(self.ctx)

        handshakes = []
        per_link = []
        for li, (sn, rn) in enumerate(zip(self.s_nics, self.r_nics)):
            qp_s, qp_r, hs = cm.connect_pair(sn, rn, name=f"{self.name}-l{li}")
            handshakes.append(hs)
            self._qps += [qp_s, qp_r]

            sproc = self._stage_threads(self.sender, sn, "snd")
            rproc = self._stage_threads(self.receiver, rn, "rcv")
            load_t = sproc.spawn_thread(f"{self.name}-load{li}")
            sproto_t = sproc.spawn_thread(f"{self.name}-sproto{li}")
            rproto_t = rproc.spawn_thread(f"{self.name}-rproto{li}")
            offload_t = rproc.spawn_thread(f"{self.name}-offload{li}")
            self._send_threads += [load_t, sproto_t]
            self._recv_threads += [rproto_t, offload_t]
            per_link.append((li, sn, rn, qp_s, load_t, sproto_t, rproto_t, offload_t,
                             n_streams_total))

        def launch():
            for hs in handshakes:
                yield hs
            for (li, sn, rn, qp_s, load_t, sproto_t, rproto_t, offload_t,
                 nst) in per_link:
                # pipelined stages: min of caps, all resources on one path
                sproto = self._proto_spec(sproto_t)
                rproto = self._proto_spec(rproto_t)

                if cfg.numa_tuned:
                    s_fracs = {sn.node: 1.0}
                    r_fracs = {rn.node: 1.0}
                else:
                    s_fracs = {n: 1.0 / self.sender.n_nodes
                               for n in range(self.sender.n_nodes)}
                    r_fracs = {n: 1.0 / self.receiver.n_nodes
                               for n in range(self.receiver.n_nodes)}
                wire = rdma_fluid_path(qp_s, Opcode.RDMA_WRITE, s_fracs, r_fracs)
                # per-block control messages share the wire with the payload
                ctrl_overhead = cal.rftp_ctrl_bytes_per_block / bs
                wire = [(r, w * (1.0 + ctrl_overhead)) for r, w in wire]

                link_rtt = sn.link.rtt + 2 * cal.rdma_op_latency
                for s in range(cfg.streams_per_link):
                    stream_index = li * cfg.streams_per_link + s
                    load = self._load_spec(load_t, nst, stream_index)
                    offload = self._offload_spec(offload_t, nst, stream_index)
                    spec = merge_paths(load, sproto, rproto, offload)
                    spec.path.extend(wire)
                    # per-stream share of the pipelined stage caps
                    if spec.cap is not None and cfg.streams_per_link > 1:
                        spec.cap /= cfg.streams_per_link
                    spec.with_cap(credits * bs / link_rtt)
                    flow = FluidFlow(
                        spec.path,
                        size=None if size is None else size / n_streams_total,
                        cap=spec.cap,
                        charges=spec.charges,
                        name=f"{self.name}-l{li}s{s}",
                    )
                    self.ctx.fluid.start(flow)
                    self.flows.append(flow)
            self.ready.succeed(tuple(self.flows))

        self.ctx.sim.process(launch(), name=f"{self.name}/launch")
        return self.flows

    def transferred(self) -> float:
        """Total bytes moved so far across all streams.

        This bound method is the sampler counter for the run's
        throughput probe, so it is kept allocation-free: a plain loop
        over a cached local instead of a ``sum()`` generator (rebuilt
        ~23k times per full fig13 run under the per-tick sampler).
        """
        total = 0.0
        for f in self.flows:
            total += f.transferred
        return total

    def stop(self) -> float:
        """Stop the activity; returns/flushes what it accumulated."""
        total = 0.0
        for f in self.flows:
            if f._active:
                total += self.ctx.fluid.stop(f)
            else:
                total += f.transferred
        return total

    def _ledger(self, threads: List[SimThread], name: str) -> CpuAccounting:
        acc = CpuAccounting(name)
        for t in threads:
            acc.add_many(t.accounting.seconds_by_category())
        return acc

    def run(self, duration: float, sample_interval: float = 1.0) -> RftpResult:
        """Start (if needed), run for *duration*, and summarize."""
        if not self._started:
            self.start()
        probe = ThroughputProbe(
            self.ctx.sim,
            counter=self.transferred,
            interval=sample_interval,
            name=f"{self.name}/throughput",
            pre_sample=self.ctx.fluid.settle,
        )
        t0 = self.ctx.sim.now
        self.ctx.sim.run(until=t0 + duration)
        self.ctx.fluid.settle()
        series = probe.stop()
        total = self.transferred()
        per_link: Dict[str, float] = {}
        for f in self.flows:
            key = f.name.rsplit("s", 1)[0]
            per_link[key] = per_link.get(key, 0.0) + f.transferred
        self.stop()
        return RftpResult(
            total_bytes=total,
            duration=duration,
            n_streams=len(self.flows),
            sender_accounting=self._ledger(self._send_threads, "rftp-snd"),
            receiver_accounting=self._ledger(self._recv_threads, "rftp-rcv"),
            series=series,
            per_link_bytes=per_link,
        )
