"""RFTP control-message wire format.

RFTP exchanges small control messages over a SEND/RECV channel while the
payload moves by one-sided RDMA ("asynchronous control message
exchanges", ref [23]).  Messages are fixed-layout structs with a one-byte
type tag; property tests round-trip them.

========  ======================  =======================================
tag       message                 role
========  ======================  =======================================
``0x01``  :class:`FileRequest`     open a named file for transfer
``0x02``  :class:`BlockDescriptor` advertise one block (offset, length,
                                   rkey, checksum) ready for RDMA
``0x03``  :class:`CreditGrant`     receiver grants N more outstanding
                                   blocks (flow control)
``0x04``  :class:`TransferComplete` sender signals EOF + whole-file digest
========  ======================  =======================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "FileRequest",
    "BlockDescriptor",
    "CreditGrant",
    "TransferComplete",
    "decode_message",
    "RftpProtocolError",
]


class RftpProtocolError(ValueError):
    """Malformed RFTP control message."""


TAG_FILE_REQUEST = 0x01
TAG_BLOCK_DESCRIPTOR = 0x02
TAG_CREDIT_GRANT = 0x03
TAG_TRANSFER_COMPLETE = 0x04

_MAX_NAME = 255


@dataclass(frozen=True)
class FileRequest:
    """Open *path* of *size* bytes for transfer in *block_size* chunks."""

    path: str
    size: int
    block_size: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        name = self.path.encode("utf-8")
        if not name or len(name) > _MAX_NAME:
            raise RftpProtocolError(f"bad path length {len(name)}")
        if self.size < 0 or self.block_size <= 0:
            raise RftpProtocolError("size/block_size out of range")
        return (
            struct.pack(">BQQB", TAG_FILE_REQUEST, self.size, self.block_size,
                        len(name))
            + name
        )

    @classmethod
    def decode(cls, raw: bytes) -> "FileRequest":
        """Parse the wire format (raises the typed protocol error on junk)."""
        if len(raw) < 18 or raw[0] != TAG_FILE_REQUEST:
            raise RftpProtocolError("not a FileRequest")
        _, size, block_size, name_len = struct.unpack(">BQQB", raw[:18])
        name = raw[18 : 18 + name_len]
        if len(name) != name_len:
            raise RftpProtocolError("truncated FileRequest name")
        return cls(path=name.decode("utf-8"), size=size, block_size=block_size)


@dataclass(frozen=True)
class BlockDescriptor:
    """One payload block ready for (or delivered by) one-sided RDMA."""

    sequence: int
    offset: int
    length: int
    rkey: int
    crc32: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        if self.length <= 0:
            raise RftpProtocolError("block length must be > 0")
        return struct.pack(
            ">BQQIQI",
            TAG_BLOCK_DESCRIPTOR,
            self.sequence,
            self.offset,
            self.length,
            self.rkey,
            self.crc32,
        )

    @classmethod
    def decode(cls, raw: bytes) -> "BlockDescriptor":
        """Parse the wire format (raises the typed protocol error on junk)."""
        if len(raw) < 33 or raw[0] != TAG_BLOCK_DESCRIPTOR:
            raise RftpProtocolError("not a BlockDescriptor")
        _, seq, offset, length, rkey, crc = struct.unpack(">BQQIQI", raw[:33])
        if length == 0:
            raise RftpProtocolError("zero-length block")
        return cls(sequence=seq, offset=offset, length=length, rkey=rkey, crc32=crc)


@dataclass(frozen=True)
class CreditGrant:
    """Receiver grants *credits* more outstanding blocks."""

    credits: int

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        if not (0 < self.credits < 1 << 16):
            raise RftpProtocolError(f"credits out of range: {self.credits}")
        return struct.pack(">BH", TAG_CREDIT_GRANT, self.credits)

    @classmethod
    def decode(cls, raw: bytes) -> "CreditGrant":
        """Parse the wire format (raises the typed protocol error on junk)."""
        if len(raw) < 3 or raw[0] != TAG_CREDIT_GRANT:
            raise RftpProtocolError("not a CreditGrant")
        (_, credits) = struct.unpack(">BH", raw[:3])
        if credits == 0:
            raise RftpProtocolError("zero credit grant")
        return cls(credits=credits)


@dataclass(frozen=True)
class TransferComplete:
    """EOF notice with block count and whole-file digest."""

    n_blocks: int
    digest_hex: str  # 32-hex-char blake2b-128

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        try:
            digest = bytes.fromhex(self.digest_hex)
        except ValueError as exc:
            raise RftpProtocolError(f"bad digest hex: {exc}") from exc
        if len(digest) != 16:
            raise RftpProtocolError("digest must be 16 bytes")
        return struct.pack(">BQ", TAG_TRANSFER_COMPLETE, self.n_blocks) + digest

    @classmethod
    def decode(cls, raw: bytes) -> "TransferComplete":
        """Parse the wire format (raises the typed protocol error on junk)."""
        if len(raw) < 25 or raw[0] != TAG_TRANSFER_COMPLETE:
            raise RftpProtocolError("not a TransferComplete")
        (_, n_blocks) = struct.unpack(">BQ", raw[:9])
        return cls(n_blocks=n_blocks, digest_hex=raw[9:25].hex())


_DECODERS = {
    TAG_FILE_REQUEST: FileRequest.decode,
    TAG_BLOCK_DESCRIPTOR: BlockDescriptor.decode,
    TAG_CREDIT_GRANT: CreditGrant.decode,
    TAG_TRANSFER_COMPLETE: TransferComplete.decode,
}


def decode_message(raw: bytes):
    """Tag-dispatch decode of any RFTP control message."""
    if not raw:
        raise RftpProtocolError("empty message")
    decoder = _DECODERS.get(raw[0])
    if decoder is None:
        raise RftpProtocolError(f"unknown message tag {raw[0]:#x}")
    return decoder(raw)
