"""fio: the flexible I/O tester (Axboe), as used in §4.2.

The paper drives the iSER SAN with fio: multiple jobs per LUN, block
sizes from tens of KiB to tens of MiB, five-minute runs, measuring
bandwidth and CPU.  :func:`run_fio` reproduces that harness over any set
of :class:`~repro.storage.blockdev.BlockDevice`\\ s (remote iSER devices,
RAM disks or SSDs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy
from repro.kernel.process import SimProcess
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.storage.blockdev import BlockDevice
from repro.util.units import to_gbps
from repro.util.validation import check_positive

__all__ = ["FioJob", "FioResult", "run_fio"]


@dataclass(frozen=True)
class FioJob:
    """One fio job file (the knobs the paper sweeps)."""

    rw: str  # "read" | "write"
    block_size: int
    numjobs: int = 4  # threads per device ("four threads for each LUN")
    queue_depth: int = 1
    runtime: float = 60.0
    bind_node: Optional[int] = None  # numactl for the fio process

    def __post_init__(self):
        if self.rw not in ("read", "write"):
            raise ValueError(f"rw must be 'read' or 'write', got {self.rw!r}")
        check_positive("block_size", self.block_size)
        check_positive("numjobs", self.numjobs)
        check_positive("runtime", self.runtime)


@dataclass
class FioResult:
    """Aggregate bandwidth/CPU outcome of one fio run."""

    total_bytes: float
    runtime: float
    n_flows: int
    job: FioJob
    accounting: CpuAccounting
    per_device_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def bandwidth(self) -> float:
        """Mean payload rate over the run (bytes/s)."""
        return self.total_bytes / self.runtime

    @property
    def bandwidth_gbps(self) -> float:
        """Mean payload rate in gigabits/second."""
        return to_gbps(self.bandwidth)

    @property
    def iops(self) -> float:
        """I/O operations per second at the job's block size."""
        return self.bandwidth / self.job.block_size

    def cpu_percent(self) -> float:
        """Total initiator-side CPU as percent-of-one-core."""
        return 100.0 * self.accounting.total_seconds / self.runtime

    def completion_latency(self) -> float:
        """Mean per-I/O completion latency implied by the run.

        With ``numjobs`` synchronous threads per device sustaining the
        measured bandwidth, Little's law gives
        ``latency = outstanding_ops / IOPS``.
        """
        if self.bandwidth <= 0:
            return float("inf")
        outstanding = self.n_flows * self.job.queue_depth
        return outstanding / self.iops


def run_fio(
    ctx: Context,
    machine: Machine,
    devices: Sequence[BlockDevice],
    job: FioJob,
) -> FioResult:
    """Run *job* against every device simultaneously (one fio process per
    device, ``numjobs`` threads each) and report aggregate results."""
    if not devices:
        raise ValueError("run_fio needs at least one device")
    is_write = job.rw == "write"
    flows: List[FluidFlow] = []
    threads = []
    per_device: Dict[str, float] = {}

    for di, dev in enumerate(devices):
        if job.bind_node is not None:
            policy = NumaPolicy.bind(job.bind_node)
        elif hasattr(dev, "lun"):
            # the paper binds each fio process near its LUN's link
            policy = NumaPolicy.bind(dev.lun.link_index % machine.n_nodes)
        else:
            policy = NumaPolicy.default()
        proc = SimProcess(machine, f"fio{di}", cpu_policy=policy, mem_policy=policy)
        if hasattr(dev, "threads_per_lun"):
            dev.threads_per_lun = job.numjobs
        if hasattr(dev, "queue_depth"):
            dev.queue_depth = job.queue_depth
        for k in range(job.numjobs):
            t = proc.spawn_thread()
            threads.append(t)
            spec = dev.bulk_path(is_write, t, job.block_size)
            flow = FluidFlow(
                spec.path,
                size=None,
                cap=spec.cap,
                charges=spec.charges,
                name=f"fio-{dev.name}-j{k}",
            )
            ctx.fluid.start(flow)
            flows.append(flow)

    t0 = ctx.sim.now
    ctx.sim.run(until=t0 + job.runtime)
    ctx.fluid.settle()

    total = 0.0
    for dev, dev_flows in zip(
        devices, [flows[i : i + job.numjobs] for i in range(0, len(flows), job.numjobs)]
    ):
        moved = sum(f.transferred for f in dev_flows)
        per_device[dev.name] = moved
        total += moved
    for f in flows:
        ctx.fluid.stop(f)

    ledger = CpuAccounting("fio")
    for t in threads:
        ledger.add_many(t.accounting.seconds_by_category())

    return FioResult(
        total_bytes=total,
        runtime=job.runtime,
        n_flows=len(flows),
        job=job,
        accounting=ledger,
        per_device_bytes=per_device,
    )
