"""VFS: files, extents, and POSIX-ish operations over a block device.

A :class:`FileSystem` owns a block device, an extent allocator, and a
page cache.  Files are laid out in contiguous extents (sequential
workloads — the paper's — see no fragmentation).  Subclasses (XFS, ext4)
set the per-I/O overhead and the parallel-stream behaviour.

Two access granularities, as everywhere in the library:

* :meth:`FileHandle.read` / :meth:`FileHandle.write` — event-level,
  moving real bytes when the device stores them;
* :meth:`FileSystem.streaming_spec` — the fluid per-byte path of a
  sequential file stream (device path + cache copy + fs overhead),
  composed by applications into end-to-end flows.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path, merge_paths
from repro.sim.context import Context
from repro.sim.engine import Event
from repro.storage.blockdev import BlockDevice, IoRequest
from repro.fs.pagecache import PageCache
from repro.util.validation import check_non_negative, check_positive

__all__ = ["FileSystem", "FileHandle", "O_RDONLY", "O_RDWR", "O_DIRECT"]

O_RDONLY = 0x0
O_RDWR = 0x2
O_DIRECT = 0x4000

#: default page-cache size per mount (front-end hosts have 128 GB; the
#: kernel will happily use a large fraction for cache).
DEFAULT_CACHE_BYTES = 8 << 30


@dataclass
class Extent:
    """A contiguous run of device blocks backing part of a file."""

    file_offset: int
    device_offset: int
    length: int


class Inode:
    """File metadata + extent list."""

    def __init__(self, path: str):
        self.path = path
        self.size = 0
        self.extents: list[Extent] = []

    def map_range(self, offset: int, length: int) -> list[tuple[int, int]]:
        """Translate a file byte range to (device_offset, length) runs."""
        if offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset+length}) beyond EOF {self.size} of {self.path!r}"
            )
        runs = []
        remaining = length
        pos = offset
        for ext in self.extents:
            if remaining == 0:
                break
            end = ext.file_offset + ext.length
            if pos < ext.file_offset or pos >= end:
                continue
            take = min(remaining, end - pos)
            runs.append((ext.device_offset + (pos - ext.file_offset), take))
            pos += take
            remaining -= take
        if remaining:
            raise ValueError(f"unmapped range in {self.path!r} (corrupt extent list)")
        return runs


class FileSystem(abc.ABC):
    """Base filesystem: format, create, open, and the streaming cost model."""

    #: human name, e.g. "xfs"
    fstype = "fs"

    def __init__(
        self,
        ctx: Context,
        device: BlockDevice,
        name: str = "",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ):
        self.ctx = ctx
        self.device = device
        self.name = name or f"{device.name}/{self.fstype}"
        self.cache = PageCache(ctx, cache_bytes, f"{self.name}/cache")
        self._inodes: Dict[str, Inode] = {}
        self._next_free = 0  # simple bump allocator over the device

    # -- overridables -----------------------------------------------------------
    @abc.abstractmethod
    def per_io_cpu(self) -> float:
        """Fixed CPU seconds per I/O (journal/allocation bookkeeping)."""

    @abc.abstractmethod
    def max_parallel_streams(self) -> int:
        """How many streams the on-disk layout serves without serializing."""

    # -- namespace ----------------------------------------------------------------
    def create(self, path: str, size: int) -> Inode:
        """Create a fully-allocated file (fallocate semantics)."""
        check_positive("size", size)
        if path in self._inodes:
            raise FileExistsError(path)
        if self._next_free + size > self.device.capacity_bytes:
            raise OSError(f"no space on {self.name!r} for {path!r} ({size} bytes)")
        inode = Inode(path)
        inode.extents.append(
            Extent(file_offset=0, device_offset=self._next_free, length=size)
        )
        inode.size = size
        self._next_free += size
        self._inodes[path] = inode
        return inode

    def open(self, path: str, flags: int = O_RDONLY) -> "FileHandle":
        """Open an existing entry."""
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundError(path)
        return FileHandle(self, inode, flags)

    def exists(self, path: str) -> bool:
        """True if the path exists."""
        return path in self._inodes

    def listdir(self) -> list[str]:
        """Sorted list of paths."""
        return sorted(self._inodes)

    def stat_size(self, path: str) -> int:
        """Size in bytes of the named file."""
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundError(path)
        return inode.size

    # -- fluid cost model --------------------------------------------------------------
    def streaming_spec(
        self,
        is_write: bool,
        thread: SimThread,
        block_size: int,
        direct: bool = False,
        n_streams: int = 1,
        include_device: bool = True,
    ) -> PathSpec:
        """Per-byte path of one sequential stream through this filesystem.

        ``n_streams`` is the number of concurrent streams the application
        runs against this mount; past :meth:`max_parallel_streams` the
        layout serializes and each stream's cap shrinks proportionally
        (ext4's journal vs XFS's allocation groups).

        ``include_device=False`` returns only the filesystem-level work
        (cache copy + bookkeeping) — used by single-threaded applications
        (GridFTP) that must account the device wait *serially* with their
        own per-byte costs rather than as a pipelined stage.
        """
        check_positive("n_streams", n_streams)
        fs_items = [
            WorkItem("fs bookkeeping", per_op_cpu=self.per_io_cpu(), category="io")
        ]
        fs_items += self.cache.streaming_items(thread, is_write, direct)
        spec = build_thread_path(thread, fs_items, op_size=block_size)
        if include_device:
            dev_spec = self.device.bulk_path(is_write, thread, block_size)
            spec = merge_paths(spec, dev_spec)
        # Journal/allocator serialization binds only buffered I/O: direct
        # I/O into preallocated extents never takes the allocation or
        # journal locks (which is why raw/ext4/XFS are "comparable" for
        # RFTP in §4.3 while GridFTP's buffered writes are not).
        if not direct:
            overcommit = n_streams / self.max_parallel_streams()
            if overcommit > 1.0 and spec.cap is not None:
                spec.cap /= overcommit
        return spec


class FileHandle:
    """An open file: positional read/write via the device (event-level)."""

    def __init__(self, fs: FileSystem, inode: Inode, flags: int):
        self.fs = fs
        self.inode = inode
        self.flags = flags
        self.pos = 0

    @property
    def direct(self) -> bool:
        """True for O_DIRECT handles (page cache bypassed)."""
        return bool(self.flags & O_DIRECT)

    @property
    def path(self) -> str:
        """The file's path."""
        return self.inode.path

    @property
    def size(self) -> int:
        """Size in bytes."""
        return self.inode.size

    def seek(self, pos: int) -> None:
        """Set the file position."""
        check_non_negative("pos", pos)
        self.pos = pos

    def _io(
        self,
        is_write: bool,
        length: int,
        data: Optional[np.ndarray],
        thread: Optional[SimThread],
    ) -> Event:
        if is_write and not (self.flags & O_RDWR):
            raise PermissionError(f"{self.path!r} opened read-only")
        runs = self.inode.map_range(self.pos, length)
        if not self.direct:
            self.fs.cache.access_range(self.pos, length, dirty=is_write)
        done = self.fs.ctx.sim.event(name=f"{self.path}/io")
        self.pos += length

        def go():
            moved = 0
            for dev_off, run_len in runs:
                chunk = None
                if data is not None:
                    chunk = data[moved : moved + run_len]
                req = IoRequest(is_write, offset=dev_off, length=run_len, data=chunk)
                yield self.fs.device.submit(req, thread=thread)
                moved += run_len
            done.succeed(length)

        self.fs.ctx.sim.process(go(), name=f"{self.path}/io")
        return done

    def read(
        self,
        length: int,
        data: Optional[np.ndarray] = None,
        thread: Optional[SimThread] = None,
    ) -> Event:
        """Read *length* bytes at the current position."""
        return self._io(False, length, data, thread)

    def write(
        self,
        data_or_length,
        thread: Optional[SimThread] = None,
    ) -> Event:
        """Write bytes (an array) or a byte count at the current position."""
        if isinstance(data_or_length, (int, np.integer)):
            return self._io(True, int(data_or_length), None, thread)
        data = np.ascontiguousarray(data_or_length, dtype=np.uint8)
        return self._io(True, len(data), data, thread)
