"""Filesystems over block devices: VFS, page cache, XFS- and ext4-like.

The paper's end-to-end runs (§4.3) transfer files through POSIX
filesystems built on the iSER block devices: "we chose XFS [...] since
the XFS file system particularly is efficient for parallel I/O".  GridFTP
additionally suffers the page-cache effect ("without support for direct
I/O, GridFTP suffers the I/O cache effect"), while RFTP uses O_DIRECT.

* :mod:`repro.fs.pagecache` — page cache with hit/miss accounting and the
  buffered-I/O extra copy,
* :mod:`repro.fs.vfs` — file handles, extent allocation, POSIX-ish ops,
* :mod:`repro.fs.xfs` — allocation-group parallelism,
* :mod:`repro.fs.ext4` — journal-serialized baseline.
"""

from repro.fs.ext4 import Ext4FileSystem
from repro.fs.pagecache import PageCache
from repro.fs.vfs import FileHandle, FileSystem, O_DIRECT, O_RDONLY, O_RDWR
from repro.fs.xfs import XfsFileSystem

__all__ = [
    "FileSystem",
    "FileHandle",
    "O_DIRECT",
    "O_RDONLY",
    "O_RDWR",
    "PageCache",
    "XfsFileSystem",
    "Ext4FileSystem",
]
