"""XFS-like filesystem: allocation groups give parallel-I/O scaling.

XFS (Sweeney, USENIX ATC'96) divides the volume into allocation groups
with independent free-space management, so concurrent streams proceed
without contending on one allocator/journal — the property that made the
paper choose it: "the XFS file system particularly is efficient for
parallel I/O" (§4.3).
"""

from __future__ import annotations

from repro.fs.vfs import FileSystem

__all__ = ["XfsFileSystem"]


class XfsFileSystem(FileSystem):
    """XFS over a block device."""

    fstype = "xfs"

    def per_io_cpu(self) -> float:
        """Fixed CPU seconds per I/O (journal/allocation bookkeeping)."""
        return self.ctx.cal.xfs_per_io_cpu

    def max_parallel_streams(self) -> int:
        """Streams served without on-disk serialization."""
        return self.ctx.cal.xfs_allocation_groups
