"""Page cache model.

Buffered (non-direct) I/O costs one extra CPU copy per byte between the
user buffer and the page cache, plus the cache's memory traffic — this is
the "I/O cache effect" that hurts GridFTP in §4.3.  O_DIRECT bypasses the
cache entirely.

Two layers:

* an explicit LRU (:class:`PageCache`) with hit/miss statistics, used by
  event-level file I/O and by the iperf cache-effect ablation;
* :meth:`PageCache.streaming_items` — the fluid-level cost of a buffered
  stream over a working set much larger than the cache (every access
  misses; every page is copied once).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.kernel.pages import PAGE_SIZE
from repro.kernel.process import SimThread
from repro.kernel.work import WorkItem
from repro.sim.context import Context
from repro.util.validation import check_positive

__all__ = ["PageCache"]


class PageCache:
    """An LRU page cache for one filesystem instance."""

    def __init__(self, ctx: Context, capacity_bytes: int, name: str = "pagecache"):
        check_positive("capacity_bytes", capacity_bytes)
        self.ctx = ctx
        self.name = name
        self.capacity_pages = max(1, capacity_bytes // PAGE_SIZE)
        self._lru: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        self.stats = {"hits": 0, "misses": 0, "evictions": 0, "writebacks": 0}

    # -- explicit page operations ------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru)

    def access(self, page: int, dirty: bool = False) -> bool:
        """Touch one page; returns True on hit.  Evicts LRU as needed."""
        hit = page in self._lru
        if hit:
            self._lru[page] = self._lru[page] or dirty
            self._lru.move_to_end(page)
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
            self._lru[page] = dirty
            while len(self._lru) > self.capacity_pages:
                _evicted, was_dirty = self._lru.popitem(last=False)
                self.stats["evictions"] += 1
                if was_dirty:
                    self.stats["writebacks"] += 1
        return hit

    def access_range(self, offset: int, length: int, dirty: bool = False) -> Dict[str, int]:
        """Touch a byte range; returns {'hits': n, 'misses': m} for it."""
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        hits = misses = 0
        for page in range(first, last + 1):
            if self.access(page, dirty=dirty):
                hits += 1
            else:
                misses += 1
        return {"hits": hits, "misses": misses}

    def hit_rate(self) -> float:
        """Fraction of accesses served from cache."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def drop(self) -> None:
        """echo 3 > /proc/sys/vm/drop_caches"""
        self._lru.clear()

    # -- fluid-level cost ----------------------------------------------------------
    def streaming_items(
        self, thread: SimThread, is_write: bool, direct: bool
    ) -> List[WorkItem]:
        """Per-byte cost items of streaming file I/O through this cache.

        With ``direct=True`` (O_DIRECT) the list is empty — DMA goes
        straight to the user buffer.  Buffered I/O pays one CPU copy and
        its memory traffic; page-cache pages live wherever the faulting
        thread runs (first-touch).
        """
        if direct:
            return []
        cal = self.ctx.cal
        exec_fracs = thread.execution_fractions()
        return [
            WorkItem(
                "pagecache copy",
                cpu_per_byte=1.0 / cal.pagecache_copy_rate,
                category="copy",
                mem_traffic=(
                    WorkItem.mem(exec_fracs, 1.0),  # read one side
                    WorkItem.mem(exec_fracs, 2.0),  # write-allocate the other
                ),
            )
        ]
