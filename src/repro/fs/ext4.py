"""ext4-like filesystem: single-journal baseline.

ext4's shared journal (JBD2) serializes metadata commits, which caps the
number of write streams the layout serves at full speed — the reason the
paper prefers XFS for parallel I/O while noting overall throughput is
"comparable" (§4.3).
"""

from __future__ import annotations

from repro.fs.vfs import FileSystem

__all__ = ["Ext4FileSystem"]


class Ext4FileSystem(FileSystem):
    """ext4 over a block device."""

    fstype = "ext4"

    def per_io_cpu(self) -> float:
        """Fixed CPU seconds per I/O (journal/allocation bookkeeping)."""
        return self.ctx.cal.ext4_per_io_cpu

    def max_parallel_streams(self) -> int:
        """Streams served without on-disk serialization."""
        return self.ctx.cal.ext4_concurrency
