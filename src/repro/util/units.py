"""Unit constants and conversion helpers.

Conventions used across the library:

* **time** is in seconds (floats),
* **sizes** are in bytes (ints where exact, floats in fluid rate math),
* **rates** are in bytes/second,
* network link speeds quoted in the paper (40 Gbps RoCE, 56 Gbps IB FDR)
  are *bits* per second and must be converted with :func:`gbps`.

Decimal (KB/MB/GB) and binary (KiB/MiB/GiB) prefixes are both provided;
storage sizes in the paper ("50 gigabytes" LUNs) are decimal, while block
sizes used by fio/RFTP ("4 megabytes") follow the binary convention of
those tools.
"""

from __future__ import annotations

# --- decimal sizes -------------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# --- binary sizes --------------------------------------------------------
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

# --- rates (bytes/second) ------------------------------------------------
Mbps = 1_000_000 / 8.0  #: one megabit per second, in bytes/second
Gbps = 1_000_000_000 / 8.0  #: one gigabit per second, in bytes/second


def gbps(x: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return x * Gbps


def mbps(x: float) -> float:
    """Convert megabits/second to bytes/second."""
    return x * Mbps


def bytes_to_bits(n: float) -> float:
    """Bytes to bits."""
    return n * 8.0


def bits_to_bytes(n: float) -> float:
    """Bits to bytes."""
    return n / 8.0


def to_gbps(rate_bytes_per_s: float) -> float:
    """Convert a bytes/second rate to gigabits/second."""
    return rate_bytes_per_s * 8.0 / 1e9


def fmt_bytes(n: float) -> str:
    """Human-readable size, binary prefixes (matches fio/iperf output)."""
    n = float(n)
    for unit, div in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(rate_bytes_per_s: float) -> str:
    """Human-readable rate in Gbps/Mbps, the paper's convention."""
    bits = rate_bytes_per_s * 8.0
    if abs(bits) >= 1e9:
        return f"{bits / 1e9:.2f} Gbps"
    if abs(bits) >= 1e6:
        return f"{bits / 1e6:.2f} Mbps"
    return f"{bits / 1e3:.2f} Kbps"


def fmt_seconds(t: float) -> str:
    """Human-readable duration."""
    if t >= 60.0:
        m, s = divmod(t, 60.0)
        return f"{int(m)}m{s:04.1f}s"
    if t >= 1.0:
        return f"{t:.3f}s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f}ms"
    return f"{t * 1e6:.1f}us"
