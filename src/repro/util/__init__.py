"""Shared utilities: unit conversions, table rendering, validation."""

from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    Gbps,
    Mbps,
    bits_to_bytes,
    bytes_to_bits,
    fmt_bytes,
    fmt_rate,
    fmt_seconds,
    gbps,
    mbps,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "Gbps",
    "Mbps",
    "gbps",
    "mbps",
    "bits_to_bytes",
    "bytes_to_bits",
    "fmt_bytes",
    "fmt_rate",
    "fmt_seconds",
]
