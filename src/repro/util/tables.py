"""Fixed-width text table rendering for benchmark reports.

The benchmark harness prints paper-vs-measured tables; this module keeps
the formatting in one place so every figure's output reads the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A simple fixed-width table.

    >>> t = Table(["name", "Gbps"])
    >>> t.add_row(["RFTP", 91.0])
    >>> t.add_row(["GridFTP", 29.0])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, row: Iterable[Any]) -> None:
        """Append one data row."""
        cells = [_cell(v) for v in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render to a fixed-width text block."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt_line(list(self.headers)))
        lines.append(sep)
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def comparison_table(
    title: str,
    rows: Iterable[tuple[str, Any, Any]],
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> Table:
    """Build a three-column *metric / paper / measured* table."""
    t = Table(["metric", paper_label, measured_label], title=title)
    for name, paper, measured in rows:
        t.add_row([name, paper, measured])
    return t
