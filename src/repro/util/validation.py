"""Argument-validation helpers.

Raising early with a precise message is cheaper than debugging a fluid
simulation that silently produced NaNs three layers up.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

T = TypeVar("T")


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *cond* holds."""
    if not cond:
        raise ValueError(message)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number > 0 and return it."""
    if not (value > 0):  # also rejects NaN
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if value != value or value in (float("inf"),):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that *value* is a finite number >= 0 and return it."""
    if not (value >= 0):
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    if value != value or value == float("inf"):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in [0, 1] and return it."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_index(name: str, value: int, length: int) -> int:
    """Validate that *value* is a valid index into a sequence of *length*."""
    if not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not (0 <= value < length):
        raise IndexError(f"{name}={value} out of range [0, {length})")
    return value


def check_choice(name: str, value: T, choices: Iterable[T]) -> T:
    """Validate that *value* is one of *choices* and return it."""
    allowed = tuple(choices)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Validate that *value* is a positive power of two and return it."""
    if not isinstance(value, int) or value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
