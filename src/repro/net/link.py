"""Duplex links and switches.

A :class:`Link` cables two NICs together (directly or through a switch
port) and owns one fluid resource per direction, sized to the slower
endpoint's usable data rate.  Link fluid resources are tagged
``kind="link"`` so the TCP model can recognise network (loss-capable)
bottlenecks as opposed to host-side ones.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.nic import Nic
from repro.sim.fluid import FluidResource
from repro.util.validation import check_non_negative

__all__ = ["CutLinkStub", "Link", "Switch", "connect"]


class CutLinkStub:
    """One cell's local stand-in for a cut WAN/aggregation link.

    Topology sharding (:mod:`repro.sim.shard`) cuts the fabric along
    its wide-area links; inside a cell the cut link appears as this
    stub — a single fluid resource whose capacity is the cell's
    currently *granted* share of the real link, stepped per epoch by
    the boundary-exchange protocol via :meth:`set_capacity`.  Tagged
    ``kind="link"`` like a real link direction, so loss-capable
    bottleneck classification is unchanged under sharding.
    """

    def __init__(self, ctx, name: str, capacity: float):
        check_non_negative("capacity", capacity)
        self.ctx = ctx
        self.name = name
        self.resource = FluidResource(ctx.fluid, capacity, name)
        self.resource.kind = "link"  # type: ignore[attr-defined]

    @property
    def capacity(self) -> float:
        """The currently granted share in bytes/second."""
        return self.resource.capacity

    def set_capacity(self, capacity: float) -> None:
        """Re-grant the stub (settles and rebalances, closing a rate epoch)."""
        self.resource.set_capacity(capacity)

    def __repr__(self) -> str:
        return f"<CutLinkStub {self.name!r} grant={self.capacity:.3g} B/s>"


class Link:
    """A full-duplex point-to-point link between two NICs."""

    def __init__(
        self,
        a: Nic,
        b: Nic,
        delay: float = 83e-6,
        name: str = "",
        rate_override: Optional[float] = None,
    ):
        check_non_negative("delay", delay)
        if a is b:
            raise ValueError("cannot cable a NIC to itself")
        if a.link is not None or b.link is not None:
            raise ValueError("one of the NICs is already cabled")
        self.a = a
        self.b = b
        self.delay = delay
        self.name = name or f"{a.name}<->{b.name}"
        rate = (
            rate_override
            if rate_override is not None
            else min(a.data_rate(), b.data_rate())
        )
        ctx = a.machine.ctx
        self._nominal_rate = rate
        self._failed = False
        self._degrade_fraction = 1.0
        self._ab = FluidResource(ctx.fluid, rate, f"{self.name}/a->b")
        self._ba = FluidResource(ctx.fluid, rate, f"{self.name}/b->a")
        self._ab.kind = "link"  # type: ignore[attr-defined]
        self._ba.kind = "link"  # type: ignore[attr-defined]
        a.link = self
        b.link = self
        if ctx.faults is not None:
            ctx.faults.add_link(self)

    @property
    def rate(self) -> float:
        """Current usable rate in bytes/second."""
        return self._ab.capacity

    def direction(self, src: Nic) -> FluidResource:
        """The fluid resource carrying traffic transmitted by *src*."""
        if src is self.a:
            return self._ab
        if src is self.b:
            return self._ba
        raise ValueError(f"{src!r} is not an endpoint of {self.name!r}")

    def peer(self, nic: Nic) -> Nic:
        """The NIC on the other end."""
        if nic is self.a:
            return self.b
        if nic is self.b:
            return self.a
        raise ValueError(f"{nic!r} is not an endpoint of {self.name!r}")

    @property
    def rtt(self) -> float:
        """Round-trip propagation time."""
        return 2.0 * self.delay

    # -- fault injection ---------------------------------------------------------
    @property
    def failed(self) -> bool:
        """True while the link is down."""
        return self._failed

    def _set_rate(self, rate: float) -> None:
        # set_capacity settles the scheduler before mutating and
        # rebalances after, so every transition closes a rate epoch.
        self._ab.set_capacity(rate)
        self._ba.set_capacity(rate)

    def fail(self) -> None:
        """Take the link down (cable pull / port flap); idempotent.

        In-flight fluid traffic stalls at zero rate; flows resume when
        :meth:`restore` brings the link back.
        """
        if self._failed:
            return
        self._failed = True
        self._set_rate(0.0)

    def restore(self) -> None:
        """Bring a failed link back up (degradation, if any, persists).

        On a link that is *not* failed this clears any degradation,
        returning it to the nominal rate.
        """
        if not self._failed:
            self._degrade_fraction = 1.0
        self._failed = False
        self._set_rate(self._nominal_rate * self._degrade_fraction)

    def degrade(self, fraction: float) -> None:
        """Clamp the link to *fraction* of nominal (e.g. FEC storms).

        Composable with a ``fail()``/``restore()`` cycle: degrading a
        failed link keeps it dark now and takes effect on restore;
        ``degrade(1.0)`` lifts the degradation.
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self._degrade_fraction = fraction
        if not self._failed:
            self._set_rate(self._nominal_rate * fraction)

    def __repr__(self) -> str:
        return f"<Link {self.name!r} rate={self.rate:.3g} B/s delay={self.delay:g}s>"


def connect(a: Nic, b: Nic, delay: float = 83e-6, name: str = "") -> Link:
    """Cable two NICs together (LAN default delay gives the paper's
    0.166 ms RTT)."""
    return Link(a, b, delay=delay, name=name)


class Switch:
    """A non-blocking switch with an optional backplane capacity bound.

    The paper's Mellanox FDR switch is non-blocking for two links; the
    backplane resource exists so over-subscription scenarios can be
    modelled (set ``backplane`` lower than the sum of port rates).
    """

    def __init__(self, ctx, name: str, backplane: Optional[float] = None):
        self.ctx = ctx
        self.name = name
        self.links: list[Link] = []
        self.backplane: Optional[FluidResource] = None
        if backplane is not None:
            check_non_negative("backplane", backplane)
            self.backplane = FluidResource(ctx.fluid, backplane, f"{name}/backplane")
            self.backplane.kind = "link"  # type: ignore[attr-defined]

    def attach(self, link: Link) -> None:
        """Register a link with this switch."""
        self.links.append(link)

    def extra_path(self) -> list[tuple[FluidResource, float]]:
        """Resources a flow through this switch must additionally cross."""
        if self.backplane is None:
            return []
        return [(self.backplane, 1.0)]
