"""Network layer: links, framing, topologies, and flow-level TCP.

* :mod:`repro.net.link` — duplex links cabling two NICs, with per-direction
  fluid capacity and propagation delay.
* :mod:`repro.net.ethernet` — first-principles framing efficiency for
  Ethernet/RoCE and InfiniBand MTUs.
* :mod:`repro.net.topology` — LAN and WAN testbed wiring helpers.
* :mod:`repro.net.tcp` — fluid cubic TCP with copy/kernel/interrupt costs.
"""

from repro.net.ethernet import ib_payload_efficiency, roce_payload_efficiency
from repro.net.link import Link, Switch, connect
from repro.net.tcp import TcpConnection, TcpStats

__all__ = [
    "Link",
    "Switch",
    "connect",
    "TcpConnection",
    "TcpStats",
    "roce_payload_efficiency",
    "ib_payload_efficiency",
]
