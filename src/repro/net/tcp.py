"""Flow-level TCP with cubic congestion control and host-side costs.

The model captures what the paper measures about TCP (Figs. 4, 9, 10):

* **two copies per end** (user<->kernel), charged as CPU time *and* as
  memory-system traffic (write-allocate makes a copy cost ~3 bytes of
  memory bandwidth per payload byte);
* **kernel protocol processing** per byte (calibrated from Fig. 4's 311%
  CPU at 39 Gbps), scaled by per-packet work (MTU);
* **interrupt/softirq** processing placed on the IRQ node;
* **cubic windows** (RFC 8312): the window only binds on long-RTT paths
  (the ANI WAN's 95 ms / ~500 MB BDP); on the 0.166 ms LAN it is
  irrelevant and host costs dominate — exactly the paper's observation
  that "the bottleneck of an end-to-end path is host processing
  operations, rather than network bandwidth".

Loss is modelled as queue overflow: a loss event fires when the
connection wants to send faster than its fair share *and* the binding
constraint is a network link (host-bound senders are self-clocked by
socket backpressure and do not overflow queues).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.nic import Nic
from repro.kernel.interrupts import irq_path
from repro.kernel.pages import RegionPlacement
from repro.kernel.process import SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path, merge_paths
from repro.net.link import Link
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow, FluidResource
from repro.sim.trace import TimeSeries

__all__ = ["TcpEndpoint", "TcpConnection", "TcpStats"]


@dataclass
class TcpEndpoint:
    """One side of a connection: the thread, its NIC and its user buffer."""

    thread: SimThread
    nic: Nic
    buffer: RegionPlacement

    def buffer_fractions(self) -> Dict[int, float]:
        """NUMA placement of the endpoint's user buffer."""
        return self.buffer.node_fractions()


@dataclass
class TcpStats:
    """Observable connection state."""

    loss_events: int = 0
    cwnd_bytes: float = 0.0
    cwnd_series: TimeSeries = field(default_factory=lambda: TimeSeries("cwnd"))


def _weighted_dma(
    nic: Nic, fractions: Dict[int, float], write: bool
) -> list[tuple[FluidResource, float]]:
    """DMA path averaged over a buffer's NUMA placement."""
    out: list[tuple[FluidResource, float]] = []
    for node, f in fractions.items():
        if f <= 0:
            continue
        path = nic.dma_write_path(node) if write else nic.dma_read_path(node)
        out.extend((r, w * f) for r, w in path)
    return out


def _copy_cpu_per_byte(cal, remote_fraction: float) -> float:
    """CPU seconds/byte of one user<->kernel copy given NUMA remoteness."""
    return (
        remote_fraction / cal.memcpy_rate_remote
        + (1.0 - remote_fraction) / cal.memcpy_rate_local
    )


def _remote_fraction(exec_fracs: Dict[int, float], mem_fracs: Dict[int, float]) -> float:
    """Probability an access from *exec_fracs* lands on a different node."""
    return sum(
        ef * mf
        for en, ef in exec_fracs.items()
        for mn, mf in mem_fracs.items()
        if en != mn
    )


class TcpConnection:
    """One TCP connection between two endpoints over a link."""

    def __init__(
        self,
        ctx: Context,
        name: str,
        sender: TcpEndpoint,
        receiver: TcpEndpoint,
        link: Optional[Link] = None,
        mss: Optional[int] = None,
        tuned_irq: bool = False,
        app_load_item: Optional[WorkItem] = None,
        app_offload_item: Optional[WorkItem] = None,
        sender_buffer_cached: bool = False,
    ):
        self.ctx = ctx
        self.name = name
        self.sender = sender
        self.receiver = receiver
        self.link = link if link is not None else sender.nic.link
        if self.link is None:
            raise ValueError("sender NIC is not cabled and no link given")
        self.tuned_irq = tuned_irq
        self.mss = mss if mss is not None else max(536, sender.nic.mtu - 52)
        self.app_load_item = app_load_item
        self.app_offload_item = app_offload_item
        #: iperf's default small buffer stays LLC-resident: the copy's
        #: read side never touches DRAM (the §2.3 cache effect).
        self.sender_buffer_cached = sender_buffer_cached
        self.stats = TcpStats()
        self.flow: Optional[FluidFlow] = None
        self._cwnd = ctx.cal.tcp_init_cwnd_bytes
        self._ssthresh = math.inf
        self._w_max = self._cwnd
        self._epoch_start: Optional[float] = None
        self._ticker = None

    # -- path construction -------------------------------------------------------
    def _sender_spec(self) -> PathSpec:
        cal = self.ctx.cal
        ep = self.sender
        exec_fracs = ep.thread.execution_fractions()
        buf_fracs = ep.buffer_fractions()
        rf = _remote_fraction(exec_fracs, buf_fracs)
        mtu_factor = 9000.0 / ep.nic.mtu

        if self.sender_buffer_cached:
            copy_traffic = (WorkItem.mem_local(cal.tcp_copy_write_traffic),)
            copy_cpu = 1.0 / cal.memcpy_rate_local  # LLC-speed source
        else:
            copy_traffic = (
                # read the (cache-cold) user buffer
                WorkItem.mem(buf_fracs, cal.tcp_copy_read_traffic),
                # write-allocate per-CPU skbs (always execution-local)
                WorkItem.mem_local(cal.tcp_copy_write_traffic),
            )
            copy_cpu = _copy_cpu_per_byte(cal, rf)
        items = [
            WorkItem(
                "user send loop",
                cpu_per_byte=1.0 / cal.tcp_user_rate,
                category="usr_proto",
            ),
            WorkItem(
                "copy user->kernel",
                cpu_per_byte=copy_cpu,
                category="copy",
                mem_traffic=copy_traffic,
            ),
            WorkItem(
                "kernel tcp tx",
                cpu_per_byte=mtu_factor / cal.tcp_kernel_rate,
                category="sys_proto",
            ),
        ]
        if self.app_load_item is not None:
            items.insert(0, self.app_load_item)
        spec = build_thread_path(ep.thread, items)
        # NIC DMA-reads the kernel socket buffer (lives on the exec nodes).
        spec.extend(_weighted_dma(ep.nic, exec_fracs, write=False))
        spec = merge_paths(
            spec,
            irq_path(
                ep.nic, ep.thread.accounting, self.tuned_irq, 2 * cal.tcp_interrupt_rate
            ),
        )
        return spec

    def _receiver_spec(self) -> PathSpec:
        cal = self.ctx.cal
        ep = self.receiver
        exec_fracs = ep.thread.execution_fractions()
        buf_fracs = ep.buffer_fractions()
        rf = _remote_fraction(exec_fracs, buf_fracs)
        mtu_factor = 9000.0 / ep.nic.mtu

        # rx kernel buffers live on the IRQ node (NIC-local when tuned,
        # roaming otherwise).
        irq_fracs = (
            {ep.nic.node: 1.0}
            if self.tuned_irq
            else {n: 1.0 / ep.nic.machine.n_nodes for n in range(ep.nic.machine.n_nodes)}
        )
        items = [
            WorkItem(
                "kernel tcp rx",
                cpu_per_byte=mtu_factor / cal.tcp_kernel_rate,
                category="sys_proto",
            ),
            WorkItem(
                "copy kernel->user",
                cpu_per_byte=_copy_cpu_per_byte(cal, rf),
                category="copy",
                mem_traffic=(
                    # read kernel rx buffers (live on the IRQ node)
                    WorkItem.mem(irq_fracs, cal.tcp_copy_read_traffic),
                    # write-allocate the user buffer
                    WorkItem.mem(buf_fracs, cal.tcp_copy_write_traffic),
                ),
            ),
            WorkItem(
                "user recv loop",
                cpu_per_byte=1.0 / cal.tcp_user_rate,
                category="usr_proto",
            ),
        ]
        if self.app_offload_item is not None:
            items.append(self.app_offload_item)
        spec = build_thread_path(ep.thread, items)
        spec.extend(_weighted_dma(ep.nic, irq_fracs, write=True))
        spec = merge_paths(
            spec,
            irq_path(ep.nic, ep.thread.accounting, self.tuned_irq, cal.tcp_interrupt_rate),
        )
        return spec

    def build_path(self) -> PathSpec:
        """Compose the full fluid path of this connection."""
        spec = merge_paths(self._sender_spec(), self._receiver_spec())
        spec.path.append((self.link.direction(self.sender.nic), 1.0))
        return spec

    # -- lifecycle ------------------------------------------------------------------
    def open(self, size: Optional[float] = None) -> FluidFlow:
        """Start the connection; returns the underlying fluid flow."""
        if self.flow is not None:
            raise RuntimeError(f"connection {self.name!r} already open")
        spec = self.build_path()
        self._serial_cap = spec.cap if spec.cap is not None else math.inf
        rtt = self.rtt
        cap = min(self._serial_cap, self._cwnd / rtt)
        self.flow = FluidFlow(
            spec.path, size=size, cap=cap, charges=spec.charges, name=self.name
        )
        self.ctx.fluid.start(self.flow)
        self._epoch_start = self.ctx.sim.now
        self._ticker = self.ctx.sim.process(self._window_process(), name=f"{self.name}.cc")
        return self.flow

    def close(self) -> float:
        """Stop an open-ended connection; returns bytes transferred."""
        if self.flow is None:
            raise RuntimeError(f"connection {self.name!r} not open")
        if self._ticker is not None and self._ticker.is_alive:
            self._ticker.interrupt("close")
        moved = self.flow.transferred
        if self.flow._active:
            moved = self.ctx.fluid.stop(self.flow)
        return moved

    @property
    def rtt(self) -> float:
        """Round-trip time in seconds."""
        return max(self.link.rtt, 1e-5)

    @property
    def cwnd(self) -> float:
        """Current congestion window in bytes."""
        return self._cwnd

    # -- congestion control ------------------------------------------------------------
    def _cubic_window(self, t_since_epoch: float) -> float:
        """RFC 8312 window in bytes at *t* since the last loss."""
        cal = self.ctx.cal
        w_max_seg = self._w_max / self.mss
        k = (w_max_seg * (1.0 - cal.cubic_beta) / cal.cubic_c) ** (1.0 / 3.0)
        w_seg = cal.cubic_c * (t_since_epoch - k) ** 3 + w_max_seg
        return max(self.mss * 2.0, w_seg * self.mss)

    def _binding_is_link(self) -> bool:
        """True if a saturated network link is what limits this flow."""
        assert self.flow is not None
        for res in self.flow._weights:
            if getattr(res, "kind", None) == "link":
                if res.load >= res.capacity * 0.999:
                    return True
        return False

    def _window_process(self):
        from repro.sim.engine import Interrupt

        sim = self.ctx.sim
        cal = self.ctx.cal
        try:
            while self.flow is not None and self.flow._active:
                rtt = self.rtt
                window_rate = self._cwnd / rtt
                # Adaptive tick: once the window stops being the binding
                # constraint, check only occasionally (keeps LAN runs cheap).
                window_matters = window_rate < 1.5 * self._serial_cap or (
                    window_rate < 2.0 * self.link.rate
                )
                tick = rtt if window_matters else max(rtt, 0.25)
                yield sim.timeout(tick)
                if self.flow is None or not self.flow._active:
                    break
                # flush(): the window controller needs *settled* rates,
                # including any rebalance the coalescer deferred this
                # instant (a plain settle under an eager scheduler).
                self.ctx.fluid.flush()
                rate = self.flow.rate
                wants_more = rate < window_rate * 0.98
                if not wants_more and self._binding_is_link():
                    # queue overflow -> multiplicative decrease
                    self.stats.loss_events += 1
                    self._w_max = self._cwnd
                    self._cwnd = max(2 * self.mss, self._cwnd * cal.cubic_beta)
                    self._ssthresh = self._cwnd
                    self._epoch_start = sim.now
                elif self._cwnd < self._ssthresh:
                    self._cwnd = min(self._cwnd * 2.0, cal.tcp_max_window_bytes)
                else:
                    t = sim.now - (self._epoch_start or sim.now)
                    self._cwnd = min(
                        self._cubic_window(t), cal.tcp_max_window_bytes
                    )
                self.stats.cwnd_bytes = self._cwnd
                self.stats.cwnd_series.record(sim.now, self._cwnd)
                new_cap = min(self._serial_cap, self._cwnd / rtt)
                if self.flow._active and abs(new_cap - (self.flow.cap or 0)) > 1e-6 * new_cap:
                    self.ctx.fluid.set_cap(self.flow, new_cap)
        except Interrupt:
            return
