"""Testbed wiring: the paper's LAN and WAN network layouts.

* :func:`wire_frontend_lan` — three RoCE QDR links between the RFTP
  client and server hosts (Fig. 5, bottom), 0.166 ms RTT.
* :func:`wire_san` — two IB FDR links between an iSER initiator host
  and its storage target through the FDR switch (Fig. 5, top),
  0.144 ms RTT.
* :func:`wire_wan` — the DOE ANI 40 Gbps RoCE loop, NERSC -> ANL ->
  NERSC, 4000 miles, 95 ms RTT (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.net.link import Link, Switch, connect
from repro.sim.context import Context

__all__ = ["wire_frontend_lan", "wire_san", "wire_wan", "SanWiring"]

#: One-way delays matching Table 1 RTTs.
LAN_ROCE_DELAY = 0.166e-3 / 2
LAN_IB_DELAY = 0.144e-3 / 2
WAN_DELAY = 95e-3 / 2


def _nics(machine: Machine, kind: NicKind) -> list[Nic]:
    return [
        slot.device
        for slot in machine.pcie_slots
        if slot.device is not None and slot.device.kind is kind
    ]


def wire_frontend_lan(client: Machine, server: Machine) -> list[Link]:
    """Cable each of the client's RoCE NICs to the server's (pairwise)."""
    c_nics = _nics(client, NicKind.ROCE_QDR)
    s_nics = _nics(server, NicKind.ROCE_QDR)
    if len(c_nics) != len(s_nics):
        raise ValueError(
            f"RoCE NIC count mismatch: {len(c_nics)} vs {len(s_nics)}"
        )
    return [
        connect(c, s, delay=LAN_ROCE_DELAY, name=f"roce{i}")
        for i, (c, s) in enumerate(zip(c_nics, s_nics))
    ]


@dataclass
class SanWiring:
    """The back-end SAN fabric between one initiator and one target."""

    switch: Switch
    links: list[Link]


def wire_san(ctx: Context, initiator: Machine, target: Machine) -> SanWiring:
    """Cable the initiator's IB FDR NICs to the target's via the switch."""
    i_nics = _nics(initiator, NicKind.IB_FDR)
    t_nics = _nics(target, NicKind.IB_FDR)
    if len(i_nics) != len(t_nics):
        raise ValueError(
            f"IB NIC count mismatch: {len(i_nics)} vs {len(t_nics)}"
        )
    switch = Switch(ctx, f"fdr-switch:{initiator.name}-{target.name}")
    links = [
        connect(a, b, delay=LAN_IB_DELAY, name=f"ib{i}")
        for i, (a, b) in enumerate(zip(i_nics, t_nics))
    ]
    for link in links:
        switch.attach(link)
    return SanWiring(switch=switch, links=links)


def wire_wan(sender: Machine, receiver: Machine) -> Link:
    """The ANI 4000-mile RoCE loop between the two WAN hosts."""
    s_nics = _nics(sender, NicKind.ROCE_QDR)
    r_nics = _nics(receiver, NicKind.ROCE_QDR)
    if not s_nics or not r_nics:
        raise ValueError("WAN hosts need one RoCE NIC each")
    return connect(s_nics[0], r_nics[0], delay=WAN_DELAY, name="ani-loop")
