"""Framing efficiency from first principles.

The fraction of a link's line rate available to upper-layer payload
depends on per-frame overhead.  For RoCE (RDMA over Converged Ethernet,
v1 framing as deployed on the paper's testbed):

====================  =======
field                 bytes
====================  =======
preamble + SFD        8
Ethernet header       14
(no VLAN on testbed)
GRH/IB transport      40   (RoCEv1: GRH 40 after ethertype)
BTH                   12
payload               <= MTU - headers
ICRC + FCS            8
inter-frame gap       12
====================  =======

InfiniBand FDR additionally pays 64/66b encoding (the quoted 56 Gbps is
the signalling rate; 54.24 Gbps is available to the link layer), with a
4 KiB MTU and small LRH/BTH/CRC overheads.

These functions are used to validate the calibrated efficiency constants
(they should agree within a percent) and by the NIC model for non-default
MTUs.
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = [
    "roce_payload_efficiency",
    "ib_payload_efficiency",
    "ETHERNET_OVERHEAD",
    "ROCE_HEADERS",
]

#: Wire overhead per Ethernet frame outside the MTU: preamble+SFD (8),
#: FCS (4), inter-frame gap (12), Ethernet header (14).
ETHERNET_OVERHEAD = 8 + 4 + 12 + 14

#: RoCE headers carried inside the MTU: GRH (40) + BTH (12) + ICRC (4).
ROCE_HEADERS = 40 + 12 + 4

#: InfiniBand link-layer per-packet overhead: LRH(8)+GRH(0 local)+BTH(12)
#: +VCRC/ICRC(6).
IB_HEADERS = 8 + 12 + 6

#: 64b/66b encoding efficiency (FDR, 10GBASE-R style).
ENCODING_64B66B = 64.0 / 66.0


def roce_payload_efficiency(mtu: int) -> float:
    """Payload bytes per line-rate byte for RoCE at the given MTU."""
    check_positive("mtu", mtu)
    if mtu <= ROCE_HEADERS:
        raise ValueError(f"mtu {mtu} too small for RoCE headers")
    payload = mtu - ROCE_HEADERS
    wire = mtu + ETHERNET_OVERHEAD
    return payload / wire


def ib_payload_efficiency(mtu: int = 4096) -> float:
    """Payload bytes per signalling-rate byte for InfiniBand FDR.

    Includes 64/66b encoding plus link headers at the given IB MTU
    (the paper's ``MTU 65520`` is the IPoIB interface MTU; the wire MTU
    of the HCA is 4096).
    """
    check_positive("mtu", mtu)
    if mtu <= IB_HEADERS:
        raise ValueError(f"mtu {mtu} too small for IB headers")
    payload = mtu - IB_HEADERS
    wire = mtu
    return ENCODING_64B66B * payload / wire
