"""Zero-copy buffer pools.

RDMA applications pre-register a fixed arena and recycle fixed-size
buffers out of it (registration is expensive; RFTP does exactly this).
:class:`BufferPool` models that: one NumPy arena, fixed-size slots, and
:class:`PooledBuffer` views handed out without copying.  Double-free and
use-after-free are detected — the bugs that actually bite RDMA code.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.validation import check_positive

__all__ = ["BufferPool", "PooledBuffer"]


class PooledBuffer:
    """A slot checked out of a :class:`BufferPool` (a view, not a copy)."""

    __slots__ = ("pool", "index", "_generation")

    def __init__(self, pool: "BufferPool", index: int, generation: int):
        self.pool = pool
        self.index = index
        self._generation = generation

    @property
    def valid(self) -> bool:
        """True while the underlying resource is still live."""
        return self.pool._generations[self.index] == self._generation

    @property
    def view(self) -> np.ndarray:
        """The backing bytes (uint8 view into the arena; zero-copy)."""
        if not self.valid:
            raise RuntimeError(
                f"use-after-free: slot {self.index} was returned to the pool"
            )
        start = self.index * self.pool.buffer_size
        return self.pool.arena[start : start + self.pool.buffer_size]

    def fill(self, data: np.ndarray) -> None:
        """Copy *data* into the slot (the one legitimate copy: ingest)."""
        if len(data) > self.pool.buffer_size:
            raise ValueError(
                f"data of {len(data)} bytes exceeds slot size {self.pool.buffer_size}"
            )
        self.view[: len(data)] = data

    def release(self) -> None:
        """Return the slot to the pool."""
        self.pool._release(self)


class BufferPool:
    """A registered arena divided into equal recycled slots."""

    def __init__(self, n_buffers: int, buffer_size: int):
        check_positive("n_buffers", n_buffers)
        check_positive("buffer_size", buffer_size)
        self.n_buffers = n_buffers
        self.buffer_size = buffer_size
        self.arena = np.zeros(n_buffers * buffer_size, dtype=np.uint8)
        self._free: list[int] = list(range(n_buffers - 1, -1, -1))
        self._generations = [0] * n_buffers

    @property
    def free_count(self) -> int:
        """Number of free slots."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Number of checked-out slots."""
        return self.n_buffers - len(self._free)

    def acquire(self) -> Optional[PooledBuffer]:
        """Check out a slot, or None if the pool is exhausted."""
        if not self._free:
            return None
        idx = self._free.pop()
        return PooledBuffer(self, idx, self._generations[idx])

    def _release(self, buf: PooledBuffer) -> None:
        if self._generations[buf.index] != buf._generation:
            raise RuntimeError(f"double free of slot {buf.index}")
        self._generations[buf.index] += 1
        self._free.append(buf.index)

    def __repr__(self) -> str:
        return (
            f"<BufferPool {self.in_use}/{self.n_buffers} in use, "
            f"{self.buffer_size} B each>"
        )
