"""Streaming integrity verification.

End-to-end tests hash payloads on both sides of a transfer; a transfer
system that reorders, truncates or corrupts blocks fails loudly.  The
digest is incremental so gigabyte streams never need materializing.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np

__all__ = ["StreamingDigest", "checksum", "verify_equal"]


class StreamingDigest:
    """Incremental blake2b over a byte stream (order-sensitive)."""

    def __init__(self):
        self._h = hashlib.blake2b(digest_size=16)
        self.total_bytes = 0

    def update(self, chunk: np.ndarray) -> "StreamingDigest":
        """Feed a chunk into the digest; returns self for chaining."""
        arr = np.ascontiguousarray(chunk, dtype=np.uint8)
        self._h.update(arr.data)
        self.total_bytes += len(arr)
        return self

    def hexdigest(self) -> str:
        """The digest so far, as a hex string."""
        return self._h.hexdigest()


def checksum(data: np.ndarray) -> int:
    """Fast one-shot crc32 (RFTP block checksums)."""
    arr = np.ascontiguousarray(data, dtype=np.uint8)
    return zlib.crc32(arr.data) & 0xFFFFFFFF


def verify_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Constant-memory equality of two byte arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a, b))
