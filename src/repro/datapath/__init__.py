"""Real byte movement: zero-copy buffer pools, scatter/gather, integrity.

The performance layer is a simulation, but correctness is not: small
transfers move *actual bytes* through the protocol stack (RFTP framing,
iSER/SCSI, filesystems).  This package provides the buffer machinery —
written zero-copy, per the HPC guideline of using views over copies —
plus streaming digests to verify end-to-end integrity.
"""

from repro.datapath.buffers import BufferPool, PooledBuffer
from repro.datapath.integrity import StreamingDigest, checksum, verify_equal
from repro.datapath.zerocopy import ScatterGatherList

__all__ = [
    "BufferPool",
    "PooledBuffer",
    "StreamingDigest",
    "checksum",
    "verify_equal",
    "ScatterGatherList",
]
