"""Scatter/gather lists: a logical byte stream over multiple views.

RDMA work requests carry scatter/gather entries; RFTP assembles file
blocks from pool buffers without copying.  :class:`ScatterGatherList`
provides the logical-stream operations (length, slicing, iteration,
digesting) over a list of NumPy views, materializing nothing unless
explicitly asked.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.datapath.integrity import StreamingDigest

__all__ = ["ScatterGatherList"]


class ScatterGatherList:
    """An ordered list of byte segments treated as one stream."""

    def __init__(self, segments: Sequence[np.ndarray] = ()):
        self._segments: list[np.ndarray] = []
        for seg in segments:
            self.append(seg)

    def append(self, segment: np.ndarray) -> None:
        """Append one segment (a uint8 view; no copy)."""
        arr = np.asarray(segment)
        if arr.dtype != np.uint8 or arr.ndim != 1:
            raise ValueError("segments must be 1-D uint8 arrays")
        self._segments.append(arr)

    @property
    def n_segments(self) -> int:
        """Number of segments."""
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        """Total payload bytes."""
        return sum(len(s) for s in self._segments)

    def segments(self) -> Iterator[np.ndarray]:
        """Iterate the segments in order."""
        return iter(self._segments)

    def digest(self) -> str:
        """Stream digest without materializing."""
        d = StreamingDigest()
        for seg in self._segments:
            d.update(seg)
        return d.hexdigest()

    def slice(self, offset: int, length: int) -> "ScatterGatherList":
        """A sub-stream (views only, no copies)."""
        if offset < 0 or length < 0 or offset + length > self.total_bytes:
            raise ValueError(
                f"slice [{offset}, {offset + length}) outside stream of "
                f"{self.total_bytes} bytes"
            )
        out = ScatterGatherList()
        pos = 0
        remaining = length
        for seg in self._segments:
            if remaining == 0:
                break
            seg_start = pos
            seg_end = pos + len(seg)
            pos = seg_end
            if seg_end <= offset:
                continue
            start = max(0, offset - seg_start)
            take = min(len(seg) - start, remaining)
            out.append(seg[start : start + take])
            remaining -= take
        return out

    def materialize(self) -> np.ndarray:
        """Concatenate into one array (the explicit, single copy)."""
        if not self._segments:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(self._segments)

    def __len__(self) -> int:
        return self.total_bytes
