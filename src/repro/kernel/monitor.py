"""Host-level monitoring: getrusage(2) and /proc-style snapshots.

The paper measures with ``getrusage`` (RFTP threads) and ``perf``
(system-wide CPU cycles).  This module provides both views over the
simulation:

* :func:`getrusage` — per-thread/process usr+sys CPU seconds, matching
  the POSIX struct's ``ru_utime``/``ru_stime`` split;
* :class:`HostMonitor` — a sampler recording per-NUMA-node CPU and
  memory-bandwidth utilization over time (what ``mpstat``/``pcm-memory``
  would show), used to identify which resource saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from typing import Optional

from repro.hw.topology import Machine
from repro.kernel.process import SimProcess, SimThread
from repro.sim.sampling import default_sampler, hub_for
from repro.sim.trace import TimeSeries, periodic

__all__ = ["Rusage", "getrusage", "HostMonitor"]


@dataclass(frozen=True)
class Rusage:
    """POSIX getrusage essentials."""

    ru_utime: float  # user CPU seconds
    ru_stime: float  # system CPU seconds

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return self.ru_utime + self.ru_stime


def getrusage(who: Union[SimThread, SimProcess]) -> Rusage:
    """Resource usage of a thread (RUSAGE_THREAD) or process (RUSAGE_SELF)."""
    if isinstance(who, SimProcess):
        acc = who.merged_accounting()
    else:
        acc = who.accounting
    return Rusage(ru_utime=acc.user_seconds(), ru_stime=acc.system_seconds())


class HostMonitor:
    """Periodic sampler of one machine's per-node resource utilization.

    Besides the paper's CPU/memory/QPI views, it also samples the
    simulation kernel's own counters (events processed per simulated
    second) so a run's kernel load shows up next to the modelled
    resources it drives.

    Resource utilizations are piecewise-constant between fluid rate
    epochs, so under the default ``backfill`` sampler each view is a
    *gauge* channel on the simulator's sampler hub and all sample points
    are materialized analytically at epoch boundaries; ``sampler="event"``
    keeps the classic single per-tick generator process.
    """

    def __init__(self, machine: Machine, interval: float = 1.0,
                 sampler: Optional[str] = None):
        self.machine = machine
        self.interval = interval
        self.cpu: Dict[int, TimeSeries] = {
            n: TimeSeries(f"cpu{n}") for n in range(machine.n_nodes)
        }
        self.mem: Dict[int, TimeSeries] = {
            n: TimeSeries(f"mem{n}") for n in range(machine.n_nodes)
        }
        self.qpi = TimeSeries("qpi")
        self.events = TimeSeries("events/s")
        sim = machine.ctx.sim
        hub = hub_for(sim)
        self._channels = []
        self._proc = None
        self.sampler = sampler if sampler is not None else default_sampler()
        if self.sampler == "backfill":
            m = machine
            for n in range(m.n_nodes):
                cpu_res = m.cpu_resource(n)
                self._channels.append(hub.channel(
                    (lambda r=cpu_res: r.load / r.capacity),
                    interval, self.cpu[n], kind="gauge", mode="backfill"))
                mem_res = m.mem_bank(n).bandwidth
                self._channels.append(hub.channel(
                    (lambda r=mem_res: r.utilization),
                    interval, self.mem[n], kind="gauge", mode="backfill"))
            if m.n_nodes > 1:
                q = m.qpi(0, 1)
                self._channels.append(hub.channel(
                    (lambda r=q: r.utilization),
                    interval, self.qpi, kind="gauge", mode="backfill"))
            stats = sim.stats
            self._channels.append(hub.channel(
                (lambda s=stats: float(s.events_processed)),
                interval, self.events, kind="rate", mode="backfill"))
        else:
            self._last_processed = sim.stats.events_processed
            self._proc = periodic(sim, interval, self._sample)

    def _sample(self, now: float) -> None:
        m = self.machine
        m.ctx.fluid.settle()
        for n in range(m.n_nodes):
            cpu_res = m.cpu_resource(n)
            self.cpu[n].record(now, cpu_res.load / cpu_res.capacity)
            mem_res = m.mem_bank(n).bandwidth
            self.mem[n].record(now, mem_res.utilization)
        if m.n_nodes > 1:
            q = m.qpi(0, 1)
            self.qpi.record(now, q.utilization)
        processed = m.ctx.sim.stats.events_processed
        self.events.record(now, (processed - self._last_processed) / self.interval)
        self._last_processed = processed

    def stats_snapshot(self) -> Dict[str, float]:
        """Current kernel counters: engine (SimStats) + allocator (FluidStats)."""
        snap: Dict[str, float] = dict(self.machine.ctx.sim.stats.as_dict())
        fluid = self.machine.ctx.fluid
        snap.update({f"fluid_{k}": v for k, v in fluid.stats.as_dict().items()})
        return snap

    def stop(self) -> None:
        """Stop the activity; returns/flushes what it accumulated."""
        for ch in self._channels:
            ch.stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")

    def hottest_resource(self) -> str:
        """Name of the most-utilized resource over the run (mean)."""
        candidates: List[tuple[float, str]] = []
        for n, series in self.cpu.items():
            candidates.append((series.mean(), f"cpu{n}"))
        for n, series in self.mem.items():
            candidates.append((series.mean(), f"mem{n}"))
        if len(self.qpi) > 0:
            candidates.append((self.qpi.mean(), "qpi"))
        return max(candidates)[1] if candidates else "idle"
