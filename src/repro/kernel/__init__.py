"""Operating-system model: scheduling, NUMA policy, pages, accounting.

The paper's tuning story is an OS story: the default Linux scheduler and
first-touch allocator spread threads and pages across NUMA nodes, while
``numactl`` binding pins each worker and its memory to one node.  This
package models exactly that surface:

* :mod:`repro.kernel.accounting` — getrusage/perf-style CPU accounting,
* :mod:`repro.kernel.numa` — numactl/libnuma-like policy API,
* :mod:`repro.kernel.pages` — page placement for memory regions,
* :mod:`repro.kernel.process` — simulated processes/threads and binding,
* :mod:`repro.kernel.work` — compiles a thread's per-byte work into fluid
  flow paths (the bridge between OS-level description and the simulator),
* :mod:`repro.kernel.interrupts` — NIC interrupt cost placement.
"""

from repro.kernel.accounting import CpuAccount, CpuAccounting
from repro.kernel.numa import NumaPolicy, NumaPolicyKind, numactl
from repro.kernel.pages import RegionPlacement, place_region
from repro.kernel.process import SimProcess, SimThread
from repro.kernel.work import PathSpec, WorkItem, build_thread_path

__all__ = [
    "CpuAccount",
    "CpuAccounting",
    "NumaPolicy",
    "NumaPolicyKind",
    "numactl",
    "RegionPlacement",
    "place_region",
    "SimProcess",
    "SimThread",
    "WorkItem",
    "PathSpec",
    "build_thread_path",
]
