"""NUMA policy: the model's ``numactl`` / libnuma surface.

The paper compares two regimes (§3.1, §4.2):

* **default** — the stock Linux scheduler migrates threads freely and
  first-touch allocation follows wherever a thread happened to run, so
  on a two-node host roughly half of all accesses land remote;
* **bound** — ``numactl --cpunodebind=N --membind=N`` pins a process's
  threads and pages to one node ("we only implement the former solution",
  i.e. static numactl binding rather than libnuma integration).

:class:`NumaPolicy` captures one process's policy; :func:`numactl` mirrors
the command-line tool's semantics over a :class:`~repro.kernel.process.SimProcess`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.process import SimProcess

__all__ = ["NumaPolicyKind", "NumaPolicy", "numactl"]


class NumaPolicyKind(enum.Enum):
    """Memory/CPU placement policy kinds (mirrors mbind/set_mempolicy)."""

    DEFAULT = "default"  # first-touch, threads migrate
    BIND = "bind"  # memory and CPUs restricted to given nodes
    INTERLEAVE = "interleave"  # pages round-robin across nodes
    PREFERRED = "preferred"  # try one node, fall back
    BIASED = "biased"  # untuned but NUMA-balanced: home node + drift


@dataclass(frozen=True)
class NumaPolicy:
    """A process- or region-level NUMA policy."""

    kind: NumaPolicyKind = NumaPolicyKind.DEFAULT
    nodes: tuple[int, ...] = ()
    #: BIASED only: share of execution time on the home node.
    home_fraction: float = 0.7

    def __post_init__(self):
        if self.kind in (NumaPolicyKind.BIND, NumaPolicyKind.INTERLEAVE,
                         NumaPolicyKind.PREFERRED, NumaPolicyKind.BIASED) \
                and not self.nodes:
            raise ValueError(f"{self.kind.value} policy requires nodes")
        if self.kind in (NumaPolicyKind.PREFERRED, NumaPolicyKind.BIASED) \
                and len(self.nodes) != 1:
            raise ValueError(f"{self.kind.value} policy takes exactly one node")
        if not (0.0 < self.home_fraction <= 1.0):
            raise ValueError(f"home_fraction must be in (0, 1], got {self.home_fraction}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def default(cls) -> "NumaPolicy":
        """The stock (untuned) configuration."""
        return cls(NumaPolicyKind.DEFAULT)

    @classmethod
    def bind(cls, *nodes: int) -> "NumaPolicy":
        """Pin to the given node(s)."""
        return cls(NumaPolicyKind.BIND, tuple(nodes))

    @classmethod
    def interleave(cls, *nodes: int) -> "NumaPolicy":
        """Round-robin pages across the given nodes."""
        return cls(NumaPolicyKind.INTERLEAVE, tuple(nodes))

    @classmethod
    def preferred(cls, node: int) -> "NumaPolicy":
        """Prefer one node, fall back elsewhere."""
        return cls(NumaPolicyKind.PREFERRED, (node,))

    @classmethod
    def biased(cls, home: int, home_fraction: float = 0.7) -> "NumaPolicy":
        """Untuned long-running process after NUMA balancing settles:
        mostly on *home*, occasionally migrated, pages migrated home."""
        return cls(NumaPolicyKind.BIASED, (home,), home_fraction=home_fraction)

    # -- semantics ------------------------------------------------------------
    def execution_fractions(self, n_nodes: int) -> Dict[int, float]:
        """Fraction of a thread's execution time spent on each node.

        Under the default policy the scheduler migrates threads across all
        nodes (uniform); under bind/preferred the thread stays put.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.kind is NumaPolicyKind.DEFAULT:
            return {n: 1.0 / n_nodes for n in range(n_nodes)}
        if self.kind is NumaPolicyKind.INTERLEAVE:
            # interleave constrains memory, not CPUs; threads still roam
            return {n: 1.0 / n_nodes for n in range(n_nodes)}
        if self.kind is NumaPolicyKind.BIASED:
            home = self.nodes[0]
            if home >= n_nodes:
                raise ValueError(f"home node {home} outside machine (n={n_nodes})")
            if n_nodes == 1:
                return {home: 1.0}
            away = (1.0 - self.home_fraction) / (n_nodes - 1)
            return {
                n: (self.home_fraction if n == home else away)
                for n in range(n_nodes)
            }
        nodes = [n for n in self.nodes if n < n_nodes]
        if not nodes:
            raise ValueError(f"policy nodes {self.nodes} outside machine (n={n_nodes})")
        return {n: 1.0 / len(nodes) for n in nodes}

    def allocation_fractions(
        self, n_nodes: int, touch_node: Optional[int] = None
    ) -> Dict[int, float]:
        """Fraction of newly allocated pages landing on each node.

        * default: first-touch — pages follow the toucher; with a migrating
          toucher (``touch_node=None``) allocation is effectively uniform.
        * bind/preferred: all pages on the policy nodes.
        * interleave: round-robin across the policy nodes.
        """
        if self.kind is NumaPolicyKind.DEFAULT:
            if touch_node is not None:
                return {touch_node: 1.0}
            return {n: 1.0 / n_nodes for n in range(n_nodes)}
        if self.kind is NumaPolicyKind.INTERLEAVE:
            nodes = [n for n in self.nodes if n < n_nodes]
            return {n: 1.0 / len(nodes) for n in nodes}
        if self.kind is NumaPolicyKind.BIASED:
            # NUMA balancing migrates a long-lived process's pages home
            return {self.nodes[0]: 1.0}
        nodes = [n for n in self.nodes if n < n_nodes]
        if not nodes:
            raise ValueError(f"policy nodes {self.nodes} outside machine (n={n_nodes})")
        return {n: 1.0 / len(nodes) for n in nodes}


def numactl(
    process: "SimProcess",
    cpunodebind: Optional[Sequence[int]] = None,
    membind: Optional[Sequence[int]] = None,
    interleave: Optional[Sequence[int]] = None,
) -> "SimProcess":
    """Apply numactl-style binding to a simulated process (returns it).

    Mirrors ``numactl --cpunodebind=... --membind=...`` — the exact tuning
    mechanism the paper applies to iSER targets, RFTP and GridFTP.
    """
    if interleave is not None and membind is not None:
        raise ValueError("--interleave and --membind are mutually exclusive")
    if cpunodebind is not None:
        process.cpu_policy = NumaPolicy.bind(*cpunodebind)
    if membind is not None:
        process.mem_policy = NumaPolicy.bind(*membind)
    if interleave is not None:
        process.mem_policy = NumaPolicy.interleave(*interleave)
    return process
