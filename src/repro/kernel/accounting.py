"""CPU-time accounting in the style of getrusage(2) and perf(1).

The paper reports CPU cost as "percent of one fully-utilized core"
(Fig. 4 note), split into categories: user-space protocol processing,
kernel protocol processing, user<->kernel data copies, data loading,
data offloading, interrupt handling.  :class:`CpuAccounting` accumulates
core-seconds per category (fluid flows debit it via their ``charges``)
and converts to the paper's percent-of-a-core representation over a
measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["CpuAccount", "CpuAccounting", "CATEGORIES"]

#: Canonical cost categories used across the figures.
CATEGORIES = (
    "usr_proto",  # user-space protocol processing (RFTP descriptors, iperf loop)
    "sys_proto",  # kernel TCP/IP stack processing
    "copy",       # user<->kernel / page-cache data copies
    "load",       # data loading (/dev/zero fill, file reads)
    "offload",    # data offloading (/dev/null dump, file writes)
    "irq",        # interrupt/softirq handling
    "coherence",  # cache-coherence stalls (NUMA write invalidations)
    "io",         # block-I/O submission/completion handling
)


@dataclass
class CpuAccount:
    """A single category accumulator (satisfies the fluid ChargeAccount)."""

    name: str
    seconds: float = 0.0

    def add(self, amount: float) -> None:
        """Accumulate an amount."""
        if amount < 0:
            raise ValueError(f"negative charge on {self.name!r}: {amount}")
        self.seconds += amount

    def add_many(self, amounts: Sequence[float]) -> None:
        """Accumulate a batch of amounts in one call (array sink).

        The batch is summed with :func:`numpy.sum` before the single
        accumulate, so array-producing callers (the vectorized fluid
        settle, report assembly) pay one validation and one attribute
        store per batch instead of one per element.
        """
        arr = np.asarray(amounts, dtype=float)
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise ValueError(
                f"negative charge on {self.name!r}: {float(arr.min())}"
            )
        self.seconds += float(arr.sum())


class CpuAccounting:
    """Per-entity (thread/process/host) CPU time ledger."""

    def __init__(self, name: str = ""):
        self.name = name
        self._accounts: Dict[str, CpuAccount] = {}
        self._window_start = 0.0
        self._window_snapshot: Dict[str, float] = {}

    def account(self, category: str) -> CpuAccount:
        """The accumulator for *category* (created on first use)."""
        acct = self._accounts.get(category)
        if acct is None:
            acct = CpuAccount(category)
            self._accounts[category] = acct
        return acct

    def add(self, category: str, seconds: float) -> None:
        """Directly add CPU seconds to a category."""
        self.account(category).add(seconds)

    def add_many(self, seconds_by_category: Mapping[str, float]) -> None:
        """Add CPU seconds to several categories in one call.

        Equivalent to calling :meth:`add` per item; used by report
        assembly to merge a whole per-task ledger at once.
        """
        for category, seconds in seconds_by_category.items():
            self.account(category).add(seconds)

    # -- totals ----------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Sum of CPU seconds across categories."""
        return sum(a.seconds for a in self._accounts.values())

    def seconds_by_category(self) -> Dict[str, float]:
        """CPU seconds per accounting category."""
        return {k: a.seconds for k, a in self._accounts.items()}

    def user_seconds(self) -> float:
        """Time the paper would report as 'usr'."""
        usr = ("usr_proto", "load", "offload")
        return sum(self._accounts[k].seconds for k in usr if k in self._accounts)

    def system_seconds(self) -> float:
        """Time the paper would report as 'sys'."""
        sys_ = ("sys_proto", "copy", "irq", "coherence", "io")
        return sum(self._accounts[k].seconds for k in sys_ if k in self._accounts)

    # -- windowed utilization -------------------------------------------------
    def begin_window(self, now: float) -> None:
        """Mark the start of a measurement window."""
        self._window_start = now
        self._window_snapshot = self.seconds_by_category()

    def utilization(self, now: float) -> Dict[str, float]:
        """Percent-of-one-core per category since :meth:`begin_window`.

        Matches the paper's convention: 122.0 means 1.22 fully-used cores.
        """
        wall = now - self._window_start
        if wall <= 0:
            return {k: 0.0 for k in self._accounts}
        out = {}
        for k, acct in self._accounts.items():
            base = self._window_snapshot.get(k, 0.0)
            out[k] = 100.0 * (acct.seconds - base) / wall
        return out

    def total_utilization(self, now: float) -> float:
        """Total percent-of-one-core over the current window."""
        return sum(self.utilization(now).values())

    def merged(self, others: Iterable["CpuAccounting"]) -> "CpuAccounting":
        """A new ledger summing this one with *others*."""
        out = CpuAccounting(self.name)
        for src in (self, *others):
            out.add_many(src.seconds_by_category())
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={v:.3f}s" for k, v in sorted(self.seconds_by_category().items())
        )
        return f"<CpuAccounting {self.name!r} {parts}>"
