"""Compile a thread's per-byte work into a fluid flow path.

This is the bridge between OS-level descriptions ("this thread copies
each byte user->kernel, runs the TCP stack, and the buffer is 50% remote")
and the fluid scheduler's resource/weight language.

A :class:`WorkItem` describes one serial stage of a thread's per-byte
pipeline: its CPU cost (core-seconds/byte, put in a named accounting
category), its memory-system traffic (which banks, how many bytes of
traffic per payload byte), and optionally a fixed per-operation CPU cost
amortized over the operation size (how block size affects efficiency).

:func:`build_thread_path` turns a list of items into a :class:`PathSpec`:

* CPU weights on the executing node(s), split by the thread's execution
  fractions (migrating threads under the default policy charge all nodes);
* memory weights routed locally or across QPI per the region placements;
* a **serial-thread rate cap** of ``1 / total_cpu_seconds_per_byte`` —
  a single thread cannot run its pipeline faster than one core allows.
  This cap is what makes single-threaded movers (GridFTP) slow and
  multi-threaded pipelined movers (RFTP) fast in the model;
* accounting charges so CPU utilization reports match the paper's
  getrusage/perf methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.kernel.process import SimThread
from repro.sim.fluid import FluidResource
from repro.util.validation import check_positive

__all__ = ["WorkItem", "PathSpec", "build_thread_path", "merge_paths"]


@dataclass(frozen=True)
class WorkItem:
    """One serial per-byte stage executed by a thread."""

    description: str
    #: core-seconds of CPU per payload byte.
    cpu_per_byte: float = 0.0
    #: accounting category (see :data:`repro.kernel.accounting.CATEGORIES`).
    category: str = "usr_proto"
    #: memory traffic: ``(node_fractions, traffic_factor)`` tuples — the
    #: banks touched (with their shares) and bytes of memory traffic per
    #: payload byte (1 read, 3 copy with write-allocate, ...).  A
    #: ``node_fractions`` of ``None`` means *execution-local* memory
    #: (per-CPU slabs like TCP skbs): the traffic always lands on the
    #: bank of whichever node the thread is currently running on.
    mem_traffic: tuple[tuple[Optional[tuple[tuple[int, float], ...]], float], ...] = ()
    #: fixed CPU per operation (amortized over the op size).
    per_op_cpu: float = 0.0

    @staticmethod
    def mem(node_fractions: Dict[int, float], traffic_factor: float):
        """Helper to build one ``mem_traffic`` entry."""
        return (tuple(sorted(node_fractions.items())), traffic_factor)

    @staticmethod
    def mem_local(traffic_factor: float):
        """An execution-local traffic entry (never crosses QPI)."""
        return (None, traffic_factor)


@dataclass
class PathSpec:
    """A compiled fluid path: resources, serial cap and charges."""

    path: list[tuple[FluidResource, float]] = field(default_factory=list)
    cap: Optional[float] = None
    charges: list[tuple[object, float]] = field(default_factory=list)

    def extend(self, extra: Sequence[tuple[FluidResource, float]]) -> "PathSpec":
        """Append extra path entries; returns self."""
        self.path.extend(extra)
        return self

    def with_cap(self, cap: Optional[float]) -> "PathSpec":
        """Tighten the cap (keeps the smaller of the two)."""
        if cap is not None:
            self.cap = cap if self.cap is None else min(self.cap, cap)
        return self


def build_thread_path(
    thread: SimThread,
    items: Sequence[WorkItem],
    op_size: Optional[float] = None,
    n_threads: int = 1,
) -> PathSpec:
    """Compile *items* (executed serially by *thread*) into a path.

    ``op_size`` amortizes each item's ``per_op_cpu``; required if any item
    has one.  ``n_threads`` scales the serial cap for a team of identical
    threads feeding one flow (RFTP's worker pool): the team's aggregate
    pipeline rate is ``n_threads`` times one thread's.
    """
    check_positive("n_threads", n_threads)
    machine = thread.machine
    exec_fracs = thread.execution_fractions()

    total_cpu = 0.0
    spec = PathSpec()
    for item in items:
        per_byte = item.cpu_per_byte
        if item.per_op_cpu:
            if op_size is None:
                raise ValueError(
                    f"work item {item.description!r} has per_op_cpu but no op_size given"
                )
            per_byte += item.per_op_cpu / op_size
        total_cpu += per_byte

        if per_byte > 0:
            for node, ef in exec_fracs.items():
                spec.path.append((machine.cpu_resource(node), ef * per_byte))
            spec.charges.append((thread.accounting.account(item.category), per_byte))

        for node_fracs, traffic in item.mem_traffic:
            for exec_node, ef in exec_fracs.items():
                pairs = (
                    ((exec_node, 1.0),) if node_fracs is None else node_fracs
                )
                for mem_node, mf in pairs:
                    weight_scale = ef * mf
                    if weight_scale <= 0:
                        continue
                    for res, w in machine.mem_path(exec_node, mem_node, traffic):
                        spec.path.append((res, w * weight_scale))

    if total_cpu > 0:
        spec.cap = n_threads / total_cpu
    return spec


def merge_paths(*specs: PathSpec) -> PathSpec:
    """Concatenate several specs (caps combine by minimum)."""
    out = PathSpec()
    for s in specs:
        out.path.extend(s.path)
        out.charges.extend(s.charges)
        out.with_cap(s.cap)
    return out
