"""Page placement for memory regions.

A :class:`RegionPlacement` records which fraction of a memory region's
pages live on each NUMA node — the quantity the fluid model needs to
split an access stream across memory banks.  :func:`place_region` derives
it from a :class:`~repro.kernel.numa.NumaPolicy` (tmpfs ``mpol=`` mounts,
first-touch, interleave...).

For byte-exact experiments (the real datapath) a page-granular map is
also provided via :meth:`RegionPlacement.page_nodes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.kernel.numa import NumaPolicy
from repro.util.validation import check_positive

__all__ = ["RegionPlacement", "place_region", "PAGE_SIZE"]

#: x86-64 base page size.
PAGE_SIZE = 4096


@dataclass(frozen=True)
class RegionPlacement:
    """Placement of one memory region across NUMA nodes."""

    size_bytes: int
    fractions: tuple[tuple[int, float], ...]  # (node, fraction), fractions sum to 1

    def __post_init__(self):
        total = sum(f for _, f in self.fractions)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"placement fractions sum to {total}, expected 1.0")
        if any(f < 0 for _, f in self.fractions):
            raise ValueError("placement fractions must be non-negative")

    def node_fractions(self) -> Dict[int, float]:
        """Share of the region on each NUMA node."""
        return dict(self.fractions)

    @property
    def n_pages(self) -> int:
        """Number of pages backing the region."""
        return (self.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def page_nodes(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """A concrete per-page node assignment consistent with fractions.

        Deterministic round-robin-by-share unless an *rng* is supplied, in
        which case pages are shuffled (modelling first-touch by a
        migrating thread).
        """
        n = self.n_pages
        nodes = np.empty(n, dtype=np.int32)
        start = 0
        items = sorted(self.fractions)
        for i, (node, frac) in enumerate(items):
            count = int(round(frac * n)) if i < len(items) - 1 else n - start
            count = min(count, n - start)
            nodes[start : start + count] = node
            start += count
        if rng is not None:
            rng.shuffle(nodes)
        return nodes

    def dominant_node(self) -> int:
        """The node holding the largest share of the region."""
        return max(self.fractions, key=lambda nf: nf[1])[0]


def place_region(
    size_bytes: int,
    policy: NumaPolicy,
    n_nodes: int,
    touch_node: Optional[int] = None,
) -> RegionPlacement:
    """Place a freshly allocated region under *policy*.

    ``touch_node`` models first-touch: the node of the thread that faults
    the pages in.  ``None`` means the toucher migrates (default scheduler),
    spreading pages uniformly — the paper's untuned baseline.
    """
    check_positive("size_bytes", size_bytes)
    fractions = policy.allocation_fractions(n_nodes, touch_node=touch_node)
    return RegionPlacement(
        size_bytes=size_bytes, fractions=tuple(sorted(fractions.items()))
    )


def remote_fraction(placement: RegionPlacement, accessor_node: int) -> float:
    """Fraction of the region remote to a thread pinned on *accessor_node*."""
    return sum(f for node, f in placement.fractions if node != accessor_node)
