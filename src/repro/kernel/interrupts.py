"""NIC interrupt / softirq cost placement.

TCP receive (and to a lesser degree transmit-completion) processing runs
in softirq context on the CPU that services the NIC's interrupt vector.
Under default ``irqbalance`` the vector may land on either socket; with
NUMA tuning it is steered to the NIC-local node.  RDMA traffic bypasses
per-packet interrupts (completions are coalesced events polled from the
CQ), which is part of its CPU advantage (Fig. 4).
"""

from __future__ import annotations

from typing import Dict

from repro.hw.nic import Nic
from repro.kernel.accounting import CpuAccounting
from repro.kernel.work import PathSpec

__all__ = ["irq_path"]


def irq_path(
    nic: Nic,
    accounting: CpuAccounting,
    tuned: bool,
    rate_per_core: float,
) -> PathSpec:
    """Per-byte interrupt-processing path for TCP traffic on *nic*.

    ``rate_per_core`` is bytes/second one core can service (calibrated
    as ``cal.tcp_interrupt_rate``).  Untuned, the vector floats across
    nodes (uniform split); tuned, it is pinned to the NIC's node.
    """
    if rate_per_core <= 0:
        raise ValueError(f"rate_per_core must be > 0, got {rate_per_core}")
    machine = nic.machine
    per_byte = 1.0 / rate_per_core
    fracs: Dict[int, float]
    if tuned:
        fracs = {nic.node: 1.0}
    else:
        fracs = {n: 1.0 / machine.n_nodes for n in range(machine.n_nodes)}
    spec = PathSpec()
    for node, f in fracs.items():
        spec.path.append((machine.cpu_resource(node), f * per_byte))
    spec.charges.append((accounting.account("irq"), per_byte))
    return spec
