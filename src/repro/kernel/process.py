"""Simulated processes and threads with NUMA binding state.

A :class:`SimProcess` groups threads, a CPU policy and a memory policy
(the unit ``numactl`` operates on).  A :class:`SimThread` is the unit of
serial execution: the work compiler (:mod:`repro.kernel.work`) caps each
thread's pipeline rate at one core's worth of its per-byte costs, which
is how the single-threaded-GridFTP bottleneck arises naturally.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.kernel.numa import NumaPolicy

__all__ = ["SimProcess", "SimThread"]


class SimThread:
    """One schedulable thread of a simulated process."""

    def __init__(self, process: "SimProcess", name: str):
        self.process = process
        self.name = name
        self.accounting = CpuAccounting(name)

    @property
    def machine(self) -> Machine:
        """The owning machine."""
        return self.process.machine

    def execution_fractions(self) -> Dict[int, float]:
        """Fraction of this thread's CPU time on each NUMA node."""
        return self.process.cpu_policy.execution_fractions(self.machine.n_nodes)

    def home_node(self) -> Optional[int]:
        """The single node the thread is pinned to, if any."""
        fracs = self.execution_fractions()
        if len(fracs) == 1:
            return next(iter(fracs))
        return None

    def __repr__(self) -> str:
        return f"<SimThread {self.name!r} of {self.process.name!r}>"


class SimProcess:
    """A process: thread container plus NUMA policies.

    ``cpu_policy`` governs where threads execute; ``mem_policy`` governs
    where the process's allocations land (first-touch by default).
    """

    def __init__(
        self,
        machine: Machine,
        name: str,
        cpu_policy: Optional[NumaPolicy] = None,
        mem_policy: Optional[NumaPolicy] = None,
    ):
        self.machine = machine
        self.name = name
        self.cpu_policy = cpu_policy or NumaPolicy.default()
        self.mem_policy = mem_policy or NumaPolicy.default()
        self.threads: list[SimThread] = []
        self.accounting = CpuAccounting(name)

    def spawn_thread(self, name: str = "") -> SimThread:
        """Create a new thread in this process."""
        t = SimThread(self, name or f"{self.name}.t{len(self.threads)}")
        self.threads.append(t)
        return t

    def merged_accounting(self) -> CpuAccounting:
        """Process-wide ledger: own plus all threads'."""
        return self.accounting.merged(t.accounting for t in self.threads)

    def __repr__(self) -> str:
        return (
            f"<SimProcess {self.name!r} threads={len(self.threads)} "
            f"cpu={self.cpu_policy.kind.value} mem={self.mem_policy.kind.value}>"
        )
