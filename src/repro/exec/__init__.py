"""Parallel experiment execution with a content-addressed result cache.

The reproduction harness decomposes every figure, ablation and
sensitivity sweep into independent :class:`~repro.exec.task.SimTask`
units (one simulation run each).  :func:`~repro.exec.runner.run_tasks`
executes a batch — serial by default, fanned across a process pool with
``jobs > 1`` — and always merges results back in task order, so serial,
parallel and cache-served runs produce byte-identical reports.

Results are cached on disk by content address: a SHA-256 over the
task's target, parameters, seed, every
:class:`~repro.core.calibration.Calibration` field, and a fingerprint of
the library's own source.  Dense scenario sweeps additionally opt into
**gang execution** (:mod:`repro.exec.gang`): tasks sharing a
:class:`~repro.exec.gang.GangSpec` run as one batched scenario program,
with per-scenario defection back to the ordinary path whenever batching
cannot be exact.  See ``README.md`` ("Parallel runner & result cache")
and ``docs/MODELING.md`` (seed discipline, §11 gang semantics) for the
invariants that make this safe.
"""

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.fingerprint import code_fingerprint
from repro.exec.gang import DEFECT, GangSpec, GangStats, gang_calgrid, gang_mode
from repro.exec.runner import (ExecContext, default_jobs, executor,
                               get_exec_context, run_tasks)
from repro.exec.task import SimTask

__all__ = [
    "CacheStats",
    "DEFECT",
    "ExecContext",
    "GangSpec",
    "GangStats",
    "ResultCache",
    "SimTask",
    "code_fingerprint",
    "default_jobs",
    "executor",
    "gang_calgrid",
    "gang_mode",
    "get_exec_context",
    "run_tasks",
]
