"""Process-pool task runner with deterministic merge order.

:func:`run_tasks` takes a list of :class:`~repro.exec.task.SimTask` and
returns their results *in task order*, regardless of how they were
scheduled.  Execution is:

1. **cache lookup** — tasks whose content address is already in the
   active :class:`~repro.exec.cache.ResultCache` are not re-run;
2. **dedup** — tasks with identical identity inside one call execute
   once and share the result (e.g. Fig. 9's GridFTP leg and Fig. 10's
   GridFTP leg are the same simulation);
3. **gang grouping** — cache-missed tasks carrying the same
   :class:`~repro.exec.gang.GangSpec` run as one batch through their
   gang kernel (scenario-axis execution; ``REPRO_GANG=off`` disables);
   scenarios the kernel defects fall through to step 4 unchanged;
4. **fan-out** — remaining tasks run serially (``jobs=1``, the default:
   determinism-by-default, no pickling, no subprocesses) or on a
   ``ProcessPoolExecutor`` of ``jobs`` workers.  ``REPRO_JOBS`` changes
   the *default* worker count (``auto`` = one per core); an explicit
   jobs argument — the CLI's ``--jobs`` above all — always wins.

Parallelism is safe because tasks share nothing: each builds its own
:class:`~repro.sim.context.Context` (own clock, own
:class:`~repro.sim.rng.RngRegistry` seeded from the task's seed), so a
task's result is a pure function of ``(target, params, seed, cal,
code)`` — the same tuple the cache key hashes.  Workers never nest
pools: a ``run_tasks`` call inside a worker process falls back to serial
execution.

The *ambient* :class:`ExecContext` (see :func:`executor`) is what the
experiment modules consult, so ``module.run()`` stays a plain serial
call unless a caller — the CLI's ``--jobs``, the report generator, a
benchmark — has installed a parallel context around it.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.gang import DEFECT, GANG_MODES, GangStats, gang_mode, resolve_kernel
from repro.exec.task import SimTask

__all__ = ["ExecContext", "default_jobs", "executor", "get_exec_context",
           "run_tasks"]


def default_jobs() -> int:
    """The worker-count default: ``REPRO_JOBS``, else 1 (fully serial).

    ``REPRO_JOBS`` accepts a positive integer or ``auto`` (one worker
    per CPU core).  An explicit jobs count — the CLI's ``--jobs``, a
    benchmark's ``executor(jobs=N)`` — always wins over the
    environment; the variable only fills the default.
    """
    text = os.environ.get("REPRO_JOBS", "").strip()
    if not text:
        return 1
    if text.lower() == "auto":
        return 0
    try:
        jobs = int(text)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer or 'auto', "
            f"got {text!r}") from None
    if jobs <= 0:
        raise ValueError(
            f"REPRO_JOBS must be >= 1 (or 'auto' for one worker per "
            f"CPU core), got {jobs}")
    return jobs


@dataclass
class ExecContext:
    """How tasks execute right now: worker count + optional result cache."""

    #: Worker processes for task fan-out; 1 = serial in-process, 0 = one
    #: per CPU core, None = the :func:`default_jobs` environment default.
    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    #: Tasks actually executed (not served from cache) under this context.
    executed: int = 0
    #: Gang-execution mode override ("auto"/"off"); None defers to the
    #: ``REPRO_GANG`` environment variable (default: auto).
    gang: Optional[str] = None

    def __post_init__(self) -> None:
        if self.gang is not None and self.gang not in GANG_MODES:
            raise ValueError(
                f"gang must be one of {GANG_MODES} or None, got {self.gang!r}"
            )

    @property
    def gang_enabled(self) -> bool:
        """Whether gang grouping applies under this context."""
        mode = self.gang if self.gang is not None else gang_mode()
        return mode != "off"

    @property
    def effective_jobs(self) -> int:
        """``jobs`` with None resolved from the environment and 0 to the
        usable-CPU count."""
        jobs = self.jobs if self.jobs is not None else default_jobs()
        if jobs > 0:
            return jobs
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1

    @property
    def cache_stats(self) -> CacheStats:
        """The active cache's counters (zeros when caching is off)."""
        return self.cache.stats if self.cache is not None else CacheStats()


#: Module-level ambient context: serial and cacheless unless overridden.
_CURRENT = ExecContext()


def get_exec_context() -> ExecContext:
    """The ambient execution context consulted by :func:`run_tasks`."""
    return _CURRENT


@contextmanager
def executor(jobs: Optional[int] = None, cache: Optional[ResultCache] = None,
             cache_dir: Optional[os.PathLike | str] = None,
             gang: Optional[str] = None) -> Iterator[ExecContext]:
    """Install an ambient :class:`ExecContext` for the duration of a block.

    *jobs* = None defers to ``REPRO_JOBS`` (see :func:`default_jobs`).
    Pass either a ready-made *cache* or a *cache_dir* to enable result
    caching (neither = no cache).  *gang* overrides ``REPRO_GANG``
    ("auto"/"off"; None defers to the environment).
    """
    global _CURRENT
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    ctx = ExecContext(jobs=jobs, cache=cache, gang=gang)
    previous = _CURRENT
    _CURRENT = ctx
    try:
        yield ctx
    finally:
        _CURRENT = previous


def _execute(task: SimTask) -> Any:
    return task.execute()


def _pool(workers: int) -> ProcessPoolExecutor:
    # Prefer fork: workers inherit the already-imported library, so a
    # 30 ms leg is not buried under a fresh interpreter's import time.
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp_context = None
    return ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)


def run_tasks(tasks: Sequence[SimTask],
              ctx: Optional[ExecContext] = None) -> List[Any]:
    """Execute *tasks* and return their results in task order.

    Uses the ambient context unless *ctx* is given.  The result list is
    positionally aligned with *tasks* whatever the execution order, so
    callers can rely on serial/parallel/cached runs being
    indistinguishable.
    """
    ctx = ctx if ctx is not None else get_exec_context()
    cache = ctx.cache
    results: List[Any] = [None] * len(tasks)

    pending: List[int] = []
    for i, task in enumerate(tasks):
        if not isinstance(task, SimTask):
            raise TypeError(f"tasks[{i}] is {type(task).__name__}, expected SimTask")
        if cache is not None:
            hit, value = cache.get(task)
            if hit:
                results[i] = value
                continue
        pending.append(i)

    # Identical tasks (same identity) execute once per call.
    groups: Dict[str, List[int]] = {}
    for i in pending:
        groups.setdefault(tasks[i].identity(), []).append(i)
    leaders = [indices[0] for indices in groups.values()]

    # Gang grouping: cache-missed leaders sharing a (kernel, key) spec
    # run as one batched scenario program; defected scenarios (and
    # groups of one, which have no batching to win) fall through to the
    # ordinary per-task path below.  Kernels run in-process — their
    # parallelism is the scenario axis, not worker processes.
    computed: Dict[int, Any] = {}
    ganged: set = set()
    if ctx.gang_enabled:
        gangs: Dict[tuple, List[int]] = {}
        for i in leaders:
            spec = tasks[i].gang
            if spec is not None:
                gangs.setdefault((spec.kernel, spec.key), []).append(i)
        for (kernel, _key), idxs in gangs.items():
            if len(idxs) < 2:
                GangStats.note_solo(len(idxs))
                continue
            try:
                values = resolve_kernel(kernel)([tasks[i] for i in idxs])
                if len(values) != len(idxs):
                    raise ValueError(
                        f"gang kernel {kernel!r} returned {len(values)} "
                        f"results for {len(idxs)} tasks")
            except Exception:
                # A broken kernel must never break the run: defect the
                # whole group to the per-task path (whose results are
                # correct by definition) and keep going.
                values = [DEFECT] * len(idxs)
            defected = 0
            for i, value in zip(idxs, values):
                if value is DEFECT:
                    defected += 1
                else:
                    computed[i] = value
                    ganged.add(i)
            GangStats.note_group(ganged=len(idxs) - defected,
                                 defected=defected)

    remaining = [i for i in leaders if i not in ganged]
    workers = min(ctx.effective_jobs, len(remaining))
    if multiprocessing.parent_process() is not None:
        workers = 1  # never nest process pools inside a worker
    if workers <= 1:
        for i in remaining:
            computed[i] = tasks[i].execute()
    else:
        with _pool(workers) as pool:
            futures = {i: pool.submit(_execute, tasks[i]) for i in remaining}
            for i, future in futures.items():
                computed[i] = future.result()
    ctx.executed += len(leaders)

    for indices in groups.values():
        value = computed[indices[0]]
        for i in indices:
            results[i] = value
        if cache is not None:
            cache.put(tasks[indices[0]], value,
                      via="gang" if indices[0] in ganged else "task")
    return results
