"""Code fingerprint: one hash over the library's own source tree.

Cached simulation results are only valid for the exact code that
produced them.  Rather than tracking fine-grained dependencies, the
cache key folds in a single fingerprint of every ``.py`` file under the
``repro`` package — any source edit (a calibration comment excepted, but
comments travel with their file) invalidates the whole cache.  That is
deliberately coarse: recomputing a few seconds of simulation is cheap,
serving a stale result is not.
"""

from __future__ import annotations

import hashlib
import pathlib
from functools import lru_cache
from typing import Optional

__all__ = ["code_fingerprint"]


def _package_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


@lru_cache(maxsize=None)
def _fingerprint_of(root: pathlib.Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Hex digest over every ``.py`` file under *root* (default: ``repro``).

    Memoized per path: the tree is hashed once per process, which is
    safe because a process whose source changed under it is already
    undefined behaviour for Python.
    """
    return _fingerprint_of(pathlib.Path(root) if root else _package_root())
