"""Code fingerprint: one hash over the library's own source tree.

Cached simulation results are only valid for the exact code that
produced them.  Rather than tracking fine-grained dependencies, the
cache key folds in a single fingerprint of every ``.py`` file under the
``repro`` package — any source edit (a calibration comment excepted, but
comments travel with their file) invalidates the whole cache.  That is
deliberately coarse: recomputing a few seconds of simulation is cheap,
serving a stale result is not.

The fingerprint is computed **once per process**: planning a
few-hundred-task grid (or slicing a gang batch into per-scenario cache
entries) must not re-walk the source tree per task.  Memoization is
safe because a process whose source changed under it is already
undefined behaviour for Python.
"""

from __future__ import annotations

import hashlib
import pathlib
from functools import lru_cache
from typing import Optional

__all__ = ["code_fingerprint"]

#: Process-wide memo of the default (no-argument) fingerprint.
_DEFAULT: Optional[str] = None


def _package_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


@lru_cache(maxsize=None)
def _fingerprint_of(root: pathlib.Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Hex digest over every ``.py`` file under *root* (default: ``repro``).

    The default form is memoized at module level — the hot path (one
    call per task during grid planning) does not even resolve the
    package root again — and explicit roots are memoized per path via
    ``lru_cache``.
    """
    global _DEFAULT
    if root is None:
        if _DEFAULT is None:
            _DEFAULT = _fingerprint_of(_package_root())
        return _DEFAULT
    return _fingerprint_of(pathlib.Path(root))
