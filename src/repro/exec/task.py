"""The unit of parallel execution: one independent simulation run.

A :class:`SimTask` names a module-level *target* function (as an
importable ``"package.module:function"`` path, so the task pickles
across process boundaries), the keyword parameters to call it with, the
root seed, and the :class:`~repro.core.calibration.Calibration` the run
is charged against.  Two tasks with equal identity are guaranteed to
produce equal results — every stochastic component draws from a
:class:`~repro.sim.rng.RngRegistry` seeded only by the task's own seed,
and no simulation state is shared between tasks — which is what makes
both process-pool fan-out and content-addressed result caching safe.

Target functions must

* be module-level (importable by name from a worker process),
* accept ``(*, seed, cal, **params)`` keyword arguments only, and
* return a picklable value that depends only on those arguments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import Calibration
    from repro.exec.gang import GangSpec

__all__ = ["SimTask"]

#: Bump when the on-disk cache entry layout changes (invalidates all keys).
#: v6: entries carry ``via`` provenance (gang vs per-task execution) —
#: older entries without the key still load, but the bump guarantees no
#: pre-gang-era result is ever replayed into a gang-era report.
#: v7: the topology-sharded runtime — legs may fan out into shard tasks
#: whose boundary-exchange grants are part of their params, and fabric
#: ledgers grew queue/QP-census fields; no pre-shard-era entry may
#: satisfy a shard-era lookup.
#: v8: the churn-coalescing fluid layer — the active ``REPRO_CHURN``
#: mode joins the identity (coalesce and eager runs are numerically
#: equivalent but not event-for-event identical, so they never share a
#: cache entry), and pre-coalescing entries are retired wholesale.
#: v9: failure domains and the crash-tolerant control plane — fault
#: plans grew domain targets (``host:``/``tor:``/``power:``) and a
#: ``stagger`` knob, brokers grew journal/heartbeat/retry/brownout
#: fields, and fabric ledgers carry audit + goodput-timeline keys;
#: pre-availability entries are retired wholesale.
CACHE_FORMAT_VERSION = 9


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to a JSON-stable structure (raises on non-canonical types)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    raise TypeError(
        f"SimTask params must be JSON-canonical (got {type(obj).__name__}); "
        "pass primitives, lists/dicts of primitives, or dataclasses of them"
    )


@dataclass(frozen=True)
class SimTask:
    """One independent, deterministic, cacheable simulation run."""

    #: Importable target, ``"package.module:function"``.
    target: str
    #: Keyword arguments for the target (JSON-canonical values only).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Root seed for the task's own RNG registry.
    seed: int = 0
    #: Calibration the run is charged against (None = library default).
    cal: "Optional[Calibration]" = None
    #: Display label (progress/debugging only; excluded from the identity).
    label: str = ""
    #: Gang-execution opt-in (see :mod:`repro.exec.gang`).  Excluded from
    #: the identity: a ganged scenario and the same task run solo are
    #: bit-identical by contract, so they share one cache entry — which
    #: is what lets a partially cached grid gang only the misses.
    gang: "Optional[GangSpec]" = None

    def __post_init__(self) -> None:
        module, sep, func = self.target.partition(":")
        if not sep or not module or not func:
            raise ValueError(
                f"target must look like 'package.module:function', got {self.target!r}"
            )

    # -- execution ---------------------------------------------------------------
    def resolve(self) -> Callable[..., Any]:
        """Import and return the target callable."""
        module, _, func = self.target.partition(":")
        fn = getattr(importlib.import_module(module), func, None)
        if fn is None:
            raise AttributeError(f"target {self.target!r} does not exist")
        return fn

    def execute(self) -> Any:
        """Run the task in the current process and return its result."""
        return self.resolve()(seed=self.seed, cal=self.cal, **self.params)

    # -- identity ----------------------------------------------------------------
    def identity(self) -> str:
        """Canonical JSON of everything the result depends on (except code).

        The active fluid-solver and sampler backends are part of the
        identity: each pair of backends is held to the same observables
        (and the ledger is byte-identical today), but a cache entry must
        never outlive the question of *which* kernel produced it —
        switching ``REPRO_FLUID_SOLVER``, ``REPRO_SAMPLER`` or
        ``REPRO_CHURN`` recomputes
        rather than replays.  So is the ambient ``REPRO_FAULTS`` plan
        (canonical JSON; "" when unset): cached legs must never mix
        fault configurations, and an unset plan keys identically to the
        pre-fault-subsystem behaviour it is byte-identical to.
        """
        from repro.faults.plan import ambient_spec
        from repro.sim.fluid import default_churn, default_solver
        from repro.sim.sampling import default_sampler

        return json.dumps(
            {
                "target": self.target,
                "params": _canonical(self.params),
                "seed": self.seed,
                "cal": _canonical(self.cal),
                "solver": default_solver(),
                "sampler": default_sampler(),
                "churn": default_churn(),
                "faults": ambient_spec(),
                "v": CACHE_FORMAT_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def cache_key(self, fingerprint: str) -> str:
        """Content address of the result: identity + code *fingerprint*."""
        material = f"{fingerprint}\n{self.identity()}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable name (label, else target function)."""
        return self.label or self.target.partition(":")[2]
