"""Gang execution: run a grid of scenario tasks as one batched program.

Dense sweeps — the ±20% sensitivity grid, calibration sweeps over an
ablation leg, protocol-knob cross-products — are hundreds of
*structurally identical* simulations that differ only along a scenario
axis (usually the calibration).  Running them one interpreter-driven
event loop at a time repeats work that is provably shared.  This module
lets planners opt a :class:`~repro.exec.task.SimTask` into **gang
execution**: tasks carrying the same :class:`GangSpec` ``(kernel, key)``
are grouped by :func:`~repro.exec.runner.run_tasks` and handed — as one
batch — to the named *gang kernel*, a module-level function that may
evaluate the whole scenario axis at once.

The contract a kernel must honour:

* ``kernel(tasks) -> list`` positionally aligned with ``tasks``;
* every non-:data:`DEFECT` element is **bitwise identical** to what
  ``tasks[i].execute()`` would have returned;
* a scenario the kernel cannot batch exactly — an ambient fault plan, a
  per-scenario exception, control flow that diverges from the pilot —
  is *defected*: the kernel returns :data:`DEFECT` in that slot and the
  runner falls back to the ordinary per-task (event-kernel) path for
  it.  Defection is always safe because the per-task path is the
  definition of correct.

Gang membership is **not** part of the task's cache identity: a ganged
scenario and the same task run solo share one content address, so a
partially cached grid gangs only the misses and the
:class:`~repro.exec.cache.ResultCache` stays oblivious to how an entry
was produced (the entry records ``via`` provenance for humans only).

``REPRO_GANG=auto|off`` (default ``auto``) switches the subsystem; the
CLI's ``report --gang`` flag is the explicit spelling.

Two kernels ship with the library:

* :func:`calgrid_kernel` (here) — the generic *calibration-grid*
  kernel: the group shares ``(target, params, seed)`` and differs only
  in calibration.  It evaluates one scenario with a read-tracking
  calibration, learns which constants the leg actually reads, and
  shares the result with every scenario whose calibration agrees on
  exactly those constants — sound common-subsimulation elimination
  along the scenario axis (see :func:`run_projected` for the argument).
* ``repro.core.sensitivity:gang_cells`` — the sensitivity grid's
  kernel, which decomposes every cell into shape *legs* and runs each
  leg through :func:`run_projected` across all cells at once.

For the batched-numerics tier — solving many scenarios of one fluid
program with the scenario index as a leading array axis — see
:class:`repro.sim.fluid.GangFluidProgram`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import Calibration
    from repro.exec.task import SimTask

__all__ = [
    "DEFECT",
    "EvalError",
    "GANG_MODES",
    "GangSpec",
    "GangStats",
    "calgrid_key",
    "calgrid_kernel",
    "gang_calgrid",
    "gang_mode",
    "run_projected",
]

#: Recognized ``REPRO_GANG`` values.
GANG_MODES = ("auto", "off")


class _Defect:
    """Sentinel: this scenario must fall back to the per-task path."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DEFECT>"


#: Returned by a gang kernel in a scenario's slot to defect it back to
#: the scalar event-kernel path.
DEFECT = _Defect()


class EvalError:
    """A scenario evaluation that raised; carried as a value, not raised.

    :func:`run_projected` stores one of these in the failing scenario's
    slot so sibling scenarios still batch; kernels turn it into
    :data:`DEFECT` and the per-task path re-runs (and re-raises) it.
    """

    __slots__ = ("exception",)

    def __init__(self, exception: BaseException) -> None:
        self.exception = exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EvalError {self.exception!r}>"


def gang_mode() -> str:
    """The mode named by ``REPRO_GANG`` (default: ``auto``)."""
    mode = os.environ.get("REPRO_GANG", "").strip().lower()
    if not mode:
        return "auto"
    if mode not in GANG_MODES:
        raise ValueError(
            f"REPRO_GANG must be one of {GANG_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class GangSpec:
    """Opt-in gang metadata on a task (excluded from the cache identity).

    ``kernel`` is an importable ``"package.module:function"`` gang
    kernel; ``key`` is the structural group key — tasks gang together
    exactly when both match.  Planners must choose ``key`` so that the
    kernel's grouping precondition holds (e.g. :func:`calgrid_key`
    folds in target, params and seed, leaving only the calibration to
    vary inside a group).
    """

    kernel: str
    key: str

    def __post_init__(self) -> None:
        module, sep, func = self.kernel.partition(":")
        if not sep or not module or not func:
            raise ValueError(
                f"kernel must look like 'package.module:function', got {self.kernel!r}"
            )


class GangStats:
    """Process-wide gang counters (mirrors :class:`~repro.sim.fluid.FluidStats`).

    ``scenarios_ganged`` counts tasks whose result came out of a gang
    kernel, ``scenarios_defected`` those a kernel handed back to the
    per-task path, ``scenarios_solo`` gang-eligible tasks that ran
    per-task because their group had a single member, and ``groups``
    the kernel invocations.  The class-level totals aggregate across
    the whole process so report footers need no handle on the runner.
    """

    total_ganged = 0
    total_defected = 0
    total_solo = 0
    total_groups = 0

    @classmethod
    def process_totals(cls) -> dict[str, int]:
        """The process-global counters as a plain dict."""
        return {
            "scenarios_ganged": cls.total_ganged,
            "scenarios_defected": cls.total_defected,
            "scenarios_solo": cls.total_solo,
            "groups": cls.total_groups,
        }

    @classmethod
    def note_group(cls, ganged: int, defected: int) -> None:
        """Record one kernel invocation's outcome."""
        cls.total_groups += 1
        cls.total_ganged += ganged
        cls.total_defected += defected

    @classmethod
    def note_solo(cls, n: int = 1) -> None:
        """Record gang-eligible tasks that ran per-task (group of one)."""
        cls.total_solo += n


def resolve_kernel(path: str) -> Callable[[Sequence["SimTask"]], List[Any]]:
    """Import and return the gang kernel named by *path*."""
    module, _, func = path.partition(":")
    fn = getattr(importlib.import_module(module), func, None)
    if fn is None:
        raise AttributeError(f"gang kernel {path!r} does not exist")
    return fn


# --------------------------------------------------------------------------
# The calibration-projection machinery shared by grid kernels.
# --------------------------------------------------------------------------

def run_projected(fn: Callable[["Calibration"], Any],
                  cals: Sequence["Calibration"]) -> List[Any]:
    """Evaluate ``fn(cal)`` for every scenario, sharing provably equal runs.

    The first time a calibration with a new *projection* appears, ``fn``
    runs with a read-tracking calibration that records exactly which
    constants the evaluation read.  Every later scenario whose
    calibration agrees on **all** of those constants shares the stored
    result without re-running.

    Why that is sound (bitwise, not approximately): ``fn`` is a
    deterministic function whose only scenario-dependent input is the
    calibration, and it observes the calibration exclusively through
    attribute reads (the tracking subclass intercepts every field
    access, including those made by ``replace``/``asdict``, which read
    every field and thus conservatively mark everything).  Replaying the
    recorded execution with a calibration that returns identical values
    for every recorded read reproduces, by induction over the reads in
    program order, the identical branch decisions, identical subsequent
    reads and identical arithmetic — hence the identical result.

    A scenario whose evaluation raises gets an :class:`EvalError` in its
    slot (and no projection class, so an identical later calibration
    re-runs and re-fails rather than silently sharing a failure).
    """
    from repro.core.calibration import tracking_calibration

    classes: List[Tuple[Tuple[str, ...], Tuple[Any, ...], Any]] = []
    out: List[Any] = []
    for cal in cals:
        for reads, projection, value in classes:
            if tuple(getattr(cal, name) for name in reads) == projection:
                out.append(value)
                break
        else:
            reads_sink: set = set()
            try:
                value = fn(tracking_calibration(cal, reads_sink))
            except Exception as exc:
                out.append(EvalError(exc))
                continue
            reads = tuple(sorted(reads_sink))
            classes.append(
                (reads, tuple(getattr(cal, name) for name in reads), value)
            )
            out.append(value)
    return out


def calgrid_key(target: str, params: dict, seed: int) -> str:
    """Group key for :func:`calgrid_kernel`: everything but the calibration."""
    from repro.exec.task import _canonical

    material = json.dumps(
        {"target": target, "params": _canonical(params), "seed": seed},
        sort_keys=True, separators=(",", ":"),
    )
    return "calgrid:" + hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def gang_calgrid(task: "SimTask") -> "SimTask":
    """*task*, marked eligible for the generic calibration-grid kernel.

    Planners wrap each leg task on the way out of ``plan``; the task is
    unchanged except for the gang metadata (same identity, same cache
    key), so it gangs only when a sweep actually produces siblings that
    differ in nothing but calibration.
    """
    spec = GangSpec(kernel="repro.exec.gang:calgrid_kernel",
                    key=calgrid_key(task.target, task.params, task.seed))
    return dataclasses.replace(task, gang=spec)


def calgrid_kernel(tasks: Sequence["SimTask"]) -> List[Any]:
    """Generic gang kernel for groups that differ only in calibration.

    Precondition (guaranteed by :func:`calgrid_key` grouping): every
    task shares ``(target, params, seed)``.  An ambient fault plan
    defects the whole group — fault arming couples scenarios to event
    order, which is exactly what the per-task event kernel owns — and a
    scenario whose evaluation raises defects alone, so the error
    surfaces from the ordinary path with its usual traceback.
    """
    from repro.core.calibration import CALIBRATION
    from repro.faults.plan import ambient_spec

    if ambient_spec():
        return [DEFECT] * len(tasks)
    lead = tasks[0]
    fn = lead.resolve()
    cals = [t.cal if t.cal is not None else CALIBRATION for t in tasks]
    values = run_projected(
        lambda cal: fn(seed=lead.seed, cal=cal, **lead.params), cals
    )
    return [DEFECT if isinstance(v, EvalError) else v for v in values]
