"""Content-addressed on-disk cache of simulation results.

Each entry is one pickled ``{"key": ..., "result": ...}`` mapping stored
at ``<dir>/<key[:2]>/<key>.pkl``, where ``key`` is the SHA-256 of the
task's identity (target, params, seed, calibration) plus the
:func:`~repro.exec.fingerprint.code_fingerprint` of the library.  A key
therefore changes — and the old entry is simply never looked up again —
whenever any calibration field, parameter, seed, or line of library
source changes.

Entries may also carry a ``via`` key recording how the result was
produced (``"task"`` for the per-task path, ``"gang"`` for a scenario
sliced out of a gang-kernel batch — see :mod:`repro.exec.gang`).  The
provenance is informational only: gang and per-task results are
bit-identical by contract, so lookups ignore it, and entries without
the key (written before the field existed) load unchanged.

Corrupt, truncated or mismatched entries are treated as misses: the
offending file is deleted and the task recomputed.  Writes go through a
temporary file and :func:`os.replace`, so concurrent writers (parallel
benchmark shards, two CI jobs on one runner) can only ever publish a
complete entry.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exec.fingerprint import code_fingerprint
from repro.exec.task import SimTask

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/store/discard counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries found corrupt/mismatched and deleted (each also counts a miss).
    discarded: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for report footers and JSON artifacts)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discarded": self.discarded,
        }

    def __str__(self) -> str:
        out = f"{self.hits} hits / {self.misses} misses"
        if self.discarded:
            out += f" ({self.discarded} discarded)"
        return out


class ResultCache:
    """Content-addressed pickle store for :class:`SimTask` results."""

    def __init__(self, cache_dir: os.PathLike | str,
                 fingerprint: Optional[str] = None):
        self.dir = pathlib.Path(cache_dir)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.stats = CacheStats()

    def key_for(self, task: SimTask) -> str:
        """The task's content address under this cache's code fingerprint."""
        return task.cache_key(self.fingerprint)

    def _path(self, key: str) -> pathlib.Path:
        return self.dir / key[:2] / f"{key}.pkl"

    def get(self, task: SimTask) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss."""
        key = self.key_for(task)
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("cache entry key mismatch")
            result = entry["result"]
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            # Truncated pickle, foreign bytes, stale schema: drop and recompute.
            self.stats.discarded += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, result

    def put(self, task: SimTask, result: Any, via: str = "task") -> None:
        """Store *result*; I/O failures are swallowed (cache is best-effort).

        *via* records execution provenance (``"task"`` or ``"gang"``) in
        the entry; it is never part of the key and never checked on read.
        """
        key = self.key_for(task)
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump({"key": key, "result": result, "via": via}, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stats.stores += 1

    def __repr__(self) -> str:
        return (f"<ResultCache dir={str(self.dir)!r} "
                f"fingerprint={self.fingerprint} {self.stats}>")
