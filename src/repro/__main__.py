"""Command-line interface: run experiments and build the reproduction ledger.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig09            # run one experiment, print report
    python -m repro run all              # run everything
    python -m repro report [-o FILE]     # regenerate EXPERIMENTS.md
    python -m repro report -j 4          # ... fanned across 4 worker processes
    python -m repro run fig09 --full     # paper-scale durations
    python -m repro run fig09 --faults "link-down@link:1,at=5,duration=2"

Exit status is non-zero if any paper-anchored check diverges.

Independent simulation tasks fan out across ``--jobs`` worker processes
and are served from a content-addressed result cache under
``--cache-dir`` (reports only; disable with ``--no-cache``).  Output is
byte-identical whatever the jobs count or cache state — parallelism and
caching only change the wall clock.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import experiments as E
from repro.core.reportgen import generate_experiments_md
from repro.exec import ResultCache, executor


def _all_modules():
    out = dict(E.ALL_FIGURES)
    out.update({f"ablation-{k}": v for k, v in E.ALL_ABLATIONS.items()})
    out.update({f"ext-{k}": v for k, v in E.ALL_EXTENSIONS.items()})
    return out


def cmd_list(_args) -> int:
    """List the available experiments."""
    mods = _all_modules()
    width = max(len(k) for k in mods)
    for name, module in mods.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<{width}}  {doc}")
    return 0


def _apply_faults_flag(args) -> int:
    """Export ``--faults`` as REPRO_FAULTS (inherited by worker processes).

    Validates the spec up front so a typo fails fast with a parse error
    instead of surfacing from inside a worker mid-run.
    """
    spec = getattr(args, "faults", None)
    if spec is None:
        return 0
    from repro.faults.plan import REPRO_FAULTS_ENV, FaultPlan

    try:
        FaultPlan.parse(spec)
    except ValueError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2
    os.environ[REPRO_FAULTS_ENV] = spec
    return 0


def cmd_run(args) -> int:
    """Run one experiment (or all) and print its report."""
    rc = (_apply_faults_flag(args) or _apply_service_flags(args)
          or _apply_availability_flags(args) or _apply_gang_flag(args))
    if rc:
        return rc
    mods = _all_modules()
    names = list(mods) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in mods]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(mods)}", file=sys.stderr)
        return 2
    failures = 0
    with executor(jobs=args.jobs):
        for name in names:
            t0 = time.time()
            report = mods[name].run(quick=not args.full, seed=args.seed)
            print(report.render())
            print(f"\n[{name} finished in {time.time() - t0:.1f}s wall]\n")
            if not report.all_ok:
                failures += 1
    if failures:
        print(f"{failures} experiment(s) diverged from the paper",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_report(args) -> int:
    """Regenerate the EXPERIMENTS.md ledger."""
    rc = (_apply_faults_flag(args) or _apply_service_flags(args)
          or _apply_availability_flags(args) or _apply_gang_flag(args))
    if rc:
        return rc
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    stats: dict = {}

    def _generate() -> str:
        return generate_experiments_md(quick=not args.full, seed=args.seed,
                                       verbose=True, jobs=args.jobs,
                                       cache=cache, stats=stats)

    if args.profile is None:
        text = _generate()
    else:
        text = _profiled(_generate, top=args.profile)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    cache_note = (
        f"cache: {stats['cache']['hits']} hits / {stats['cache']['misses']} "
        f"misses (dir: {args.cache_dir})"
        if stats.get("cache") is not None else "cache: disabled"
    )
    # The footer goes to the console, never into the ledger: EXPERIMENTS.md
    # must stay byte-identical across jobs counts and cache states.
    print(f"[report] jobs={stats['jobs']}  tasks={stats['tasks']} "
          f"(executed {stats['executed']})  {cache_note}  "
          f"wall={stats['wall_seconds']:.2f}s")
    fluid = stats.get("fluid")
    if fluid is not None:
        print(f"[fluid] solver={fluid['solver']}  "
              f"rebalances={fluid['rebalances']}  "
              f"allocations={fluid['allocations']}  "
              f"recomputed={fluid['flows_recomputed']}  "
              f"skipped={fluid['flows_skipped']}")
    sampler = stats.get("sampler")
    if sampler is not None:
        print(f"[sampler] backend={sampler['backend']}  "
              f"samples_backfilled={sampler['samples_backfilled']}  "
              f"events_skipped={sampler['events_skipped']}")
    faults = stats.get("faults")
    if faults is not None:
        plan_note = "ambient" if faults.get("plan") else "none"
        print(f"[faults] plan={plan_note}  "
              f"injected={faults['faults_injected']}  "
              f"domains={faults['domain_faults']}  "
              f"retransmitted_bytes={faults['retransmitted_bytes']:.0f}  "
              f"reconnects={faults['reconnects']}  "
              f"recovery_seconds={faults['recovery_seconds']:.2f}")
    service = stats.get("service")
    if service is not None:
        print(f"[service] submitted={service['submitted']}  "
              f"completed={service['completed']}  "
              f"shed={service['shed']}  "
              f"rescheduled={service['rescheduled']}  "
              f"remote_placements={service['remote_placements']}  "
              f"crashes={service['crashes']}  "
              f"replayed={service['replayed']}  "
              f"lost={service['lost']}")
    gang = stats.get("gang")
    if gang is not None:
        print(f"[gang] scenarios_ganged={gang['scenarios_ganged']}  "
              f"defected={gang['scenarios_defected']}  "
              f"solo={gang['scenarios_solo']}  "
              f"groups={gang['groups']}")
    shard = stats.get("shard")
    if shard is not None:
        print(f"[shard] runs={shard['runs']}  "
              f"rounds={shard['rounds']}  "
              f"cells_run={shard['cells_run']}  "
              f"early_accepts={shard['early_accepts']}  "
              f"unconverged={shard['unconverged']}")
    if args.stats_json:
        with open(args.stats_json, "w") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def _profiled(fn, top: int):
    """Run *fn* under cProfile, dump the top-N cumulative rows to stderr."""
    import cProfile
    import pstats

    prof = cProfile.Profile()
    result = prof.runcall(fn)
    stats = pstats.Stats(prof, stream=sys.stderr)
    stats.sort_stats("cumulative").print_stats(top)
    return result


def _jobs_type(text: str) -> int:
    """Parse ``--jobs``: a positive integer, or ``auto`` for one per core.

    0 and negative counts are rejected here, at the argparse boundary,
    so the error names the flag instead of surfacing as a hung pool or
    a ValueError from deep inside the executor.
    """
    if text.strip().lower() == "auto":
        return 0  # the executor's one-worker-per-core sentinel
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}") from None
    if jobs <= 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (or 'auto' for one worker per CPU core), got {jobs}")
    return jobs


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-j", "--jobs", type=_jobs_type, default=None, metavar="N",
        help="fan independent simulation tasks across N worker processes "
        "('auto' = one per CPU core; default: the REPRO_JOBS environment "
        "variable, else 1, fully serial)")


def _add_faults_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject faults into every simulation context: a "
        "semicolon-separated plan like "
        "'link-down@link:1,at=5,duration=2' (sets REPRO_FAULTS; part "
        "of the result-cache identity; see docs/MODELING.md section 9)")


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--service-policy", default=None, metavar="POLICY",
        help="baseline policy the ext-service capacity curves compare "
        "numa-aware against: numa-blind (default) or fifo (sets "
        "REPRO_SERVICE_POLICY; part of the result-cache identity)")
    parser.add_argument(
        "--arrival-rate", default=None, type=float, metavar="JOBS_PER_S",
        help="ext-service offered load in jobs/s per host (sets "
        "REPRO_SERVICE_ARRIVAL; part of the result-cache identity)")


def _add_availability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--availability-hosts", default=None, metavar="N[,N...]",
        help="host counts the ext-availability sweep runs, e.g. '128' or "
        "'128,512' (sets REPRO_AVAIL_HOSTS; part of the result-cache "
        "identity)")
    parser.add_argument(
        "--availability-rates", default=None, metavar="R[,R...]",
        help="ToR fault rates (fraction of pods cut) for ext-availability, "
        "e.g. '0.5' or '0.25,0.5,1.0' (sets REPRO_AVAIL_RATE; part of "
        "the result-cache identity)")


def _apply_availability_flags(args) -> int:
    """Export the ext-availability sweep knobs (inherited by workers).

    Validated up front like ``--faults``: a malformed list fails here
    with the flag's name, not from inside a worker mid-run.
    """
    hosts = getattr(args, "availability_hosts", None)
    if hosts is not None:
        try:
            parsed = [int(tok) for tok in hosts.split(",") if tok.strip()]
            if not parsed or any(h <= 0 for h in parsed):
                raise ValueError
        except ValueError:
            print(f"bad --availability-hosts: expected positive integers, "
                  f"got {hosts!r}", file=sys.stderr)
            return 2
        os.environ["REPRO_AVAIL_HOSTS"] = hosts
    rates = getattr(args, "availability_rates", None)
    if rates is not None:
        try:
            parsed_r = [float(tok) for tok in rates.split(",") if tok.strip()]
            if not parsed_r or any(r < 0 for r in parsed_r):
                raise ValueError
        except ValueError:
            print(f"bad --availability-rates: expected non-negative "
                  f"numbers, got {rates!r}", file=sys.stderr)
            return 2
        os.environ["REPRO_AVAIL_RATE"] = rates
    return 0


def _add_gang_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gang", default=None, choices=("auto", "off"),
        help="gang execution of dense scenario sweeps: 'auto' batches "
        "grids sharing a gang kernel into one scenario-axis program, "
        "'off' forces the per-task path (sets REPRO_GANG; results are "
        "byte-identical either way — only the wall clock changes)")


def _apply_gang_flag(args) -> int:
    """Export ``--gang`` as REPRO_GANG (inherited by worker processes)."""
    mode = getattr(args, "gang", None)
    if mode is not None:
        os.environ["REPRO_GANG"] = mode
    return 0


def _apply_service_flags(args) -> int:
    """Export the service-experiment knobs (inherited by workers).

    Validated up front like ``--faults``: a bad policy or rate fails
    here with the flag's name, not from inside a worker mid-run.
    """
    policy = getattr(args, "service_policy", None)
    if policy is not None:
        from repro.service import POLICIES

        if policy not in POLICIES:
            print(f"bad --service-policy: must be one of "
                  f"{', '.join(POLICIES)}, got {policy!r}", file=sys.stderr)
            return 2
        os.environ["REPRO_SERVICE_POLICY"] = policy
    rate = getattr(args, "arrival_rate", None)
    if rate is not None:
        if rate <= 0:
            print(f"bad --arrival-rate: must be > 0, got {rate:g}",
                  file=sys.stderr)
            return 2
        os.environ["REPRO_SERVICE_ARRIVAL"] = repr(rate)
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NUMA-aware RDMA end-to-end transfer systems (SC'13) "
        "reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="enumerate experiments").set_defaults(
        fn=cmd_list)

    # REPRO_FULL=1 in the environment is equivalent to passing --full
    # (the benchmarks and CI full-scale smoke use the env form).
    full_default = os.environ.get("REPRO_FULL", "") == "1"

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment")
    p_run.add_argument("--full", action="store_true", default=full_default,
                       help="paper-scale durations (minutes of simulated "
                       "time); also enabled by REPRO_FULL=1")
    p_run.add_argument("--seed", type=int, default=0)
    _add_jobs_flag(p_run)
    _add_faults_flag(p_run)
    _add_service_flags(p_run)
    _add_availability_flags(p_run)
    _add_gang_flag(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_rep = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md",
        description="Regenerate the EXPERIMENTS.md reproduction ledger. "
        "Independent simulation runs are cached on disk by content address "
        "(calibration + parameters + seed + code fingerprint), so repeated "
        "invocations skip already-computed runs; --jobs fans cache misses "
        "across worker processes. The written ledger is byte-identical "
        "whatever the jobs count or cache state.")
    p_rep.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p_rep.add_argument("--full", action="store_true", default=full_default,
                       help="paper-scale durations; also enabled by "
                       "REPRO_FULL=1")
    p_rep.add_argument("--seed", type=int, default=0)
    _add_jobs_flag(p_rep)
    _add_faults_flag(p_rep)
    _add_service_flags(p_rep)
    _add_availability_flags(p_rep)
    _add_gang_flag(p_rep)
    p_rep.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="directory of the content-addressed result cache "
        "(default: .repro-cache)")
    p_rep.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache: recompute every simulation run")
    p_rep.add_argument(
        "--profile", type=int, nargs="?", const=30, default=None, metavar="N",
        help="run under cProfile and print the top N functions by "
        "cumulative time to stderr (default N: 30)")
    p_rep.add_argument(
        "--stats-json", default=None, metavar="FILE",
        help="also write executor stats (jobs, task count, cache "
        "hits/misses, wall seconds) to FILE as JSON")
    p_rep.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
