"""Command-line interface: run experiments and build the reproduction ledger.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig09            # run one experiment, print report
    python -m repro run all              # run everything
    python -m repro report [-o FILE]     # regenerate EXPERIMENTS.md
    python -m repro run fig09 --full     # paper-scale durations

Exit status is non-zero if any paper-anchored check diverges.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import experiments as E
from repro.core.reportgen import generate_experiments_md


def _all_modules():
    out = dict(E.ALL_FIGURES)
    out.update({f"ablation-{k}": v for k, v in E.ALL_ABLATIONS.items()})
    out.update({f"ext-{k}": v for k, v in E.ALL_EXTENSIONS.items()})
    return out


def cmd_list(_args) -> int:
    """List the available experiments."""
    mods = _all_modules()
    width = max(len(k) for k in mods)
    for name, module in mods.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<{width}}  {doc}")
    return 0


def cmd_run(args) -> int:
    """Run one experiment (or all) and print its report."""
    mods = _all_modules()
    names = list(mods) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in mods]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(mods)}", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        t0 = time.time()
        report = mods[name].run(quick=not args.full, seed=args.seed)
        print(report.render())
        print(f"\n[{name} finished in {time.time() - t0:.1f}s wall]\n")
        if not report.all_ok:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) diverged from the paper",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_report(args) -> int:
    """Regenerate the EXPERIMENTS.md ledger."""
    text = generate_experiments_md(quick=not args.full, seed=args.seed,
                                   verbose=True)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NUMA-aware RDMA end-to-end transfer systems (SC'13) "
        "reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="enumerate experiments").set_defaults(
        fn=cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment")
    p_run.add_argument("--full", action="store_true",
                       help="paper-scale durations (minutes of simulated time)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(fn=cmd_run)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p_rep.add_argument("--full", action="store_true")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
