"""Discrete-event + fluid-flow simulation kernel.

This subpackage is a from-scratch simulation engine in the style of SimPy,
extended with a *fluid max-min fair-share* layer (:mod:`repro.sim.fluid`)
used to model every throughput-limited resource in the system — network
links, PCIe slots, memory banks, inter-socket (QPI) links and CPU stages.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.engine.Process` / generator-based coroutines.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container` — classic queueing resources.
* :class:`~repro.sim.fluid.FluidResource`, :class:`~repro.sim.fluid.FluidScheduler`
  — bandwidth sharing.
* :class:`~repro.sim.trace.ThroughputProbe`, :class:`~repro.sim.trace.TimeSeries`
  — measurement.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimStats,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.fluid import (
    SOLVERS,
    FluidFlow,
    FluidResource,
    FluidScheduler,
    FluidStats,
    default_solver,
)
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.sampling import SAMPLERS, SamplerHub, default_sampler, hub_for
from repro.sim.trace import EventRateProbe, ThroughputProbe, TimeSeries, TraceLog

__all__ = [
    "Simulator",
    "SimStats",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "FluidResource",
    "FluidFlow",
    "FluidScheduler",
    "FluidStats",
    "SOLVERS",
    "default_solver",
    "SAMPLERS",
    "SamplerHub",
    "default_sampler",
    "hub_for",
    "RngRegistry",
    "TimeSeries",
    "ThroughputProbe",
    "EventRateProbe",
    "TraceLog",
]
