"""Named, reproducible random-number streams.

Every stochastic component pulls its own named stream from a single
:class:`RngRegistry`, so that (a) runs are exactly reproducible from one
root seed, and (b) adding a new random consumer does not perturb the
draws seen by existing ones (streams are independent by name, not by
draw order).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for *name*."""
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (root seed, stable hash of name).
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(tag,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry with a seed derived from this one (for sub-experiments)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) % (2**63))

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
