"""Classic queueing resources for the event engine.

* :class:`Resource` — N identical servers, FIFO queue of requests.
* :class:`PriorityResource` — like :class:`Resource` but the queue is
  ordered by a numeric priority (lower first).
* :class:`Store` — an unbounded/bounded FIFO of Python objects
  (producer/consumer queues, e.g. SCSI command queues).
* :class:`Container` — a level of continuous "stuff" (credits, tokens).

All acquisition methods return :class:`~repro.sim.engine.Event`s to be
yielded from processes.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` (also a context token)."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """*capacity* identical servers with a FIFO request queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: list[tuple[float, int, Request]] = []
        self._seq = count()

    # -- introspection -------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    # -- protocol --------------------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        """Claim one server; yield the returned event to wait for it."""
        req = Request(self, priority)
        heapq.heappush(self._queue, (priority, next(self._seq), req))
        self._grant()
        return req

    def release(self, req: Request) -> None:
        """Release a previously granted request."""
        if req not in self._users:
            raise SimulationError("release() of a request that is not a user")
        self._users.discard(req)
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, req = heapq.heappop(self._queue)
            if req.triggered:  # cancelled
                continue
            self._users.add(req)
            req.succeed(req)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} {self.count}/{self.capacity} used,"
            f" {self.queue_len} queued>"
        )


class PriorityResource(Resource):
    """Alias of :class:`Resource`; pass ``priority=`` to ``request``."""


class Store:
    """FIFO of arbitrary items with optional capacity bound."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[tuple[Event, Optional[Callable[[Any], bool]]]] = []
        self._putters: list[tuple[Event, Any]] = []

    @property
    def items(self) -> list[Any]:
        """The queued items (read-only view by convention)."""
        return self._items

    def put(self, item: Any) -> Event:
        """Append *item*; blocks (as an event) while the store is full."""
        ev = Event(self.sim, name="store-put")
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Pop the oldest item (matching *predicate* if given)."""
        ev = Event(self.sim, name="store-get")
        self._getters.append((ev, predicate))
        self._dispatch()
        return ev

    def try_get(self) -> Any:
        """Non-blocking pop; returns the item or None if empty."""
        if not self._items:
            return None
        item = self._items.pop(0)
        self._dispatch()
        return item

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # admit putters while there is room
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                ev, item = self._putters.pop(0)
                if ev.triggered:
                    continue
                self._items.append(item)
                ev.succeed(item)
                progress = True
            # satisfy getters
            i = 0
            while i < len(self._getters) and self._items:
                ev, pred = self._getters[i]
                if ev.triggered:
                    self._getters.pop(i)
                    continue
                idx = None
                if pred is None:
                    idx = 0
                else:
                    for j, item in enumerate(self._items):
                        if pred(item):
                            idx = j
                            break
                if idx is None:
                    i += 1
                    continue
                item = self._items.pop(idx)
                self._getters.pop(i)
                ev.succeed(item)
                progress = True

    def __len__(self) -> int:
        return len(self._items)


class Container:
    """A continuous level in ``[0, capacity]`` (credits, budgets)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not (0 <= init <= capacity):
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[Event, float]] = []
        self._putters: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add an amount; blocks (as an event) at capacity."""
        if amount <= 0:
            raise ValueError(f"put amount must be > 0, got {amount}")
        ev = Event(self.sim, name="container-put")
        self._putters.append((ev, amount))
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        """Take an amount; blocks (as an event) until available."""
        if amount <= 0:
            raise ValueError(f"get amount must be > 0, got {amount}")
        ev = Event(self.sim, name="container-get")
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity + 1e-12:
                    self._putters.pop(0)
                    self._level = min(self.capacity, self._level + amount)
                    ev.succeed(amount)
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level + 1e-12:
                    self._getters.pop(0)
                    self._level = max(0.0, self._level - amount)
                    ev.succeed(amount)
                    progress = True
