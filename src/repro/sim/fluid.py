"""Fluid max-min fair bandwidth sharing.

This module is the performance heart of the library.  Every
throughput-limited entity in the modelled system — a network link
direction, a PCIe slot, a NUMA memory bank, a QPI link, a kernel protocol
stage — is a :class:`FluidResource` with a capacity in bytes/second.  A
data stream is a :class:`FluidFlow` that traverses a set of resources,
charging ``weight`` bytes of capacity on each resource per payload byte
(a memory *copy* charges the memory system twice: one read + one write).

Rates are assigned by **progressive filling** (water-filling), the textbook
construction of the max-min fair allocation with per-flow rate caps:

1. grow all unfrozen flows' rates uniformly;
2. freeze a flow when it hits its cap, or when any resource it uses
   saturates;
3. repeat until all flows are frozen.

The scheduler integrates with the event engine: whenever the flow set (or
a capacity, or a cap) changes, rates are recomputed and the next flow
completion is rescheduled.  In between changes, transfer progress is exact
(piecewise-linear fluid), so the simulation cost is proportional to the
number of flow arrivals/departures — *not* to bytes moved — which is what
makes simulating minutes of 100 Gbps traffic tractable.

Flows may carry *charges*: ``(account, cost_per_byte)`` pairs debited as
bytes progress.  The kernel layer uses this to account CPU seconds per
byte of protocol processing, reproducing the paper's getrusage/perf
measurements (Fig. 4, 8, 10, 12, 14).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Protocol, Sequence

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["FluidResource", "FluidFlow", "FluidScheduler", "FluidStats", "ChargeAccount"]

_EPS = 1e-9


class FluidStats:
    """Allocator counters: how much work incremental rebalancing avoids.

    ``rebalances`` counts :meth:`FluidScheduler._rebalance` calls,
    ``allocations`` those that actually recomputed rates (a dirty set was
    pending), ``flows_recomputed`` the flows touched by progressive
    filling, and ``flows_skipped`` the active flows whose cached rates
    were provably unaffected and therefore reused.
    """

    __slots__ = ("rebalances", "allocations", "flows_recomputed", "flows_skipped")

    def __init__(self) -> None:
        self.rebalances = 0
        self.allocations = 0
        self.flows_recomputed = 0
        self.flows_skipped = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "rebalances": self.rebalances,
            "allocations": self.allocations,
            "flows_recomputed": self.flows_recomputed,
            "flows_skipped": self.flows_skipped,
        }

    def __repr__(self) -> str:
        return (
            f"<FluidStats rebalances={self.rebalances} "
            f"allocations={self.allocations} "
            f"recomputed={self.flows_recomputed} skipped={self.flows_skipped}>"
        )


class ChargeAccount(Protocol):
    """Anything that can accumulate a per-byte charge (e.g. CPU seconds)."""

    def add(self, amount: float) -> None:  # pragma: no cover - protocol
        """Accumulate an amount."""
        ...


class FluidResource:
    """A capacity-limited resource shared by fluid flows.

    Capacity is in bytes/second of *weighted* flow throughput.  Capacity
    may change at runtime (e.g. SSD thermal throttling); the scheduler
    rebalances all flows when it does.
    """

    def __init__(self, scheduler: "FluidScheduler", capacity: float, name: str = ""):
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.scheduler = scheduler
        self.name = name
        self._capacity = float(capacity)
        scheduler._resources.append(self)

    @property
    def capacity(self) -> float:
        """Current capacity (bytes/second)."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change capacity and rebalance active flows."""
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if capacity == self._capacity:
            return
        self.scheduler.settle()
        self._capacity = float(capacity)
        self.scheduler._dirty[self] = None
        self.scheduler._rebalance()

    @property
    def load(self) -> float:
        """Current weighted demand through this resource (bytes/s).

        Served from the scheduler's per-resource cache, refreshed on every
        rebalance — O(1) instead of a scan over all active flows.
        """
        return self.scheduler._load.get(self, 0.0)

    @property
    def utilization(self) -> float:
        """Load divided by capacity (0 if capacity is 0)."""
        return self.load / self._capacity if self._capacity > 0 else 0.0

    def __repr__(self) -> str:
        return f"<FluidResource {self.name!r} cap={self._capacity:.3g} B/s>"


class FluidFlow:
    """A stream of bytes traversing a set of resources.

    Parameters
    ----------
    path:
        ``(resource, weight)`` pairs.  Weight is capacity consumed per
        payload byte (e.g. 2.0 for a copy on a memory-bandwidth resource).
        Duplicated resources accumulate weight.
    size:
        Total payload bytes, or ``None`` for an open-ended flow that runs
        until :meth:`FluidScheduler.stop`.
    cap:
        Optional maximum rate (bytes/s) — models serial-thread limits,
        TCP windows and NIC line rates not shared with other flows.
    charges:
        ``(account, cost_per_byte)`` pairs debited as the flow progresses.
    """

    __slots__ = (
        "name",
        "size",
        "cap",
        "charges",
        "_weights",
        "rate",
        "transferred",
        "done",
        "_active",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        path: Iterable[tuple[FluidResource, float]],
        size: Optional[float],
        cap: Optional[float] = None,
        charges: Sequence[tuple[Any, float]] = (),
        name: str = "",
    ):
        weights: dict[FluidResource, float] = {}
        for res, w in path:
            if w <= 0 or math.isnan(w):
                raise ValueError(f"flow weight must be > 0, got {w}")
            weights[res] = weights.get(res, 0.0) + w
        if size is not None and (size <= 0 or math.isnan(size)):
            raise ValueError(f"flow size must be > 0 or None, got {size}")
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        if cap is None and not any(
            math.isfinite(r.capacity) for r in weights
        ):
            raise ValueError(
                f"flow {name!r} is unbounded: no cap and no finite resource on path"
            )
        self.name = name
        self.size = None if size is None else float(size)
        self.cap = None if cap is None else float(cap)
        self.charges = tuple(charges)
        self._weights = weights
        self.rate = 0.0
        self.transferred = 0.0
        self.done: Optional[Event] = None
        self._active = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def remaining(self) -> Optional[float]:
        """Bytes left, or None for open-ended flows."""
        if self.size is None:
            return None
        return max(0.0, self.size - self.transferred)

    def __repr__(self) -> str:
        return (
            f"<FluidFlow {self.name!r} rate={self.rate:.3g} "
            f"transferred={self.transferred:.3g}/{self.size}>"
        )


class FluidScheduler:
    """Allocates rates to active flows and schedules their completions."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._resources: list[FluidResource] = []
        self._active: list[FluidFlow] = []
        self._last_settle = sim.now
        self._timer_generation = 0
        # Incremental-allocation state.  ``_users`` maps each resource to
        # its active flows (insertion-ordered for run-to-run determinism);
        # ``_dirty``/``_dirty_flows`` seed the next allocation's affected
        # set; ``_load`` caches each resource's allocated weighted demand.
        self._users: dict[FluidResource, dict[FluidFlow, None]] = {}
        self._dirty: dict[FluidResource, None] = {}
        self._dirty_flows: dict[FluidFlow, None] = {}
        self._load: dict[FluidResource, float] = {}
        self.stats = FluidStats()

    # -- public API ------------------------------------------------------------
    def start(self, flow: FluidFlow) -> Event:
        """Activate *flow*; returns its completion event.

        Open-ended flows (``size=None``) complete only via :meth:`stop`.
        """
        if flow._active or flow.done is not None:
            raise SimulationError(f"flow {flow.name!r} already started")
        self.settle()
        flow.done = Event(self.sim, name=f"flow:{flow.name}")
        flow._active = True
        flow.started_at = self.sim.now
        self._active.append(flow)
        for r in flow._weights:
            self._users.setdefault(r, {})[flow] = None
            self._dirty[r] = None
        self._dirty_flows[flow] = None
        self._rebalance()
        return flow.done

    def stop(self, flow: FluidFlow) -> float:
        """Deactivate an open-ended (or unfinished) flow.

        Returns bytes transferred.  The flow's ``done`` event succeeds
        with the transferred byte count.
        """
        if not flow._active:
            raise SimulationError(f"flow {flow.name!r} is not active")
        self.settle()
        self._deactivate(flow)
        self._rebalance()
        return flow.transferred

    def set_cap(self, flow: FluidFlow, cap: Optional[float]) -> None:
        """Change a flow's rate cap (e.g. a TCP window update)."""
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        self.settle()
        flow.cap = cap
        if flow._active:
            for r in flow._weights:
                self._dirty[r] = None
            self._dirty_flows[flow] = None
            self._rebalance()

    def settle(self) -> None:
        """Advance all active flows' progress to the current instant."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            self._last_settle = now
            return
        for flow in self._active:
            rate = flow.rate
            if rate <= 0:
                continue
            delta = rate * elapsed
            size = flow.size
            if size is not None:
                remaining = size - flow.transferred
                if delta > remaining:
                    delta = remaining
            if delta <= 0:
                continue
            flow.transferred += delta
            for account, per_byte in flow.charges:
                account.add(delta * per_byte)
        self._last_settle = now

    @property
    def active_flows(self) -> tuple[FluidFlow, ...]:
        """Snapshot of the currently active flows."""
        return tuple(self._active)

    # -- internals ------------------------------------------------------------
    def _deactivate(self, flow: FluidFlow) -> None:
        flow._active = False
        flow.rate = 0.0
        flow.finished_at = self.sim.now
        self._active.remove(flow)
        users = self._users
        for r in flow._weights:
            res_users = users.get(r)
            if res_users is not None:
                res_users.pop(flow, None)
                if not res_users:
                    del users[r]
            self._dirty[r] = None
        if flow.done is not None and not flow.done.triggered:
            flow.done.succeed(flow.transferred)

    def _rebalance(self) -> None:
        """Recompute the max-min fair rates; reschedule next completion."""
        self.stats.rebalances += 1
        self._allocate()
        self._schedule_next_completion()

    def _affected(self) -> tuple[list[FluidFlow], list[FluidResource]]:
        """Close the dirty seed over the flow/resource sharing graph.

        Max-min fairness decomposes over connected components of the
        bipartite flow-resource graph, so only the components containing a
        dirty resource (or dirty flow) can see their rates change; every
        other active flow keeps its cached rate.
        """
        users = self._users
        affected_flows: list[FluidFlow] = []
        affected_res: list[FluidResource] = []
        seen_flows: set[FluidFlow] = set()
        seen_res: set[FluidResource] = set()
        stack: list[FluidResource] = []
        for r in self._dirty:
            if r not in seen_res:
                seen_res.add(r)
                affected_res.append(r)
                stack.append(r)
        for f in self._dirty_flows:
            if f._active and f not in seen_flows:
                seen_flows.add(f)
                affected_flows.append(f)
                for r in f._weights:
                    if r not in seen_res:
                        seen_res.add(r)
                        affected_res.append(r)
                        stack.append(r)
        while stack:
            r = stack.pop()
            for f in users.get(r, ()):
                if f in seen_flows:
                    continue
                seen_flows.add(f)
                affected_flows.append(f)
                for r2 in f._weights:
                    if r2 not in seen_res:
                        seen_res.add(r2)
                        affected_res.append(r2)
                        stack.append(r2)
        return affected_flows, affected_res

    def _allocate(self) -> None:
        """Recompute max-min fair rates for the components touched by the
        dirty set (incremental progressive filling)."""
        if not self._dirty and not self._dirty_flows:
            return
        flows, touched_res = self._affected()
        self._dirty.clear()
        self._dirty_flows.clear()
        stats = self.stats
        stats.allocations += 1
        stats.flows_recomputed += len(flows)
        stats.flows_skipped += len(self._active) - len(flows)
        load = self._load
        if not flows:
            for r in touched_res:
                load[r] = 0.0
            return

        rate = dict.fromkeys(flows, 0.0)
        unfrozen = dict.fromkeys(flows)
        # Per-resource residual capacity and weight-sum over *unfrozen*
        # users; the weight sums are maintained incrementally as flows
        # freeze instead of being recomputed every filling round.
        residual: dict[FluidResource, float] = {}
        wsum: dict[FluidResource, float] = {}
        ucount: dict[FluidResource, int] = {}  # unfrozen users (exact)
        res_users: dict[FluidResource, list[FluidFlow]] = {}
        for f in flows:
            for r, w in f._weights.items():
                if r not in residual:
                    residual[r] = r.capacity
                    wsum[r] = 0.0
                    ucount[r] = 0
                    res_users[r] = []
                wsum[r] += w
                ucount[r] += 1
                res_users[r].append(f)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 4 * len(flows) + 8:  # pragma: no cover - safety net
                raise SimulationError("progressive filling failed to converge")
            delta = math.inf
            for r, ws in wsum.items():
                if ws > 0 and math.isfinite(residual[r]):
                    d = residual[r] / ws
                    if d < delta:
                        delta = d if d > 0.0 else 0.0
            for f in unfrozen:
                if f.cap is not None:
                    d = f.cap - rate[f]
                    if d < delta:
                        delta = d
            if not math.isfinite(delta):
                names = sorted(f.name for f in unfrozen)
                raise SimulationError(f"unbounded flows in allocation: {names}")
            if delta < 0.0:
                delta = 0.0
            if delta > 0:
                for f in unfrozen:
                    rate[f] += delta
                for r, ws in wsum.items():
                    if ws > 0:
                        residual[r] -= delta * ws
            # freeze flows at their cap, then flows on saturated resources
            newly_frozen = [
                f
                for f in unfrozen
                if f.cap is not None and rate[f] >= f.cap - _EPS * max(1.0, f.cap)
            ]
            frozen_set = set(newly_frozen)
            for r, rest in residual.items():
                if rest <= _EPS * max(1.0, r.capacity):
                    for f in res_users[r]:
                        if f in unfrozen and f not in frozen_set:
                            frozen_set.add(f)
                            newly_frozen.append(f)
            if not newly_frozen:  # pragma: no cover - numerical corner
                newly_frozen = list(unfrozen)
            for f in newly_frozen:
                if f in unfrozen:
                    del unfrozen[f]
                    for r, w in f._weights.items():
                        n = ucount[r] - 1
                        ucount[r] = n
                        # Zero exactly when the last user freezes: the
                        # incremental subtraction leaves fp dust that would
                        # otherwise keep a fully-frozen resource in play.
                        wsum[r] = wsum[r] - w if n else 0.0

        for f in flows:
            f.rate = rate[f]
        users = self._users
        for r in touched_res:
            total = 0.0
            for f in users.get(r, ()):
                total += f._weights[r] * f.rate
            load[r] = total

    def _schedule_next_completion(self) -> None:
        self._timer_generation += 1
        gen = self._timer_generation
        horizon = math.inf
        for f in self._active:
            size = f.size
            if size is None or f.rate <= 0:
                continue
            remaining = size - f.transferred
            if remaining <= _EPS * size:
                horizon = 0.0
                break
            eta = remaining / f.rate
            if eta < horizon:
                horizon = eta
        if not math.isfinite(horizon):
            return
        # The generation rides in the timeout's value so no per-rebalance
        # closure needs to be allocated.
        timer = self.sim.timeout(horizon, gen)
        timer.add_callback(self._on_timer_event)

    def _on_timer_event(self, ev: Event) -> None:
        self._on_timer(ev._value)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later rebalance
        self.settle()
        finished = [
            f
            for f in self._active
            if f.size is not None and f.size - f.transferred <= _EPS * f.size
        ]
        for f in finished:
            f.transferred = f.size  # snap away float dust
            self._deactivate(f)
        self._rebalance()
