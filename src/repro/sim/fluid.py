"""Fluid max-min fair bandwidth sharing.

This module is the performance heart of the library.  Every
throughput-limited entity in the modelled system — a network link
direction, a PCIe slot, a NUMA memory bank, a QPI link, a kernel protocol
stage — is a :class:`FluidResource` with a capacity in bytes/second.  A
data stream is a :class:`FluidFlow` that traverses a set of resources,
charging ``weight`` bytes of capacity on each resource per payload byte
(a memory *copy* charges the memory system twice: one read + one write).

Rates are assigned by **progressive filling** (water-filling), the textbook
construction of the max-min fair allocation with per-flow rate caps:

1. grow all unfrozen flows' rates uniformly;
2. freeze a flow when it hits its cap, or when any resource it uses
   saturates;
3. repeat until all flows are frozen.

The scheduler integrates with the event engine: whenever the flow set (or
a capacity, or a cap) changes, rates are recomputed and the next flow
completion is rescheduled.  In between changes, transfer progress is exact
(piecewise-linear fluid), so the simulation cost is proportional to the
number of flow arrivals/departures — *not* to bytes moved — which is what
makes simulating minutes of 100 Gbps traffic tractable.

Flows may carry *charges*: ``(account, cost_per_byte)`` pairs debited as
bytes progress.  The kernel layer uses this to account CPU seconds per
byte of protocol processing, reproducing the paper's getrusage/perf
measurements (Fig. 4, 8, 10, 12, 14).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Protocol, Sequence

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["FluidResource", "FluidFlow", "FluidScheduler", "ChargeAccount"]

_EPS = 1e-9


class ChargeAccount(Protocol):
    """Anything that can accumulate a per-byte charge (e.g. CPU seconds)."""

    def add(self, amount: float) -> None:  # pragma: no cover - protocol
        """Accumulate an amount."""
        ...


class FluidResource:
    """A capacity-limited resource shared by fluid flows.

    Capacity is in bytes/second of *weighted* flow throughput.  Capacity
    may change at runtime (e.g. SSD thermal throttling); the scheduler
    rebalances all flows when it does.
    """

    def __init__(self, scheduler: "FluidScheduler", capacity: float, name: str = ""):
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.scheduler = scheduler
        self.name = name
        self._capacity = float(capacity)
        scheduler._resources.append(self)

    @property
    def capacity(self) -> float:
        """Current capacity (bytes/second)."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change capacity and rebalance active flows."""
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if capacity == self._capacity:
            return
        self.scheduler.settle()
        self._capacity = float(capacity)
        self.scheduler._rebalance()

    @property
    def load(self) -> float:
        """Current weighted demand through this resource (bytes/s)."""
        total = 0.0
        for flow in self.scheduler._active:
            w = flow._weights.get(self, 0.0)
            if w:
                total += w * flow.rate
        return total

    @property
    def utilization(self) -> float:
        """Load divided by capacity (0 if capacity is 0)."""
        return self.load / self._capacity if self._capacity > 0 else 0.0

    def __repr__(self) -> str:
        return f"<FluidResource {self.name!r} cap={self._capacity:.3g} B/s>"


class FluidFlow:
    """A stream of bytes traversing a set of resources.

    Parameters
    ----------
    path:
        ``(resource, weight)`` pairs.  Weight is capacity consumed per
        payload byte (e.g. 2.0 for a copy on a memory-bandwidth resource).
        Duplicated resources accumulate weight.
    size:
        Total payload bytes, or ``None`` for an open-ended flow that runs
        until :meth:`FluidScheduler.stop`.
    cap:
        Optional maximum rate (bytes/s) — models serial-thread limits,
        TCP windows and NIC line rates not shared with other flows.
    charges:
        ``(account, cost_per_byte)`` pairs debited as the flow progresses.
    """

    __slots__ = (
        "name",
        "size",
        "cap",
        "charges",
        "_weights",
        "rate",
        "transferred",
        "done",
        "_active",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        path: Iterable[tuple[FluidResource, float]],
        size: Optional[float],
        cap: Optional[float] = None,
        charges: Sequence[tuple[Any, float]] = (),
        name: str = "",
    ):
        weights: dict[FluidResource, float] = {}
        for res, w in path:
            if w <= 0 or math.isnan(w):
                raise ValueError(f"flow weight must be > 0, got {w}")
            weights[res] = weights.get(res, 0.0) + w
        if size is not None and (size <= 0 or math.isnan(size)):
            raise ValueError(f"flow size must be > 0 or None, got {size}")
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        if cap is None and not any(
            math.isfinite(r.capacity) for r in weights
        ):
            raise ValueError(
                f"flow {name!r} is unbounded: no cap and no finite resource on path"
            )
        self.name = name
        self.size = None if size is None else float(size)
        self.cap = None if cap is None else float(cap)
        self.charges = tuple(charges)
        self._weights = weights
        self.rate = 0.0
        self.transferred = 0.0
        self.done: Optional[Event] = None
        self._active = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def remaining(self) -> Optional[float]:
        """Bytes left, or None for open-ended flows."""
        if self.size is None:
            return None
        return max(0.0, self.size - self.transferred)

    def __repr__(self) -> str:
        return (
            f"<FluidFlow {self.name!r} rate={self.rate:.3g} "
            f"transferred={self.transferred:.3g}/{self.size}>"
        )


class FluidScheduler:
    """Allocates rates to active flows and schedules their completions."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._resources: list[FluidResource] = []
        self._active: list[FluidFlow] = []
        self._last_settle = sim.now
        self._timer_generation = 0

    # -- public API ------------------------------------------------------------
    def start(self, flow: FluidFlow) -> Event:
        """Activate *flow*; returns its completion event.

        Open-ended flows (``size=None``) complete only via :meth:`stop`.
        """
        if flow._active or flow.done is not None:
            raise SimulationError(f"flow {flow.name!r} already started")
        self.settle()
        flow.done = Event(self.sim, name=f"flow:{flow.name}")
        flow._active = True
        flow.started_at = self.sim.now
        self._active.append(flow)
        self._rebalance()
        return flow.done

    def stop(self, flow: FluidFlow) -> float:
        """Deactivate an open-ended (or unfinished) flow.

        Returns bytes transferred.  The flow's ``done`` event succeeds
        with the transferred byte count.
        """
        if not flow._active:
            raise SimulationError(f"flow {flow.name!r} is not active")
        self.settle()
        self._deactivate(flow)
        self._rebalance()
        return flow.transferred

    def set_cap(self, flow: FluidFlow, cap: Optional[float]) -> None:
        """Change a flow's rate cap (e.g. a TCP window update)."""
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        self.settle()
        flow.cap = cap
        if flow._active:
            self._rebalance()

    def settle(self) -> None:
        """Advance all active flows' progress to the current instant."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            self._last_settle = now
            return
        for flow in self._active:
            if flow.rate <= 0:
                continue
            delta = flow.rate * elapsed
            if flow.size is not None:
                delta = min(delta, flow.size - flow.transferred)
            if delta <= 0:
                continue
            flow.transferred += delta
            for account, per_byte in flow.charges:
                account.add(delta * per_byte)
        self._last_settle = now

    @property
    def active_flows(self) -> tuple[FluidFlow, ...]:
        """Snapshot of the currently active flows."""
        return tuple(self._active)

    # -- internals ------------------------------------------------------------
    def _deactivate(self, flow: FluidFlow) -> None:
        flow._active = False
        flow.rate = 0.0
        flow.finished_at = self.sim.now
        self._active.remove(flow)
        if flow.done is not None and not flow.done.triggered:
            flow.done.succeed(flow.transferred)

    def _rebalance(self) -> None:
        """Recompute the max-min fair rates; reschedule next completion."""
        self._allocate()
        self._schedule_next_completion()

    def _allocate(self) -> None:
        flows = self._active
        if not flows:
            return
        rate = {f: 0.0 for f in flows}
        unfrozen: set[FluidFlow] = set(flows)
        residual: dict[FluidResource, float] = {}
        users: dict[FluidResource, set[FluidFlow]] = {}
        for f in flows:
            for r in f._weights:
                if r not in residual:
                    residual[r] = r.capacity
                    users[r] = set()
                users[r].add(f)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 4 * len(flows) + 8:  # pragma: no cover - safety net
                raise SimulationError("progressive filling failed to converge")
            delta = math.inf
            for r, res_users in users.items():
                wsum = sum(f._weights[r] for f in res_users if f in unfrozen)
                if wsum > 0 and math.isfinite(residual[r]):
                    delta = min(delta, max(0.0, residual[r]) / wsum)
            for f in unfrozen:
                if f.cap is not None:
                    delta = min(delta, f.cap - rate[f])
            if not math.isfinite(delta):
                names = sorted(f.name for f in unfrozen)
                raise SimulationError(f"unbounded flows in allocation: {names}")
            delta = max(0.0, delta)
            if delta > 0:
                for f in unfrozen:
                    rate[f] += delta
                for r, res_users in users.items():
                    wsum = sum(f._weights[r] for f in res_users if f in unfrozen)
                    if wsum > 0:
                        residual[r] -= delta * wsum
            # freeze flows at their cap
            newly_frozen = {
                f
                for f in unfrozen
                if f.cap is not None and rate[f] >= f.cap - _EPS * max(1.0, f.cap)
            }
            # freeze flows on saturated resources
            for r, res_users in users.items():
                if residual[r] <= _EPS * max(1.0, r.capacity):
                    newly_frozen |= {f for f in res_users if f in unfrozen}
            if not newly_frozen:  # pragma: no cover - numerical corner
                newly_frozen = set(unfrozen)
            unfrozen -= newly_frozen

        for f in flows:
            f.rate = rate[f]

    def _schedule_next_completion(self) -> None:
        self._timer_generation += 1
        gen = self._timer_generation
        horizon = math.inf
        for f in self._active:
            if f.size is None or f.rate <= 0:
                continue
            remaining = f.size - f.transferred
            if remaining <= _EPS * f.size:
                horizon = 0.0
                break
            horizon = min(horizon, remaining / f.rate)
        if not math.isfinite(horizon):
            return
        timer = self.sim.timeout(horizon)
        timer.add_callback(lambda _ev: self._on_timer(gen))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later rebalance
        self.settle()
        finished = [
            f
            for f in self._active
            if f.size is not None and f.size - f.transferred <= _EPS * f.size
        ]
        for f in finished:
            f.transferred = f.size  # snap away float dust
            self._deactivate(f)
        self._rebalance()
