"""Fluid max-min fair bandwidth sharing.

This module is the performance heart of the library.  Every
throughput-limited entity in the modelled system — a network link
direction, a PCIe slot, a NUMA memory bank, a QPI link, a kernel protocol
stage — is a :class:`FluidResource` with a capacity in bytes/second.  A
data stream is a :class:`FluidFlow` that traverses a set of resources,
charging ``weight`` bytes of capacity on each resource per payload byte
(a memory *copy* charges the memory system twice: one read + one write).

Rates are assigned by **progressive filling** (water-filling), the textbook
construction of the max-min fair allocation with per-flow rate caps:

1. grow all unfrozen flows' rates uniformly;
2. freeze a flow when it hits its cap, or when any resource it uses
   saturates;
3. repeat until all flows are frozen.

The scheduler integrates with the event engine: whenever the flow set (or
a capacity, or a cap) changes, rates are recomputed and the next flow
completion is rescheduled.  In between changes, transfer progress is exact
(piecewise-linear fluid), so the simulation cost is proportional to the
number of flow arrivals/departures — *not* to bytes moved — which is what
makes simulating minutes of 100 Gbps traffic tractable.

Flows may carry *charges*: ``(account, cost_per_byte)`` pairs debited as
bytes progress.  The kernel layer uses this to account CPU seconds per
byte of protocol processing, reproducing the paper's getrusage/perf
measurements (Fig. 4, 8, 10, 12, 14).

Two solver backends implement the same allocation (selected per scheduler
via the ``solver=`` argument, defaulting to ``REPRO_FLUID_SOLVER``):

``array`` (default)
    Flow state lives in flat numpy arrays (rate, cap, size, transferred,
    indexed by a per-scheduler *slot*); each flow's resource incidence is
    cached as index/weight arrays, assembled per affected component into
    a CSR-like (entry-list) structure, and progressive filling runs as a
    vectorized water-filling loop over boolean freeze masks.  ``settle``
    is one fused ``transferred += rate·dt`` update plus a sparse
    matrix-vector product over the charge incidence, and next-completion
    selection is an ``argmin`` over ``remaining / rate``.
``python``
    The scalar reference implementation (dicts of objects).  Kept fully
    functional for differential testing (`tests/test_fluid_equivalence`)
    and as the baseline of ``benchmarks/bench_fluid_solver.py``.

Both backends share the incremental dirty-set machinery: only the
connected components of the flow/resource sharing graph touched by a
change are recomputed, and :class:`FluidStats` counts exactly the same
events whichever backend runs.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.sampling import hub_for

__all__ = [
    "FluidResource",
    "FluidFlow",
    "FluidScheduler",
    "FluidStats",
    "ChargeAccount",
    "GangFluidProgram",
    "GangRunResult",
    "SOLVERS",
    "CHURN_MODES",
    "default_solver",
    "default_churn",
]

_EPS = 1e-9

#: Recognized allocator backends.
SOLVERS = ("array", "python")

#: Recognized churn-handling modes (see :func:`default_churn`).
CHURN_MODES = ("coalesce", "eager")

#: Components smaller than this run the scalar filling loop even under the
#: array solver: per-call numpy dispatch overhead (~µs) beats dict walks
#: only once a component has enough flows to amortize it.
_VECTOR_MIN_FLOWS = 16

#: Compact the charge-incidence pool once dead entries outnumber live ones
#: (and the pool is big enough for compaction to matter).
_CHARGE_COMPACT_MIN = 128


def default_solver() -> str:
    """The backend named by ``REPRO_FLUID_SOLVER`` (default: ``array``)."""
    kind = os.environ.get("REPRO_FLUID_SOLVER", "").strip().lower()
    if not kind:
        return "array"
    if kind not in SOLVERS:
        raise ValueError(
            f"REPRO_FLUID_SOLVER must be one of {SOLVERS}, got {kind!r}"
        )
    return kind


def default_churn() -> str:
    """The churn mode named by ``REPRO_CHURN`` (default: ``coalesce``).

    ``coalesce``
        Flow transitions (start/finish/cap/capacity changes) occurring at
        the same simulated instant mark components dirty and share one
        deferred rebalance, flushed by the engine before the clock
        advances (or by any reader that needs settled rates).
    ``eager``
        Every transition rebalances immediately — the pre-coalescing
        behaviour, kept bit-reproducible for differential testing.
    """
    kind = os.environ.get("REPRO_CHURN", "").strip().lower()
    if not kind:
        return "coalesce"
    if kind not in CHURN_MODES:
        raise ValueError(
            f"REPRO_CHURN must be one of {CHURN_MODES}, got {kind!r}"
        )
    return kind


class FluidStats:
    """Allocator counters: how much work incremental rebalancing avoids.

    ``rebalances`` counts :meth:`FluidScheduler._rebalance` calls,
    ``allocations`` those that actually recomputed rates (a dirty set was
    pending), ``flows_recomputed`` the flows touched by progressive
    filling, and ``flows_skipped`` the active flows whose cached rates
    were provably unaffected and therefore reused.

    The class attributes with the same names aggregate across **all**
    schedulers ever created in this process (like
    :attr:`Simulator.events_processed_total`) so report footers can show
    allocator telemetry without a handle on every scheduler.
    """

    __slots__ = ("rebalances", "allocations", "flows_recomputed", "flows_skipped")

    #: Process-global totals across all schedulers (class-level).
    total_rebalances = 0
    total_allocations = 0
    total_flows_recomputed = 0
    total_flows_skipped = 0

    def __init__(self) -> None:
        self.rebalances = 0
        self.allocations = 0
        self.flows_recomputed = 0
        self.flows_skipped = 0

    @classmethod
    def process_totals(cls) -> dict[str, int]:
        """The process-global counters as a plain dict."""
        return {
            "rebalances": cls.total_rebalances,
            "allocations": cls.total_allocations,
            "flows_recomputed": cls.total_flows_recomputed,
            "flows_skipped": cls.total_flows_skipped,
        }

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "rebalances": self.rebalances,
            "allocations": self.allocations,
            "flows_recomputed": self.flows_recomputed,
            "flows_skipped": self.flows_skipped,
        }

    def __repr__(self) -> str:
        return (
            f"<FluidStats rebalances={self.rebalances} "
            f"allocations={self.allocations} "
            f"recomputed={self.flows_recomputed} skipped={self.flows_skipped}>"
        )


class ChargeAccount(Protocol):
    """Anything that can accumulate a per-byte charge (e.g. CPU seconds)."""

    def add(self, amount: float) -> None:  # pragma: no cover - protocol
        """Accumulate an amount."""
        ...


class FluidResource:
    """A capacity-limited resource shared by fluid flows.

    Capacity is in bytes/second of *weighted* flow throughput.  Capacity
    may change at runtime (e.g. SSD thermal throttling); the scheduler
    rebalances all flows when it does.
    """

    def __init__(self, scheduler: "FluidScheduler", capacity: float, name: str = ""):
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.scheduler = scheduler
        self.name = name
        self._capacity = float(capacity)
        self._idx = len(scheduler._resources)
        self._visit = 0
        scheduler._resources.append(self)

    @property
    def capacity(self) -> float:
        """Current capacity (bytes/second)."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change capacity and rebalance active flows."""
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if capacity == self._capacity:
            return
        scheduler = self.scheduler
        if not scheduler._users.get(self):
            # Idle resource: no active flow can see the change, so skip
            # the full settle + rebalance (SSD throttle ticks and link
            # renegotiations before any transfer starts hit this path).
            self._capacity = float(capacity)
            return
        scheduler.settle()
        self._capacity = float(capacity)
        scheduler._dirty[self] = None
        scheduler._after_change()

    @property
    def load(self) -> float:
        """Current weighted demand through this resource (bytes/s).

        Served from the scheduler's per-resource cache, refreshed on every
        rebalance — O(1) instead of a scan over all active flows.  A
        deferred (coalesced) rebalance is flushed first so mid-timestamp
        readers always observe settled loads.
        """
        scheduler = self.scheduler
        if scheduler._pending:
            scheduler.flush()
        return scheduler._load.get(self, 0.0)

    @property
    def utilization(self) -> float:
        """Load divided by capacity (0 if capacity is 0)."""
        return self.load / self._capacity if self._capacity > 0 else 0.0

    def __repr__(self) -> str:
        return f"<FluidResource {self.name!r} cap={self._capacity:.3g} B/s>"


class FluidFlow:
    """A stream of bytes traversing a set of resources.

    Parameters
    ----------
    path:
        ``(resource, weight)`` pairs.  Weight is capacity consumed per
        payload byte (e.g. 2.0 for a copy on a memory-bandwidth resource).
        Duplicated resources accumulate weight.
    size:
        Total payload bytes, or ``None`` for an open-ended flow that runs
        until :meth:`FluidScheduler.stop`.
    cap:
        Optional maximum rate (bytes/s) — models serial-thread limits,
        TCP windows and NIC line rates not shared with other flows.
    charges:
        ``(account, cost_per_byte)`` pairs debited as the flow progresses.
    """

    __slots__ = (
        "name",
        "size",
        "cap",
        "charges",
        "_weights",
        "_rate",
        "_transferred",
        "done",
        "_active",
        "started_at",
        "finished_at",
        # array-solver state: slot index + owning scheduler while active,
        # cached incidence row (resource ids / weights), charge-pool range
        "_slot",
        "_sched",
        "_res_ids",
        "_res_ws",
        "_c_start",
        "_c_n",
        # dirty-closure BFS visit stamp (see FluidScheduler._affected)
        "_visit",
    )

    def __init__(
        self,
        path: Iterable[tuple[FluidResource, float]],
        size: Optional[float],
        cap: Optional[float] = None,
        charges: Sequence[tuple[Any, float]] = (),
        name: str = "",
    ):
        weights: dict[FluidResource, float] = {}
        for res, w in path:
            if w <= 0 or math.isnan(w):
                raise ValueError(f"flow weight must be > 0, got {w}")
            weights[res] = weights.get(res, 0.0) + w
        if size is not None and (size <= 0 or math.isnan(size)):
            raise ValueError(f"flow size must be > 0 or None, got {size}")
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        if cap is None and not any(
            math.isfinite(r.capacity) for r in weights
        ):
            raise ValueError(
                f"flow {name!r} is unbounded: no cap and no finite resource on path"
            )
        self.name = name
        self.size = None if size is None else float(size)
        self.cap = None if cap is None else float(cap)
        self.charges = tuple(charges)
        self._weights = weights
        self._rate = 0.0
        self._transferred = 0.0
        self.done: Optional[Event] = None
        self._active = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._slot = -1
        self._sched: Optional["FluidScheduler"] = None
        self._res_ids: Optional[np.ndarray] = None
        self._res_ws: Optional[np.ndarray] = None
        self._c_start = 0
        self._c_n = 0
        self._visit = 0

    @property
    def rate(self) -> float:
        """Current allocated rate (bytes/s).

        If the owning scheduler has a deferred (coalesced) rebalance
        pending, it is flushed first, so readers always see the settled
        allocation — exactly what an eager rebalance would have produced.
        Internal hot loops that run strictly post-flush read ``_rate``.
        """
        sched = self._sched
        if sched is not None and sched._pending:
            sched.flush()
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = value

    @property
    def transferred(self) -> float:
        """Bytes delivered so far (settled progress).

        While the flow is active under the array solver the authoritative
        count lives in the scheduler's slot array; otherwise in the
        flow's own scalar.
        """
        if self._slot >= 0:
            return float(self._sched._f_transferred[self._slot])
        return self._transferred

    @transferred.setter
    def transferred(self, value: float) -> None:
        if self._slot >= 0:
            self._sched._f_transferred[self._slot] = value
        else:
            self._transferred = value

    @property
    def remaining(self) -> Optional[float]:
        """Bytes left, or None for open-ended flows."""
        if self.size is None:
            return None
        return max(0.0, self.size - self.transferred)

    def __repr__(self) -> str:
        return (
            f"<FluidFlow {self.name!r} rate={self._rate:.3g} "
            f"transferred={self.transferred:.3g}/{self.size}>"
        )


class FluidScheduler:
    """Allocates rates to active flows and schedules their completions.

    ``solver`` picks the allocator backend (``"array"`` or ``"python"``);
    ``None`` defers to :func:`default_solver` (the ``REPRO_FLUID_SOLVER``
    environment variable, defaulting to the array backend).

    ``churn`` picks how flow transitions are settled (``"coalesce"`` or
    ``"eager"``); ``None`` defers to :func:`default_churn` (the
    ``REPRO_CHURN`` environment variable, defaulting to coalescing).
    Under coalescing, every transition still settles progress and marks
    its components dirty immediately, but the rebalance itself is
    deferred to one flush per simulated instant (an engine advance hook;
    see :meth:`flush`) — same rates, same completion deadlines, a single
    allocation for an arbitrarily large same-timestamp burst.
    """

    def __init__(self, sim: Simulator, solver: Optional[str] = None,
                 churn: Optional[str] = None):
        if solver is None:
            solver = default_solver()
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        if churn is None:
            churn = default_churn()
        if churn not in CHURN_MODES:
            raise ValueError(f"churn must be one of {CHURN_MODES}, got {churn!r}")
        self.sim = sim
        self.solver = solver
        self.churn = churn
        self._array = solver == "array"
        self._eager = churn == "eager"
        self._pending = False
        self._hooked = False
        self._resources: list[FluidResource] = []
        self._active: list[FluidFlow] = []
        self._last_settle = sim.now
        self._timer_generation = 0
        # Incremental-allocation state.  ``_users`` maps each resource to
        # its active flows (insertion-ordered for run-to-run determinism);
        # ``_dirty``/``_dirty_flows`` seed the next allocation's affected
        # set; ``_load`` caches each resource's allocated weighted demand.
        self._users: dict[FluidResource, dict[FluidFlow, None]] = {}
        self._dirty: dict[FluidResource, None] = {}
        self._dirty_flows: dict[FluidFlow, None] = {}
        self._load: dict[FluidResource, float] = {}
        self._visit_epoch = 0
        self.stats = FluidStats()
        # Telemetry: every settle() that advances the clock ends a rate
        # epoch, and the hub backfills declared sample channels then.
        self._hub = hub_for(sim)
        self._hub.attach_scheduler(self)
        if self._array:
            # Slot arrays (doubled on demand).  ``_hw`` is the high-water
            # slot count: every vector op runs over ``[:_hw]`` and freed
            # slots stay inert because their rate is 0 and size is inf.
            n = 16
            self._f_rate = np.zeros(n)
            self._f_cap = np.full(n, np.inf)
            self._f_size = np.full(n, np.inf)
            self._f_transferred = np.zeros(n)
            self._slot_flow: List[Optional[FluidFlow]] = [None] * n
            self._free_slots: list[int] = list(range(n - 1, -1, -1))
            self._hw = 0
            # Charge incidence pool (CSR data: account row, flow-slot col,
            # cost-per-byte value).  Appended on start; a stopping flow's
            # entries are zeroed in place (dead), and the pool is rebuilt
            # from the live flows once dead entries dominate.
            self._c_slot = np.zeros(n, dtype=np.intp)
            self._c_acct = np.zeros(n, dtype=np.intp)
            self._c_cost = np.zeros(n)
            self._c_len = 0
            self._c_dead = 0
            self._accounts: list[Any] = []
            self._acct_index: dict[int, int] = {}
            # Resource incidence pool (CSR data: flow-slot row, global
            # resource col, weight value) covering every active flow.
            # Appended on start; a stopping flow's entries are tombstoned
            # (slot -1) and the pool is mask-compacted once a whole-graph
            # allocation needs it or dead entries dominate.
            self._e_res = np.zeros(n, dtype=np.intp)
            self._e_w = np.zeros(n)
            self._e_slot = np.zeros(n, dtype=np.intp)
            self._e_used = 0
            self._e_dead = 0
            # Scratch map global-resource-id -> component-local id.
            self._res_scratch = np.zeros(0, dtype=np.intp)
            # Scratch map flow-slot -> component-local id.
            self._flow_scratch = np.zeros(n, dtype=np.intp)
            # Scratch for the per-round residual/wsum division.
            self._div = np.empty(16)

    # -- public API ------------------------------------------------------------
    @property
    def coalescing(self) -> bool:
        """True when same-timestamp transitions share a deferred rebalance."""
        return not self._eager

    def _admit(self, flow: FluidFlow) -> Event:
        """Activate *flow* (post-settle bookkeeping shared by start paths)."""
        flow.done = Event(self.sim, name=f"flow:{flow.name}")
        flow._active = True
        flow._sched = self
        flow.started_at = self.sim.now
        self._active.append(flow)
        for r in flow._weights:
            self._users.setdefault(r, {})[flow] = None
            self._dirty[r] = None
        self._dirty_flows[flow] = None
        if self._array:
            self._bind_slot(flow)
        return flow.done

    def _after_change(self) -> None:
        """Rebalance now (eager) or defer to one flush per instant."""
        if self._eager:
            self._rebalance()
            return
        self._pending = True
        if not self._hooked:
            self._hooked = True
            self.sim.add_advance_hook(self._flush_pending)

    def _flush_pending(self) -> None:
        # Engine advance hook: apply the coalesced rebalance before the
        # clock moves past the instant the transitions happened at.
        if self._pending:
            self._pending = False
            self._rebalance()

    def flush(self) -> None:
        """Settle progress and apply any deferred (coalesced) rebalance.

        Mid-timestamp readers of rates or loads call this so they observe
        exactly what an eager rebalance would have produced; under eager
        churn it is equivalent to :meth:`settle`.
        """
        self.settle()
        if self._pending:
            self._pending = False
            self._rebalance()

    def start(self, flow: FluidFlow) -> Event:
        """Activate *flow*; returns its completion event.

        Open-ended flows (``size=None``) complete only via :meth:`stop`.
        """
        if flow._active or flow.done is not None:
            raise SimulationError(f"flow {flow.name!r} already started")
        self.settle()
        done = self._admit(flow)
        self._after_change()
        return done

    def start_many(self, flows: Sequence[FluidFlow]) -> List[Event]:
        """Activate many flows; returns their completion events in order.

        Equivalent to ``[start(f) for f in flows]`` — under coalescing
        the whole batch shares one settle and one deferred rebalance, so
        admitting N flows at one instant costs a single allocation.
        """
        self.settle()
        events: List[Event] = []
        for flow in flows:
            if flow._active or flow.done is not None:
                raise SimulationError(f"flow {flow.name!r} already started")
            events.append(self._admit(flow))
            self._after_change()
        return events

    def stop(self, flow: FluidFlow) -> float:
        """Deactivate an open-ended (or unfinished) flow.

        Returns bytes transferred.  The flow's ``done`` event succeeds
        with the transferred byte count.
        """
        if not flow._active:
            raise SimulationError(f"flow {flow.name!r} is not active")
        self.settle()
        self._deactivate(flow)
        self._after_change()
        return flow.transferred

    def finish_many(self, flows: Sequence[FluidFlow]) -> List[float]:
        """Deactivate many flows; returns their transferred bytes in order.

        Equivalent to ``[stop(f) for f in flows]`` — under coalescing the
        batch shares one settle and one deferred rebalance (the bulk leg
        of rail failover and drain paths).
        """
        self.settle()
        moved: List[float] = []
        for flow in flows:
            if not flow._active:
                raise SimulationError(f"flow {flow.name!r} is not active")
            self._deactivate(flow)
            self._after_change()
            moved.append(flow.transferred)
        return moved

    def set_cap(self, flow: FluidFlow, cap: Optional[float]) -> None:
        """Change a flow's rate cap (e.g. a TCP window update)."""
        if cap is not None and (cap <= 0 or math.isnan(cap)):
            raise ValueError(f"flow cap must be > 0 or None, got {cap}")
        self.settle()
        flow.cap = cap
        if flow._active:
            if flow._slot >= 0:
                self._f_cap[flow._slot] = np.inf if cap is None else cap
            for r in flow._weights:
                self._dirty[r] = None
            self._dirty_flows[flow] = None
            self._after_change()

    def settle(self) -> None:
        """Advance all active flows' progress to the current instant.

        A settle that advances the clock closes a *rate epoch*: every
        caller settles before mutating rates (start/stop/set_cap/
        set_capacity), so flow rates and resource loads were constant
        over ``(last_settle, now]``.  The sampler hub is notified here —
        with counters settled and the epoch's rates still in place — so
        backfill channels can materialize all sample points in the epoch
        analytically (:mod:`repro.sim.sampling`).
        """
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            self._last_settle = now
            return
        if self._pending:
            # Defensive late flush.  The engine normally flushes deferred
            # rebalances before the clock advances, so this path is not
            # reached from run()/step(); if a caller advanced time some
            # other way, the deferred transitions happened at the epoch's
            # start — their rates govern the whole elapsed interval, so
            # apply the allocation first, then accrue at the fresh rates.
            self._pending = False
            self.stats.rebalances += 1
            FluidStats.total_rebalances += 1
            self._allocate()
            if self._array:
                self._settle_array(elapsed)
            else:
                self._settle_python(elapsed)
            self._last_settle = now
            hub = self._hub
            if hub._channels:
                hub.on_epoch(now)
            self._schedule_next_completion()
            return
        if self._array:
            self._settle_array(elapsed)
        else:
            self._settle_python(elapsed)
        self._last_settle = now
        hub = self._hub
        if hub._channels:
            hub.on_epoch(now)

    @property
    def active_flows(self) -> tuple[FluidFlow, ...]:
        """Snapshot of the currently active flows."""
        return tuple(self._active)

    # -- settle backends -------------------------------------------------------
    def _settle_python(self, elapsed: float) -> None:
        # Reference settle.  Invariants are hoisted out of the loop: the
        # clock is read once (by settle()), per-flow attribute loads
        # happen exactly once, and the charge loop is skipped outright
        # for the (common) uncharged flows.
        for flow in self._active:
            rate = flow._rate
            if rate <= 0:
                continue
            delta = rate * elapsed
            size = flow.size
            if size is not None:
                remaining = size - flow._transferred
                if delta > remaining:
                    delta = remaining
            if delta <= 0:
                continue
            flow._transferred += delta
            charges = flow.charges
            if charges:
                for account, per_byte in charges:
                    account.add(delta * per_byte)

    def _settle_array(self, elapsed: float) -> None:
        hw = self._hw
        if not hw:
            return
        active = self._active
        if len(active) < _VECTOR_MIN_FLOWS:
            # Small active set: per-element numpy dispatch costs more than
            # it saves, so run the reference loop against the slot arrays
            # (same arithmetic, element by element).
            f_tr = self._f_transferred
            for flow in active:
                rate = flow._rate
                if rate <= 0:
                    continue
                delta = rate * elapsed
                size = flow.size
                slot = flow._slot
                if size is not None:
                    remaining = size - float(f_tr[slot])
                    if delta > remaining:
                        delta = remaining
                if delta <= 0:
                    continue
                f_tr[slot] += delta
                charges = flow.charges
                if charges:
                    for account, per_byte in charges:
                        account.add(delta * per_byte)
            return
        # Fused progress update: delta = clip(rate * dt, 0, remaining).
        # Freed slots ride along harmlessly (rate 0 -> delta 0).
        delta = self._f_rate[:hw] * elapsed
        np.minimum(delta, self._f_size[:hw] - self._f_transferred[:hw], out=delta)
        np.maximum(delta, 0.0, out=delta)
        self._f_transferred[:hw] += delta
        m = self._c_len
        if m:
            # Charge accounting as one sparse mat-vec: per-account totals
            # are the weighted sums of member-flow deltas.  Dead entries
            # have cost 0 and contribute nothing.
            contrib = delta[self._c_slot[:m]] * self._c_cost[:m]
            amounts = np.bincount(
                self._c_acct[:m], weights=contrib, minlength=len(self._accounts)
            )
            if amounts.any():
                accounts = self._accounts
                for i in np.nonzero(amounts)[0].tolist():
                    accounts[i].add(float(amounts[i]))

    # -- array-solver state management -----------------------------------------
    def _bind_slot(self, flow: FluidFlow) -> None:
        if not self._free_slots:
            self._grow_slots()
        slot = self._free_slots.pop()
        flow._slot = slot
        flow._sched = self
        self._slot_flow[slot] = flow
        if slot >= self._hw:
            self._hw = slot + 1
        self._f_rate[slot] = 0.0
        self._f_cap[slot] = np.inf if flow.cap is None else flow.cap
        self._f_size[slot] = np.inf if flow.size is None else flow.size
        self._f_transferred[slot] = flow._transferred
        ids = flow._res_ids
        if ids is None:
            n = len(flow._weights)
            ids = np.fromiter(
                (r._idx for r in flow._weights), dtype=np.intp, count=n
            )
            flow._res_ids = ids
            flow._res_ws = np.fromiter(
                flow._weights.values(), dtype=float, count=n
            )
        ne = ids.size
        start = self._e_used
        if start + ne > self._e_slot.size:
            self._grow_entries(start + ne)
        self._e_res[start: start + ne] = ids
        self._e_w[start: start + ne] = flow._res_ws
        self._e_slot[start: start + ne] = slot
        self._e_used = start + ne
        charges = [(a, c) for a, c in flow.charges if c != 0.0]
        if charges:
            start = self._c_len
            need = start + len(charges)
            if need > self._c_slot.size:
                self._grow_charges(need)
            acct_index = self._acct_index
            for k, (account, cost) in enumerate(charges):
                key = id(account)
                idx = acct_index.get(key)
                if idx is None:
                    idx = len(self._accounts)
                    acct_index[key] = idx
                    self._accounts.append(account)
                self._c_slot[start + k] = flow._slot
                self._c_acct[start + k] = idx
                self._c_cost[start + k] = cost
            self._c_len = need
            flow._c_start = start
            flow._c_n = len(charges)

    def _div_scratch(self, n: int) -> np.ndarray:
        """An inf-filled length-``n`` scratch view for masked divisions."""
        d = self._div
        if d.size < n:
            self._div = d = np.empty(max(n, 2 * d.size))
        view = d[:n]
        view.fill(np.inf)
        return view

    def _grow_slots(self) -> None:
        old = self._f_rate.size
        new = old * 2
        for name in ("_f_rate", "_f_cap", "_f_size", "_f_transferred"):
            arr = getattr(self, name)
            grown = np.empty(new)
            grown[:old] = arr
            setattr(self, name, grown)
        self._f_cap[old:] = np.inf
        self._f_size[old:] = np.inf
        self._f_rate[old:] = 0.0
        self._f_transferred[old:] = 0.0
        self._slot_flow.extend([None] * old)
        self._free_slots.extend(range(new - 1, old - 1, -1))
        fsc = np.zeros(new, dtype=np.intp)
        fsc[:old] = self._flow_scratch
        self._flow_scratch = fsc

    def _grow_entries(self, need: int) -> None:
        new = max(need, self._e_slot.size * 2)
        for name, dtype in (("_e_res", np.intp), ("_e_w", float),
                            ("_e_slot", np.intp)):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=dtype)
            grown[: arr.size] = arr
            setattr(self, name, grown)

    def _compact_entries(self) -> None:
        """Drop tombstoned incidence entries (churn-threshold rebuild)."""
        u = self._e_used
        alive = self._e_slot[:u] >= 0
        k = int(alive.sum())
        if k != u:
            self._e_res[:k] = self._e_res[:u][alive]
            self._e_w[:k] = self._e_w[:u][alive]
            self._e_slot[:k] = self._e_slot[:u][alive]
        self._e_used = k
        self._e_dead = 0

    def _grow_charges(self, need: int) -> None:
        new = max(need, self._c_slot.size * 2)
        for name, dtype in (("_c_slot", np.intp), ("_c_acct", np.intp),
                            ("_c_cost", float)):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=dtype)
            grown[: arr.size] = arr
            setattr(self, name, grown)

    def _release_slot(self, flow: FluidFlow) -> None:
        slot = flow._slot
        flow._transferred = float(self._f_transferred[slot])
        self._f_rate[slot] = 0.0
        self._f_cap[slot] = np.inf
        self._f_size[slot] = np.inf
        flow._slot = -1
        flow._sched = None
        self._slot_flow[slot] = None
        self._free_slots.append(slot)
        es = self._e_slot[: self._e_used]
        es[es == slot] = -1
        self._e_dead += flow._res_ids.size
        if self._e_dead * 2 > self._e_used:
            self._compact_entries()
        if flow._c_n:
            # Zero the costs in place: the entries become inert even if
            # the slot is reused before the next compaction.
            self._c_cost[flow._c_start: flow._c_start + flow._c_n] = 0.0
            self._c_dead += flow._c_n
            flow._c_n = 0
            if (self._c_len >= _CHARGE_COMPACT_MIN
                    and self._c_dead * 2 > self._c_len):
                self._compact_charges()

    def _compact_charges(self) -> None:
        """Rebuild the charge pool from live flows (churn-threshold rebuild)."""
        pos = 0
        c_slot, c_acct, c_cost = self._c_slot, self._c_acct, self._c_cost
        for flow in self._active:
            n = flow._c_n
            if not n:
                continue
            start = flow._c_start
            if start != pos:
                c_slot[pos: pos + n] = c_slot[start: start + n]
                c_acct[pos: pos + n] = c_acct[start: start + n]
                c_cost[pos: pos + n] = c_cost[start: start + n]
                flow._c_start = pos
            pos += n
        self._c_len = pos
        self._c_dead = 0

    # -- internals ------------------------------------------------------------
    def _deactivate(self, flow: FluidFlow) -> None:
        flow._active = False
        flow.finished_at = self.sim.now
        self._active.remove(flow)
        users = self._users
        for r in flow._weights:
            res_users = users.get(r)
            if res_users is not None:
                res_users.pop(flow, None)
                if not res_users:
                    del users[r]
            self._dirty[r] = None
        if flow._slot >= 0:
            self._release_slot(flow)
        flow._rate = 0.0
        flow._sched = None
        if flow.done is not None and not flow.done.triggered:
            flow.done.succeed(flow._transferred)

    def _rebalance(self) -> None:
        """Recompute the max-min fair rates; reschedule next completion."""
        self.stats.rebalances += 1
        FluidStats.total_rebalances += 1
        self._allocate()
        self._schedule_next_completion()

    def _affected(self) -> tuple[list[FluidFlow], list[FluidResource]]:
        """Close the dirty seed over the flow/resource sharing graph.

        Max-min fairness decomposes over connected components of the
        bipartite flow-resource graph, so only the components containing a
        dirty resource (or dirty flow) can see their rates change; every
        other active flow keeps its cached rate.
        """
        users = self._users
        affected_flows: list[FluidFlow] = []
        affected_res: list[FluidResource] = []
        # Visit stamps instead of membership sets: one epoch counter per
        # closure, one attribute compare per membership test (the BFS runs
        # on every rebalance, so constant factors matter).
        epoch = self._visit_epoch + 1
        self._visit_epoch = epoch
        stack: list[FluidResource] = []
        for r in self._dirty:
            if r._visit != epoch:
                r._visit = epoch
                affected_res.append(r)
                stack.append(r)
        for f in self._dirty_flows:
            if f._active and f._visit != epoch:
                f._visit = epoch
                affected_flows.append(f)
                for r in f._weights:
                    if r._visit != epoch:
                        r._visit = epoch
                        affected_res.append(r)
                        stack.append(r)
        while stack:
            r = stack.pop()
            for f in users.get(r, ()):
                if f._visit == epoch:
                    continue
                f._visit = epoch
                affected_flows.append(f)
                for r2 in f._weights:
                    if r2._visit != epoch:
                        r2._visit = epoch
                        affected_res.append(r2)
                        stack.append(r2)
        return affected_flows, affected_res

    def _allocate(self) -> None:
        """Recompute max-min fair rates for the components touched by the
        dirty set (incremental progressive filling)."""
        if not self._dirty and not self._dirty_flows:
            return
        flows, touched_res = self._affected()
        self._dirty.clear()
        self._dirty_flows.clear()
        stats = self.stats
        stats.allocations += 1
        stats.flows_recomputed += len(flows)
        stats.flows_skipped += len(self._active) - len(flows)
        FluidStats.total_allocations += 1
        FluidStats.total_flows_recomputed += len(flows)
        FluidStats.total_flows_skipped += len(self._active) - len(flows)
        load = self._load
        if not flows:
            for r in touched_res:
                load[r] = 0.0
            return
        if len(flows) == 1:
            self._allocate_single(flows[0], touched_res)
        elif self._array and len(flows) >= _VECTOR_MIN_FLOWS:
            self._allocate_array(flows, touched_res)
        else:
            self._allocate_scalar(flows, touched_res)

    def _allocate_single(
        self, f: FluidFlow, touched_res: list[FluidResource]
    ) -> None:
        """One-flow component: the fair rate is just the bottleneck.

        Progressive filling with a single flow converges in one round to
        ``min(cap, min over path of capacity / weight)`` — computed here
        directly, with the same per-candidate flooring as the full loop.
        """
        delta = math.inf
        for r, w in f._weights.items():
            c = r._capacity
            if math.isfinite(c):
                d = c / w
                if d < delta:
                    delta = d if d > 0.0 else 0.0
        cap = f.cap
        if cap is not None and cap < delta:
            delta = cap
        if not math.isfinite(delta):
            raise SimulationError(f"unbounded flows in allocation: {[f.name]}")
        if delta < 0.0:
            delta = 0.0
        f.rate = delta
        if f._slot >= 0:
            self._f_rate[f._slot] = delta
        load = self._load
        weights = f._weights
        for r in touched_res:
            load[r] = weights[r] * delta if r in weights else 0.0

    def _allocate_scalar(
        self, flows: list[FluidFlow], touched_res: list[FluidResource]
    ) -> None:
        """Reference progressive filling over one affected component.

        The component is assembled once into parallel lists indexed by a
        local resource id (list indexing beats dict iteration in the
        filling rounds), and the per-round constants — saturation and
        cap-freeze thresholds — are precomputed instead of re-derived
        every round.

        Resources with a single user never arbitrate between flows: such a
        *private* resource is exactly a rate cap of ``capacity / weight``
        on its one flow, so it is folded into the flow's effective cap at
        assembly and drops out of the per-round scans entirely.  In the
        pipelined topologies this library models most path entries are
        private (a flow's own CPU, its DMA engine, its half of a link), so
        the filling rounds touch only the handful of genuinely shared
        resources.
        """
        nf = len(flows)
        users = self._users
        rate = dict.fromkeys(flows, 0.0)
        unfrozen = dict.fromkeys(flows)
        # Per-shared-resource residual capacity and weight-sum over
        # *unfrozen* users; the weight sums are maintained incrementally
        # as flows freeze instead of being recomputed every filling round.
        res_index: dict[FluidResource, int] = {}
        residual: list[float] = []
        wsum: list[float] = []
        ucount: list[int] = []  # unfrozen users (exact)
        res_users: list[list[FluidFlow]] = []
        sat_thresh: list[float] = []
        f_entries: dict[FluidFlow, list[tuple[int, float]]] = {}
        cap_eff: dict[FluidFlow, float] = {}
        cap_thresh: dict[FluidFlow, float] = {}
        capped: list[FluidFlow] = []
        for f in flows:
            bound = f.cap if f.cap is not None else math.inf
            ents = []
            for r, w in f._weights.items():
                if len(users[r]) == 1:
                    c = r._capacity
                    if c < math.inf:
                        b = c / w
                        if b < bound:
                            bound = b
                    continue
                i = res_index.get(r)
                if i is None:
                    i = len(residual)
                    res_index[r] = i
                    c = r._capacity
                    residual.append(c)
                    wsum.append(0.0)
                    ucount.append(0)
                    res_users.append([])
                    # An infinite-capacity resource can never saturate:
                    # its threshold must be -inf, not inf * eps (= inf,
                    # which would satisfy `residual <= thresh` forever and
                    # spuriously freeze every user in the first round).
                    sat_thresh.append(
                        _EPS * (c if c > 1.0 else 1.0)
                        if c < math.inf else -math.inf
                    )
                wsum[i] += w
                ucount[i] += 1
                res_users[i].append(f)
                ents.append((i, w))
            f_entries[f] = ents
            if bound < math.inf:
                capped.append(f)
                cap_eff[f] = bound
                cap_thresh[f] = bound - _EPS * (bound if bound > 1.0 else 1.0)
        nres = len(residual)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 4 * nf + 8:  # pragma: no cover - safety net
                raise SimulationError("progressive filling failed to converge")
            delta = math.inf
            for ws, rest in zip(wsum, residual):
                if ws > 0 and rest < math.inf:
                    d = rest / ws
                    if d < delta:
                        delta = d if d > 0.0 else 0.0
            for f in capped:
                if f in unfrozen:
                    d = cap_eff[f] - rate[f]
                    if d < delta:
                        delta = d
            if not math.isfinite(delta):
                names = sorted(f.name for f in unfrozen)
                raise SimulationError(f"unbounded flows in allocation: {names}")
            if delta < 0.0:
                delta = 0.0
            if delta > 0:
                for f in unfrozen:
                    rate[f] += delta
                for i in range(nres):
                    ws = wsum[i]
                    if ws > 0:
                        residual[i] -= delta * ws
            # freeze flows at their cap, then flows on saturated resources
            newly_frozen = [
                f for f in capped if f in unfrozen and rate[f] >= cap_thresh[f]
            ]
            frozen_set = set(newly_frozen)
            for i in range(nres):
                if residual[i] <= sat_thresh[i]:
                    for f in res_users[i]:
                        if f in unfrozen and f not in frozen_set:
                            frozen_set.add(f)
                            newly_frozen.append(f)
            if not newly_frozen:  # pragma: no cover - numerical corner
                newly_frozen = list(unfrozen)
            for f in newly_frozen:
                if f in unfrozen:
                    del unfrozen[f]
                    for i, w in f_entries[f]:
                        n = ucount[i] - 1
                        ucount[i] = n
                        # Zero exactly when the last user freezes: the
                        # incremental subtraction leaves fp dust that would
                        # otherwise keep a fully-frozen resource in play.
                        wsum[i] = wsum[i] - w if n else 0.0

        if self._array:
            f_rate = self._f_rate
            for f in flows:
                r = rate[f]
                f.rate = r
                f_rate[f._slot] = r
        else:
            for f in flows:
                f.rate = rate[f]
        load = self._load
        for r in touched_res:
            load[r] = 0.0
        for f in flows:
            rf = rate[f]
            for r, w in f._weights.items():
                load[r] += w * rf

    def _allocate_array(
        self, flows: list[FluidFlow], touched_res: list[FluidResource]
    ) -> None:
        """Vectorized water-filling over one affected component.

        The component's incidence is assembled as an entry list (CSR
        data): ``ent_flow[k]``/``ent_res[k]``/``ent_w[k]`` say that local
        flow ``ent_flow[k]`` consumes ``ent_w[k]`` bytes of local
        resource ``ent_res[k]`` per payload byte.  Each filling round is
        a handful of fused array ops regardless of component size.
        """
        F = len(flows)
        R = len(touched_res)
        slots = np.fromiter((f._slot for f in flows), dtype=np.intp, count=F)
        if F == len(self._active):
            # Whole-graph allocation (the common churn regime): the
            # incrementally-maintained incidence pool already holds every
            # entry; compact tombstones away and use it in place.
            if self._e_dead:
                self._compact_entries()
            u = self._e_used
            ent_res_g = self._e_res[:u]
            ent_w = self._e_w[:u]
            fsc = self._flow_scratch
            fsc[slots] = np.arange(F)
            ent_flow = fsc[self._e_slot[:u]]
        else:
            # Sub-component: gather the member flows' cached rows.
            res_rows = [f._res_ids for f in flows]
            ent_res_g = np.concatenate(res_rows)
            ent_w = np.concatenate([f._res_ws for f in flows])
            counts = np.fromiter(
                (a.size for a in res_rows), dtype=np.intp, count=F
            )
            ent_flow = np.repeat(np.arange(F), counts)
        # Map global resource ids to component-local [0, R) via scratch.
        if self._res_scratch.size < len(self._resources):
            self._res_scratch = np.zeros(len(self._resources), dtype=np.intp)
        scratch = self._res_scratch
        ridx = np.fromiter((r._idx for r in touched_res), dtype=np.intp, count=R)
        scratch[ridx] = np.arange(R)
        ent_res = scratch[ent_res_g]

        cap_l = self._f_cap[slots]
        r_cap = np.fromiter((r._capacity for r in touched_res), dtype=float, count=R)
        # Single-user resources never arbitrate: fold each private entry
        # into its flow's effective cap (capacity / weight) and keep only
        # the genuinely shared entries in the filling rounds.  The full
        # entry set is retained for the final load update.
        users = self._users
        nusers = np.fromiter(
            (len(users.get(r, ())) for r in touched_res), dtype=np.intp, count=R
        )
        ent_full_res, ent_full_w, ent_full_flow = ent_res, ent_w, ent_flow
        priv = nusers[ent_res] == 1
        if priv.any():
            np.minimum.at(
                cap_l, ent_flow[priv], r_cap[ent_res[priv]] / ent_w[priv]
            )
            shared = ~priv
            ent_res = ent_res[shared]
            ent_w = ent_w[shared]
            ent_flow = ent_flow[shared]
        residual = r_cap.copy()
        wsum = np.bincount(ent_res, weights=ent_w, minlength=R)
        ucount = np.bincount(ent_res, minlength=R)
        # cap_work holds each flow's remaining cap, switched to inf once the
        # flow freezes so min()/compare need no mask; cap_thresh is the
        # freeze band below the cap (mirrors the scalar solver's epsilon).
        cap_work = cap_l.copy()
        cap_thresh = np.full(F, np.inf)
        capped = np.isfinite(cap_l)
        if capped.any():
            cf = cap_l[capped]
            cap_thresh[capped] = cf - _EPS * np.maximum(1.0, cf)
        r_thresh = _EPS * np.maximum(1.0, r_cap)
        # Infinite-capacity resources never saturate; eps * inf would be
        # inf and `residual <= r_thresh` would hold forever, spuriously
        # freezing their users at the first saturation round's level.
        r_thresh[np.isinf(r_cap)] = -np.inf

        # All unfrozen flows grow in lockstep from zero, so the common fill
        # `level` is a scalar; per-flow rates materialize only at freeze
        # time.  Saturated resources get residual=inf once processed so
        # they drop out of both the delta min and the saturation scan.
        rate_l = np.zeros(F)
        unfrozen = np.ones(F, dtype=bool)
        ent_alive = np.ones(ent_res.size, dtype=bool)
        n_unfrozen = F
        level = 0.0
        guard = 0
        while n_unfrozen:
            guard += 1
            if guard > 4 * F + 8:  # pragma: no cover - safety net
                raise SimulationError("progressive filling failed to converge")
            dv = self._div_scratch(R)
            np.divide(residual, wsum, out=dv, where=wsum > 0.0)
            d_res = float(dv.min())
            cap_min = float(cap_work.min())
            if d_res < 0.0:
                d_res = 0.0
            delta = d_res
            # Every cap strictly below the next saturation level freezes in
            # this round: removing a capped flow only ever *raises* the
            # remaining resources' saturation levels, so no saturation can
            # overtake a lower cap.  Each such flow freezes at its own cap.
            cap_batch = cap_min - level < d_res
            if cap_batch:
                # Finite-threshold flows only: when d_res is inf (every
                # remaining constraint is an infinite resource) the band
                # `<= level + d_res` would also sweep up frozen flows and
                # uncapped ones, whose thresholds sit at inf.
                batch = cap_thresh <= level + d_res
                batch &= np.isfinite(cap_thresh)
                if not batch.any():  # pragma: no cover - numerical corner
                    cap_batch = False
            if cap_batch:
                newly = batch
                caps_b = cap_work[batch]
                rate_l[batch] = caps_b
                # residual already charges these flows at `level`; top the
                # charge up to each one's cap without advancing `level`.
                fe = batch[ent_flow]
                fe &= ent_alive
                er = ent_res[fe]
                top_up = (cap_work[ent_flow[fe]] - level) * ent_w[fe]
                residual -= np.bincount(er, weights=top_up, minlength=R)
            else:
                if not math.isfinite(delta):
                    names = sorted(
                        f.name for f, u in zip(flows, unfrozen.tolist()) if u
                    )
                    raise SimulationError(
                        f"unbounded flows in allocation: {names}"
                    )
                if delta > 0.0:
                    level += delta
                    residual -= delta * wsum
                # freeze flows riding on saturated resources at `level`
                newly = cap_thresh <= level
                sat = residual <= r_thresh
                if sat.any():
                    members = ent_flow[sat[ent_res] & ent_alive]
                    if members.size:
                        newly[members] = True
                        newly &= unfrozen
                    residual[sat] = np.inf
                n_also = int(newly.sum())
                if not n_also:  # pragma: no cover - numerical corner
                    newly = unfrozen.copy()
                rate_l[newly] = level
                fe = newly[ent_flow]
                fe &= ent_alive
                er = ent_res[fe]
            n_new = int(newly.sum())
            cap_work[newly] = np.inf
            cap_thresh[newly] = np.inf
            if er.size:
                wsum -= np.bincount(er, weights=ent_w[fe], minlength=R)
                ucount -= np.bincount(er, minlength=R)
                wsum[ucount == 0] = 0.0
                ent_alive &= ~fe
            unfrozen &= ~newly
            n_unfrozen -= n_new

        self._f_rate[slots] = rate_l
        for f, r in zip(flows, rate_l.tolist()):
            f.rate = r
        loads = np.bincount(
            ent_full_res, weights=ent_full_w * rate_l[ent_full_flow], minlength=R
        )
        load = self._load
        for r, v in zip(touched_res, loads.tolist()):
            load[r] = v

    def _schedule_next_completion(self) -> None:
        self._timer_generation += 1
        gen = self._timer_generation
        if self._array:
            horizon = self._completion_horizon_array()
        else:
            horizon = self._completion_horizon_python()
        if horizon is None:
            return
        # The generation rides in the timeout's value so no per-rebalance
        # closure needs to be allocated.  The deadline is absolute: the
        # solver computed `now + remaining/rate` directly.
        timer = self.sim.timeout_at(self.sim.now + horizon, gen)
        timer.add_callback(self._on_timer_event)

    def _completion_horizon_python(self) -> Optional[float]:
        horizon = math.inf
        for f in self._active:
            size = f.size
            if size is None or f._rate <= 0:
                continue
            remaining = size - f._transferred
            if remaining <= _EPS * size:
                horizon = 0.0
                break
            eta = remaining / f._rate
            if eta < horizon:
                horizon = eta
        if not math.isfinite(horizon):
            return None
        return horizon

    def _completion_horizon_array(self) -> Optional[float]:
        hw = self._hw
        if not hw:
            return None
        active = self._active
        if len(active) < _VECTOR_MIN_FLOWS:
            f_tr = self._f_transferred
            horizon = math.inf
            for f in active:
                size = f.size
                if size is None or f._rate <= 0:
                    continue
                remaining = size - float(f_tr[f._slot])
                if remaining <= _EPS * size:
                    return 0.0
                eta = remaining / f._rate
                if eta < horizon:
                    horizon = eta
            return horizon if math.isfinite(horizon) else None
        rate = self._f_rate[:hw]
        size = self._f_size[:hw]
        cand = (rate > 0.0) & np.isfinite(size)
        if not cand.any():
            return None
        size_c = size[cand]
        rem = size_c - self._f_transferred[:hw][cand]
        if (rem <= _EPS * size_c).any():
            return 0.0
        return float((rem / rate[cand]).min())

    def _on_timer_event(self, ev: Event) -> None:
        self._on_timer(ev._value)

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later rebalance
        self.settle()
        if self._array:
            if len(self._active) < _VECTOR_MIN_FLOWS:
                f_tr = self._f_transferred
                finished = [
                    f
                    for f in self._active
                    if f.size is not None
                    and f.size - float(f_tr[f._slot]) <= _EPS * f.size
                ]
            else:
                hw = self._hw
                size = self._f_size[:hw]
                fin = np.isfinite(size) & (
                    size - self._f_transferred[:hw] <= _EPS * size
                )
                if fin.any():
                    fin_slots = set(np.nonzero(fin)[0].tolist())
                    finished = [f for f in self._active if f._slot in fin_slots]
                else:
                    finished = []
        else:
            finished = [
                f
                for f in self._active
                if f.size is not None and f.size - f._transferred <= _EPS * f.size
            ]
        for f in finished:
            f.transferred = f.size  # snap away float dust
            self._deactivate(f)
        self._after_change()


# ---------------------------------------------------------------------------
# Gang mode: one fluid program, many scenarios, scenario index as axis 0.
# ---------------------------------------------------------------------------

@dataclass
class GangRunResult:
    """Outcome of :meth:`GangFluidProgram.run_steady` for all scenarios."""

    #: Bytes delivered per scenario and flow, shape ``(S, F)``.
    transferred: np.ndarray
    #: Completion time per scenario and flow (NaN = never finished).
    finished_at: np.ndarray
    #: Final rate allocation, shape ``(S, F)``.
    rates: np.ndarray
    #: Scenarios whose completion *order* diverged from the pilot
    #: (scenario 0).  Their numbers are still exact — per-scenario
    #: active masks keep the math correct under any order — but a
    #: caller coupling events to completion order (the simulator
    #: integration) can only replay the pilot's order, so these
    #: scenarios must defect to the scalar event kernel.
    defected: np.ndarray
    #: Batched solve/settle rounds the run took (all scenarios share them).
    rounds: int


class GangFluidProgram:
    """S scenarios of one structurally-shared fluid program, batched.

    The gang counterpart of :class:`FluidScheduler`: the *structure*
    (which flows cross which resources, with what incidence) is shared
    by every scenario, while capacities, weights, caps and sizes may
    vary per scenario — the scenario index is the leading axis of every
    array.  One progressive-filling round updates the fill level of
    **all** scenarios at once (a level *vector* where the array solver
    keeps a level scalar), with per-scenario freeze masks, batched
    residual/weight-sum accounting, and per-scenario settle/charge
    updates — so solving S scenarios costs one round-loop instead of S.

    Semantics mirror the scalar solver exactly: max-min fair sharing by
    progressive filling, per-flow caps, private-resource folding, and
    the same epsilon freeze bands (:data:`_EPS`).  The max-min
    allocation is unique, so per-scenario results agree with an
    equivalent :class:`FluidScheduler` run to floating-point tolerance;
    the differential suite (``tests/test_gang_solver.py``) holds every
    observable to 1e-6 and the batched/scalar walls are gated by
    ``benchmarks/bench_gang_solver.py``.

    What this class deliberately does **not** model is event feedback:
    a program whose completions trigger control flow (new flows, cap
    changes, recovery) is only batchable while every scenario agrees
    with the pilot's event order — :meth:`run_steady` reports scenarios
    whose completion order diverges as *defected* so the caller can
    re-run them on the ordinary event kernel.
    """

    def __init__(self, scenarios: int):
        if scenarios < 1:
            raise ValueError(f"need at least one scenario, got {scenarios}")
        self.S = int(scenarios)
        self._r_cap: list[np.ndarray] = []
        self._r_names: list[str] = []
        self._flows: list[dict] = []
        self._sealed = False
        # Built by _seal():
        self._size: Optional[np.ndarray] = None
        self._cap: Optional[np.ndarray] = None
        self.transferred: Optional[np.ndarray] = None
        self.finished_at: Optional[np.ndarray] = None
        #: account key -> (S,) accumulated charges.
        self.charged: dict = {}

    # -- construction ------------------------------------------------------

    def _per_scenario(self, value, what: str, allow_inf: bool = False
                      ) -> np.ndarray:
        out = np.broadcast_to(np.asarray(value, dtype=float),
                              (self.S,)).copy()
        if np.isnan(out).any() or (not allow_inf and np.isinf(out).any()):
            raise ValueError(f"{what} must be finite, got {value!r}")
        return out

    def add_resource(self, capacity, name: str = "") -> int:
        """Add a resource; *capacity* is a scalar or per-scenario ``(S,)``."""
        cap = self._per_scenario(capacity, f"capacity of {name!r}",
                                 allow_inf=True)
        if (cap < 0).any():
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self._r_cap.append(cap)
        self._r_names.append(name)
        return len(self._r_cap) - 1

    def add_flow(self, path, size=None, cap=None, charges=(), name: str = ""
                 ) -> int:
        """Add a flow crossing ``path`` = ``(resource_id, weight)`` pairs.

        Weights, *size* and *cap* may each be scalars or per-scenario
        ``(S,)`` arrays; ``size=None`` is an open-ended flow, ``cap=None``
        uncapped.  *charges* are ``(account_key, cost_per_byte)`` pairs
        debited into :attr:`charged` as the flow progresses.
        """
        weights: dict[int, np.ndarray] = {}
        for rid, w in path:
            if not 0 <= rid < len(self._r_cap):
                raise ValueError(f"flow {name!r}: unknown resource id {rid}")
            wv = self._per_scenario(w, f"weight of {name!r}")
            if (wv <= 0).any():
                raise ValueError(f"flow weight must be > 0, got {w!r}")
            weights[rid] = weights.get(rid, 0.0) + wv
        size_v = None if size is None else self._per_scenario(
            size, f"size of {name!r}")
        if size_v is not None and (size_v <= 0).any():
            raise ValueError(f"flow size must be > 0 or None, got {size!r}")
        cap_v = None if cap is None else self._per_scenario(
            cap, f"cap of {name!r}")
        if cap_v is not None and (cap_v <= 0).any():
            raise ValueError(f"flow cap must be > 0 or None, got {cap!r}")
        if cap_v is None and not any(
            np.isfinite(self._r_cap[rid]).all() for rid in weights
        ):
            raise ValueError(
                f"flow {name!r} is unbounded: no cap and no finite "
                "resource on path"
            )
        self._flows.append({
            "weights": weights,
            "size": size_v,
            "cap": cap_v,
            "charges": tuple((key, self._per_scenario(c, "charge"))
                             for key, c in charges),
            "name": name or f"flow{len(self._flows)}",
        })
        self._sealed = False
        return len(self._flows) - 1

    def _seal(self) -> None:
        """Freeze structure into batch arrays (idempotent until edited)."""
        if self._sealed:
            return
        S, F, R = self.S, len(self._flows), len(self._r_cap)
        self._size = np.full((S, F), np.inf)
        self._cap = np.full((S, F), np.inf)
        for j, f in enumerate(self._flows):
            if f["size"] is not None:
                self._size[:, j] = f["size"]
            if f["cap"] is not None:
                self._cap[:, j] = f["cap"]
        if self.transferred is None:
            self.transferred = np.zeros((S, F))
            self.finished_at = np.full((S, F), np.nan)
        elif self.transferred.shape != (S, F):
            raise SimulationError(
                "cannot add flows or resources after a gang run started")
        # Structural incidence (entry lists, CSR-style like the array
        # solver) and the private/shared split.  A resource with one
        # structural user never arbitrates in any scenario — fold it
        # into that flow's effective cap, exactly as the scalar solver
        # folds private resources at assembly.
        users = np.zeros(R, dtype=np.intp)
        for f in self._flows:
            for rid in f["weights"]:
                users[rid] += 1
        self._cap_eff = self._cap.copy()
        ent_flow: list[int] = []
        ent_res: list[int] = []
        ent_w: list[np.ndarray] = []
        for j, f in enumerate(self._flows):
            for rid, w in f["weights"].items():
                if users[rid] == 1:
                    cap_r = self._r_cap[rid]
                    finite = np.isfinite(cap_r)
                    if finite.any():
                        bound = np.where(finite, cap_r / w, np.inf)
                        np.minimum(self._cap_eff[:, j], bound,
                                   out=self._cap_eff[:, j])
                    continue
                ent_flow.append(j)
                ent_res.append(rid)
                ent_w.append(w)
        shared = sorted(set(ent_res))
        self._shared_cap = (
            np.stack([self._r_cap[rid] for rid in shared], axis=1)
            if shared else np.zeros((S, 0))
        )
        local = {rid: k for k, rid in enumerate(shared)}
        E, Rs = len(ent_flow), len(shared)
        self._ent_flow = np.asarray(ent_flow, dtype=np.intp)
        self._ent_res = np.asarray([local[r] for r in ent_res], dtype=np.intp)
        self._ent_w = (np.stack(ent_w, axis=1) if ent_w
                       else np.zeros((S, 0)))
        # Flattened scatter indices, built once: per-round weight sums and
        # saturation fan-out are single bincounts over these.
        rows = np.repeat(np.arange(S), E)
        self._idx_res = (rows * max(Rs, 1) + np.tile(self._ent_res, S)
                         if E else np.zeros(0, dtype=np.intp))
        self._idx_flow = (rows * F + np.tile(self._ent_flow, S)
                          if E else np.zeros(0, dtype=np.intp))
        self._sealed = True

    # -- the batched water-fill --------------------------------------------

    def solve(self, active: Optional[np.ndarray] = None) -> np.ndarray:
        """Max-min fair rates for all scenarios at once, shape ``(S, F)``.

        *active* masks flows per scenario (default: everything not yet
        finished).  Mirrors the scalar solver round for round: one
        common fill level **per scenario** (a level vector), per-round
        residual/weight-sum updates over the shared entry list, cap and
        saturation freezes with the scalar solver's epsilon bands.
        """
        self._seal()
        S, F = self.S, len(self._flows)
        if F == 0:
            return np.zeros((S, 0))
        if active is None:
            active = ~np.isfinite(self.finished_at) & (
                self.transferred < self._size)
        Rs = self._shared_cap.shape[1]
        rate = np.zeros((S, F))
        unfrozen = active.copy()
        level = np.zeros(S)
        residual = self._shared_cap.copy()
        # Inactive flows contribute nothing anywhere: mask their entries out
        # of residual/wsum for the whole solve.
        sat_thresh = _EPS * np.maximum(1.0, self._shared_cap)
        sat_thresh[np.isinf(self._shared_cap)] = -np.inf
        cap_eff = self._cap_eff
        with np.errstate(invalid="ignore"):
            cap_thresh = np.where(
                np.isfinite(cap_eff),
                cap_eff - _EPS * np.maximum(1.0, cap_eff), np.inf)
        flow_sat = np.zeros(S * F)
        guard = 0
        while unfrozen.any():
            guard += 1
            if guard > 4 * F + 8:  # pragma: no cover - safety net
                raise SimulationError(
                    "gang progressive filling failed to converge")
            alive = unfrozen[:, self._ent_flow] if Rs else unfrozen[:, :0]
            w_alive = self._ent_w * alive
            wsum = np.bincount(
                self._idx_res, weights=w_alive.ravel(),
                minlength=S * max(Rs, 1)).reshape(S, -1)[:, :Rs]
            with np.errstate(divide="ignore", invalid="ignore"):
                dv = np.where(wsum > 0.0, residual / wsum, np.inf)
            d_res = dv.min(axis=1, initial=np.inf)
            np.maximum(d_res, 0.0, out=d_res)
            cap_room = np.where(unfrozen, cap_eff - rate, np.inf).min(
                axis=1, initial=np.inf)
            delta = np.minimum(d_res, cap_room)
            busy = unfrozen.any(axis=1)
            if (busy & ~np.isfinite(delta)).any():
                bad = int(np.nonzero(busy & ~np.isfinite(delta))[0][0])
                names = sorted(self._flows[j]["name"]
                               for j in np.nonzero(unfrozen[bad])[0])
                raise SimulationError(
                    f"unbounded flows in gang allocation "
                    f"(scenario {bad}): {names}")
            delta[~busy] = 0.0
            rate += delta[:, None] * unfrozen
            level += delta
            if Rs:
                residual -= delta[:, None] * wsum
            at_cap = unfrozen & (rate >= cap_thresh)
            if Rs:
                sat = residual <= sat_thresh
                sat_e = (sat[:, self._ent_res] & alive).ravel()
                flow_sat[:] = 0.0
                np.add.at(flow_sat, self._idx_flow[sat_e], 1.0)
                newly = unfrozen & (
                    at_cap | (flow_sat.reshape(S, F) > 0.0))
            else:
                newly = at_cap
            # Numerical corner (mirrors the scalar solver): a busy
            # scenario where nothing froze this round freezes whole.
            stuck = busy & ~newly.any(axis=1)
            if stuck.any():
                newly |= unfrozen & stuck[:, None]
            unfrozen &= ~newly
        return rate

    # -- settle + steady-state driving -------------------------------------

    def settle(self, rates: np.ndarray, dt) -> None:
        """Advance all scenarios by *dt* (scalar or ``(S,)``) at *rates*."""
        self._seal()
        dt_v = np.broadcast_to(np.asarray(dt, dtype=float), (self.S,))
        moved = rates * dt_v[:, None]
        np.minimum(moved, self._size - self.transferred, out=moved)
        self.transferred += moved
        for j, f in enumerate(self._flows):
            for key, per_byte in f["charges"]:
                acct = self.charged.get(key)
                if acct is None:
                    acct = self.charged[key] = np.zeros(self.S)
                acct += per_byte * moved[:, j]

    def run_steady(self, duration: float) -> GangRunResult:
        """Drive every scenario to *duration*, completing sized flows.

        Each batched round advances **every** scenario to its own next
        event (earliest flow completion, else the horizon), so rounds
        are bounded by flows + 1 regardless of how completion times
        spread across scenarios.  Scenario-divergent completion order is
        handled exactly (per-scenario active masks) and *reported*: see
        :attr:`GangRunResult.defected`.
        """
        self._seal()
        S, F = self.S, len(self._flows)
        t = np.zeros(S)
        sequences: list[list[int]] = [[] for _ in range(S)]
        rates = np.zeros((S, F))
        rounds = 0
        while True:
            running = t < duration - _EPS * max(1.0, duration)
            if not running.any():
                break
            rounds += 1
            active = (~np.isfinite(self.finished_at)
                      & (self.transferred < self._size)
                      & running[:, None])
            rates = self.solve(active=active)
            with np.errstate(divide="ignore", invalid="ignore"):
                eta = np.where(active & (rates > 0.0),
                               (self._size - self.transferred) / rates,
                               np.inf)
            eta_min = eta.min(axis=1, initial=np.inf)
            t_next = np.where(running,
                              np.minimum(duration, t + eta_min), t)
            self.settle(rates, t_next - t)
            finished_now = active & np.isfinite(self._size) & (
                self._size - self.transferred <= _EPS * self._size)
            if finished_now.any():
                self.transferred[finished_now] = np.broadcast_to(
                    self._size, finished_now.shape)[finished_now]
                self.finished_at[finished_now] = np.broadcast_to(
                    t_next[:, None], finished_now.shape)[finished_now]
                for s, j in zip(*np.nonzero(finished_now)):
                    sequences[s].append(int(j))
            t = t_next
        pilot = sequences[0]
        defected = np.asarray([seq != pilot for seq in sequences])
        return GangRunResult(transferred=self.transferred.copy(),
                             finished_at=self.finished_at.copy(),
                             rates=rates, defected=defected, rounds=rounds)
