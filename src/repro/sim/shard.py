"""Topology-sharded parallel simulation with boundary-flow exchange.

A fabric of hundreds of hosts cannot run as one event simulation in
reasonable wall-clock time: one shared WAN resource merges every pod's
flows into a single fluid component, so every job start/stop rebalances
the whole fleet.  This module partitions the topology into **cells**
(pods): each cell keeps its hosts' NUMA-local rails, NICs and links
intact inside one private :class:`~repro.sim.context.Context`, and the
fabric is cut only along WAN/aggregation links — the
:class:`BoundaryLink` set.  Cells then run as independent tasks on the
:mod:`repro.exec` process pool, grouped into shard slices.

**Boundary protocol.**  The simulated horizon is split into fixed
epochs.  Inside a cell, each cut link is represented by a
:class:`~repro.net.link.CutLinkStub` whose per-epoch capacity is the
cell's granted share of the real link.  Cross-boundary flows traverse
the stub and carry a per-flow charge account, so the cell records,
per ``(boundary, epoch)``, each flow's exact byte count (charges are
debited by the fluid scheduler itself, so flows that start *and*
finish inside one epoch are still accounted).  Rounds iterate
waveform-relaxation style:

1. round 0 runs every cell with optimistic grants (the full link);
2. the coordinator water-fills each ``(boundary, epoch)`` over the
   reported per-flow demands — a flow on a saturated stub that is not
   pinned at its own rate cap counts as *hungry* (unbounded want) —
   and grants each cell the sum of its flows' shares plus an equal
   split of any slack;
3. cells re-run under the new grant series until the grant matrix is
   stable within ``tol`` (epsilon mode) or for a fixed round count.

If round 0 shows every boundary unsaturated, it is accepted
immediately — the common case for well-provisioned fabrics costs one
round.  The fixed point of the iteration is the *flow-level* max-min
fair allocation over the cut links, the same allocation the unsharded
kernel computes, which is what the 1e-6 differential suite checks.

**Determinism.**  The cell — not the shard — is the unit of
simulation: cell *i* always runs in its own context seeded
``cell_seed(seed, i)``, whatever shard slice it lands in, and the
coordinator's arithmetic is over deterministically ordered arrays.
Results are therefore byte-identical across worker counts *and* shard
counts; only wall-clock changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exec import SimTask, run_tasks
from repro.net.link import CutLinkStub
from repro.sim.context import Context

__all__ = [
    "BoundaryLink",
    "BoundaryPort",
    "ShardStats",
    "cell_seed",
    "run_sharded",
    "run_unsharded",
    "slice_cells",
]

#: Relative slack treated as saturation when classifying stub epochs.
_SAT_EPS = 1e-9

#: Grant floor as a fraction of ``capacity / n_cells`` — keeps a cell
#: that reported zero demand from being starved into a zero-capacity
#: stub it could never report demand through again.
_GRANT_FLOOR = 1e-3


@dataclass(frozen=True)
class BoundaryLink:
    """One cut link: a WAN/aggregation hop shared by every cell."""

    name: str
    #: Usable rate in bytes/second (per direction; cells see egress).
    capacity: float


class ShardStats:
    """Process-global exchange counters (report footers, tests)."""

    total_runs = 0
    total_rounds = 0
    total_cells_run = 0
    total_early_accepts = 0
    total_unconverged = 0

    @classmethod
    def note_run(cls, rounds: int, cells_run: int, early: bool,
                 converged: bool) -> None:
        cls.total_runs += 1
        cls.total_rounds += rounds
        cls.total_cells_run += cells_run
        if early:
            cls.total_early_accepts += 1
        if not converged:
            cls.total_unconverged += 1

    @classmethod
    def process_totals(cls) -> dict:
        return {
            "runs": cls.total_runs,
            "rounds": cls.total_rounds,
            "cells_run": cls.total_cells_run,
            "early_accepts": cls.total_early_accepts,
            "unconverged": cls.total_unconverged,
        }


def cell_seed(seed: int, cell: int) -> int:
    """The derived root seed of cell *cell* (same recipe as ``RngRegistry.fork``)."""
    return (seed * 1_000_003 + cell + 1) % (2 ** 63)


def slice_cells(n_cells: int, n_shards: int) -> List[List[int]]:
    """Partition ``range(n_cells)`` into ``n_shards`` balanced contiguous slices."""
    n_shards = max(1, min(n_shards, n_cells))
    base, extra = divmod(n_cells, n_shards)
    slices, start = [], 0
    for s in range(n_shards):
        width = base + (1 if s < extra else 0)
        slices.append(list(range(start, start + width)))
        start += width
    return slices


class _Acc:
    """A per-flow byte accumulator usable as a fluid charge account."""

    __slots__ = ("total", "snap")

    def __init__(self) -> None:
        self.total = 0.0
        self.snap = 0.0

    def add(self, amount: float) -> None:
        self.total += amount


class BoundaryPort:
    """A cell's attachment to one cut link.

    In **sharded** mode the port owns a :class:`CutLinkStub` whose
    capacity follows the cell's per-epoch grant series; in
    **unsharded** mode (``grants=None``) it wraps the shared real
    resource.  Either way, :meth:`flow_leg` hands builders the path
    element and charge pair a cross-boundary flow must carry, so cell
    models are written once and run identically under both modes.
    """

    def __init__(self, ctx: Context, boundary: BoundaryLink,
                 grants: Optional[Sequence[float]] = None,
                 epoch_dt: float = 1.0,
                 shared_resource=None):
        self.ctx = ctx
        self.boundary = boundary
        self.epoch_dt = float(epoch_dt)
        self._accounts: List[tuple[_Acc, Optional[float]]] = []
        self._epoch_flows: List[List[List[float]]] = []
        self._epoch_saturated: List[bool] = []
        self._grants = None if grants is None else [float(g) for g in grants]
        if grants is None:
            if shared_resource is None:
                raise ValueError("unsharded port needs the shared resource")
            self.stub = None
            self.resource = shared_resource
        else:
            self.stub = CutLinkStub(ctx, f"{boundary.name}/cut",
                                    self._grants[0])
            self.resource = self.stub.resource
            if len(self._grants) > 1:
                ctx.sim.process(self._ticker(), name=f"{boundary.name}/epochs")

    # -- builder API -------------------------------------------------------
    def flow_leg(self, cap: Optional[float] = None):
        """Path element + charge pair for one cross-boundary flow.

        *cap* is the flow's own rate cap, if any — used to tell a flow
        pinned at its cap apart from one starved by the stub when the
        stub saturates (only the latter is *hungry* at the exchange).
        """
        acc = _Acc()
        self._accounts.append((acc, cap))
        return [(self.resource, 1.0)], [(acc, 1.0)]

    # -- epoch bookkeeping (sharded mode) ----------------------------------
    def _harvest(self, grant: float) -> None:
        # Charges are debited lazily; close the accounting up to *now*
        # before reading the per-flow accumulators.
        self.ctx.fluid.settle()
        dt = self.epoch_dt
        rows: List[List[float]] = []
        total = 0.0
        for acc, cap in self._accounts:
            delta = acc.total - acc.snap
            acc.snap = acc.total
            if delta <= 0.0:
                continue
            total += delta
            pinned = 1.0 if (cap is not None
                             and delta >= cap * dt * (1.0 - _SAT_EPS)) else 0.0
            rows.append([delta / dt, pinned])
        self._epoch_flows.append(rows)
        self._epoch_saturated.append(total >= grant * dt * (1.0 - _SAT_EPS))

    def _ticker(self):
        sim = self.ctx.sim
        grants = self._grants
        for e in range(1, len(grants)):
            yield sim.timeout_at(e * self.epoch_dt)
            self._harvest(grants[e - 1])
            # Under churn coalescing every stub re-granted at this epoch
            # instant (and any same-instant job churn) shares a single
            # deferred rebalance, flushed before the clock advances.
            self.stub.set_capacity(grants[e])

    def finalize(self) -> None:
        """Close the last epoch (call after the cell's run returns)."""
        if self._grants is not None:
            self._harvest(self._grants[-1])

    def demand(self) -> dict:
        """The cell's per-epoch demand report for the coordinator."""
        return {"flows": self._epoch_flows,
                "saturated": [bool(s) for s in self._epoch_saturated]}

    @property
    def transferred(self) -> float:
        """Total bytes this cell moved across the boundary."""
        return sum(acc.total for acc, _cap in self._accounts)


# -- cell-slice task target ------------------------------------------------

def run_cell_slice(*, seed: int, cal, target: str, cells: Sequence[int],
                   horizon: float, epoch_dt: float,
                   boundaries: Sequence[Sequence],
                   grants: Dict[str, Dict[str, Sequence[float]]],
                   params: Dict[str, Any]) -> List[dict]:
    """Run one shard slice: each cell in its own context, sequentially.

    ``grants[boundary][str(cell)]`` is the per-epoch capacity series
    granted to *cell* on *boundary*.  The cell target (an importable
    ``"module:function"``) is called as ``fn(ctx=, cell=, ports=,
    horizon=, **params)`` and must return a ``finish()`` callable
    producing the cell's ledger.  Returns one
    ``{"ledger", "demand"}`` record per cell, in *cells* order.
    """
    fn = SimTask(target).resolve()
    blinks = [BoundaryLink(str(name), float(cap)) for name, cap in boundaries]
    out: List[dict] = []
    for cell in cells:
        ctx = Context.create(seed=cell_seed(seed, cell), cal=cal)
        ports = {
            b.name: BoundaryPort(ctx, b, grants=grants[b.name][str(cell)],
                                 epoch_dt=epoch_dt)
            for b in blinks
        }
        finish = fn(ctx=ctx, cell=cell, ports=ports, horizon=horizon, **params)
        ctx.sim.run(until=horizon)
        for port in ports.values():
            port.finalize()
        out.append({
            "ledger": finish(),
            "demand": {name: port.demand() for name, port in ports.items()},
        })
    return out


# -- the coordinator -------------------------------------------------------

def _waterfill(capacity: float, wants: np.ndarray) -> np.ndarray:
    """Max-min fair shares of *capacity* over *wants* (inf = hungry)."""
    n = wants.size
    shares = np.empty(n)
    order = np.argsort(wants, kind="stable")
    remaining = float(capacity)
    left = n
    for idx in order:
        level = remaining / left
        share = wants[idx] if wants[idx] < level else level
        shares[idx] = share
        remaining -= share
        left -= 1
    return shares


def _next_grants(boundary: BoundaryLink, n_cells: int, n_epochs: int,
                 demands: List[dict]) -> np.ndarray:
    """One boundary's next grant matrix ``(n_cells, n_epochs)``."""
    cap = boundary.capacity
    grants = np.empty((n_cells, n_epochs))
    floor = _GRANT_FLOOR * cap / max(1, n_cells)
    for e in range(n_epochs):
        wants: List[float] = []
        owner: List[int] = []
        for c in range(n_cells):
            rows = demands[c]["flows"][e]
            hungry = demands[c]["saturated"][e]
            for rate, pinned in rows:
                wants.append(np.inf if hungry and not pinned else rate)
                owner.append(c)
        if not wants:
            grants[:, e] = cap / n_cells
            continue
        shares = _waterfill(cap, np.asarray(wants))
        per_cell = np.zeros(n_cells)
        np.add.at(per_cell, owner, shares)
        slack = max(0.0, cap - float(shares.sum()))
        grants[:, e] = np.maximum(per_cell + slack / n_cells, floor)
    return grants


def _oversubscribed(boundary: BoundaryLink, demands: List[dict],
                    n_epochs: int, tol: float) -> bool:
    """Whether round 0 showed any epoch contending for *boundary*."""
    for e in range(n_epochs):
        total = 0.0
        for d in demands:
            if d["saturated"][e]:
                return True
            total += sum(rate for rate, _p in d["flows"][e])
        if total > boundary.capacity * (1.0 - tol):
            return True
    return False


def run_sharded(*, target: str, n_cells: int,
                boundaries: Sequence[BoundaryLink], horizon: float,
                epoch_dt: float, params: Optional[Dict[str, Any]] = None,
                seed: int = 0, cal=None, n_shards: int = 0,
                tol: float = 1e-9, max_rounds: int = 6,
                fixed_rounds: int = 0) -> dict:
    """Run *n_cells* cells of *target* under the boundary-exchange protocol.

    ``n_shards=0`` slices one shard per ambient worker.  ``tol`` /
    ``max_rounds`` control the epsilon-converged iteration;
    ``fixed_rounds > 0`` instead runs exactly that many rounds
    (deterministic fixed-round mode).  The result —
    ``{"cells": [ledger...], "exchange": {...}}`` — is byte-identical
    whatever the worker or shard count.
    """
    from repro.exec.runner import get_exec_context

    if horizon <= 0 or epoch_dt <= 0:
        raise ValueError("horizon and epoch_dt must be > 0")
    n_epochs = max(1, int(round(horizon / epoch_dt)))
    if abs(n_epochs * epoch_dt - horizon) > 1e-9 * horizon:
        raise ValueError(
            f"horizon {horizon} must be a whole number of epochs of {epoch_dt}")
    params = dict(params or {})
    blist = list(boundaries)
    bnames = [b.name for b in blist]
    if len(set(bnames)) != len(bnames):
        raise ValueError("boundary names must be unique")
    if n_shards <= 0:
        n_shards = get_exec_context().effective_jobs
    slices = slice_cells(n_cells, n_shards)

    # Round 0: optimistic grants — every cell may burst to the full link.
    grants = {b.name: np.full((n_cells, n_epochs), b.capacity)
              for b in blist}

    def _round(tag: str) -> List[dict]:
        tasks = [
            SimTask(
                "repro.sim.shard:run_cell_slice",
                {
                    "target": target,
                    "cells": cells,
                    "horizon": horizon,
                    "epoch_dt": epoch_dt,
                    "boundaries": [[b.name, b.capacity] for b in blist],
                    "grants": {
                        b.name: {str(c): list(grants[b.name][c])
                                 for c in cells}
                        for b in blist
                    },
                    "params": params,
                },
                seed=seed, cal=cal,
                label=f"shard/{tag}/cells{cells[0]}-{cells[-1]}",
            )
            for cells in slices
        ]
        merged: List[dict] = []
        for piece in run_tasks(tasks):
            merged.extend(piece)
        return merged

    rounds_wanted = fixed_rounds if fixed_rounds > 0 else max_rounds
    results = _round("r0")
    rounds_run = 1
    early = False
    converged = False
    if fixed_rounds <= 0:
        demands_by_b = {
            b.name: [r["demand"][b.name] for r in results] for b in blist}
        if not any(_oversubscribed(b, demands_by_b[b.name], n_epochs, tol)
                   for b in blist):
            early = converged = True
    while not converged and rounds_run < rounds_wanted:
        new = {b.name: _next_grants(b, n_cells, n_epochs,
                                    [r["demand"][b.name] for r in results])
               for b in blist}
        if rounds_run >= 3:
            # Damp late rounds: a 2-cycle between two grant matrices
            # otherwise never meets the epsilon test.
            new = {name: 0.5 * (new[name] + grants[name]) for name in new}
        if fixed_rounds <= 0:
            drift = max(
                float(np.max(np.abs(new[b.name] - grants[b.name]))) / b.capacity
                for b in blist)
            if drift <= tol:
                converged = True
                break
        grants = new
        results = _round(f"r{rounds_run}")
        rounds_run += 1
    if fixed_rounds > 0:
        converged = True

    exchange = {
        "mode": "sharded",
        "rounds": rounds_run,
        "early_accept": early,
        "converged": converged,
        "n_cells": n_cells,
        "n_shards": len(slices),
        "n_epochs": n_epochs,
        "boundaries": {
            b.name: {
                "capacity": b.capacity,
                "bytes": float(sum(
                    sum(rate for rate, _p in r["demand"][b.name]["flows"][e])
                    for r in results for e in range(n_epochs)) * epoch_dt),
            }
            for b in blist
        },
    }
    for name, row in exchange["boundaries"].items():
        row["utilization"] = row["bytes"] / (
            exchange["boundaries"][name]["capacity"] * horizon)
    ShardStats.note_run(rounds_run, rounds_run * n_cells, early, converged)
    return {"cells": [r["ledger"] for r in results], "exchange": exchange}


def run_unsharded(*, target: str, n_cells: int,
                  boundaries: Sequence[BoundaryLink], horizon: float,
                  epoch_dt: float, params: Optional[Dict[str, Any]] = None,
                  seed: int = 0, cal=None) -> dict:
    """The reference: every cell in **one** shared event simulation.

    Cut links are ordinary shared fluid resources, so the kernel
    computes the global flow-level max-min allocation directly.  Each
    cell still draws from its own registry seeded ``cell_seed(seed,
    cell)`` — the same streams as the sharded run — so the two modes
    see identical workloads and differ only in how boundary bandwidth
    is arbitrated.
    """
    from repro.sim.fluid import FluidResource

    params = dict(params or {})
    fn = SimTask(target).resolve()
    base = Context.create(seed=seed, cal=cal)
    blist = list(boundaries)
    shared = {}
    for b in blist:
        res = FluidResource(base.fluid, b.capacity, b.name)
        res.kind = "link"  # type: ignore[attr-defined]
        shared[b.name] = res
    finishers: List[Callable[[], dict]] = []
    cell_ports: List[Dict[str, BoundaryPort]] = []
    for cell in range(n_cells):
        from repro.sim.rng import RngRegistry

        ctx = Context(sim=base.sim, fluid=base.fluid,
                      rng=RngRegistry(cell_seed(seed, cell)),
                      trace=base.trace, cal=base.cal, faults=base.faults,
                      rkeys=base.rkeys)
        ports = {
            b.name: BoundaryPort(ctx, b, grants=None, epoch_dt=epoch_dt,
                                 shared_resource=shared[b.name])
            for b in blist
        }
        finishers.append(
            fn(ctx=ctx, cell=cell, ports=ports, horizon=horizon, **params))
        cell_ports.append(ports)
    base.sim.run(until=horizon)
    # flush(): settle progress *and* apply any coalesced rebalance so
    # the finishers read fully settled rates and accumulators.
    base.fluid.flush()
    ledgers = [finish() for finish in finishers]
    exchange = {
        "mode": "unsharded",
        "rounds": 1,
        "early_accept": False,
        "converged": True,
        "n_cells": n_cells,
        "n_shards": 1,
        "n_epochs": max(1, int(round(horizon / epoch_dt))),
        "boundaries": {
            b.name: {
                "capacity": b.capacity,
                "bytes": float(sum(p[b.name].transferred
                                   for p in cell_ports)),
                "utilization": float(sum(p[b.name].transferred
                                         for p in cell_ports))
                / (b.capacity * horizon),
            }
            for b in blist
        },
    }
    return {"cells": ledgers, "exchange": exchange}


# -- reference cell model (docs, protocol tests, microbenchmarks) ----------

def demo_cell(*, ctx: Context, cell: int, ports: Dict[str, BoundaryPort],
              horizon: float, n_local: int = 2, local_rate: float = 100e6,
              cross_rate: Optional[float] = None, cross_skew: float = 0.0,
              boundary: str = "wan0"):
    """A minimal cell: *n_local* private flows + one cross-boundary flow.

    The cross flow's own cap is ``cross_rate * (1 + cross_skew * cell)``
    (None = uncapped), giving tests an asymmetric-demand knob.  Ledger:
    per-flow transferred bytes.
    """
    from repro.sim.fluid import FluidFlow, FluidResource

    local_res = FluidResource(ctx.fluid, local_rate, f"cell{cell}/local")
    locals_ = []
    for i in range(n_local):
        flow = FluidFlow([(local_res, 1.0)], size=None,
                         name=f"cell{cell}/l{i}")
        locals_.append(flow)
        ctx.fluid.start(flow)
    cap = (None if cross_rate is None
           else cross_rate * (1.0 + cross_skew * cell))
    path, charges = ports[boundary].flow_leg(cap=cap)
    cross = FluidFlow(path, size=None, cap=cap, charges=charges,
                      name=f"cell{cell}/x")
    ctx.fluid.start(cross)

    def finish() -> dict:
        # Bulk drain: one settle covers every still-open flow (identical
        # to stopping them one by one, but a single coalesced rebalance).
        ctx.fluid.finish_many(
            [f for f in locals_ + [cross] if f._active])
        return {
            "cell": cell,
            "local_bytes": [f.transferred for f in locals_],
            "cross_bytes": cross.transferred,
        }

    return finish
