"""Backfill sampling: analytic telemetry instead of 1 Hz sampler ticks.

Profiling paper-scale runs (``exp_fig13_wan_bw.run(quick=False)``) shows
the event loop dominated not by dynamics but by *telemetry*: ~4,800 of
~4,928 steps are periodic sampler ticks, each paying a heap push/pop, a
generator resume, a fluid settle and a Python-level sample.  The fluid
model makes every flow's rate **piecewise-constant between rebalances**,
so those samples are closed-form computable — there is no information in
a 1 Hz probe of a linear function.

This module exploits that.  Probes declare *channels* on a per-simulator
:class:`SamplerHub` instead of spawning one generator process each:

* a **rate** channel wraps a cumulative counter ``C(t)`` (bytes moved,
  CPU seconds, events processed) and records
  ``(C(t_k) - C(t_k - dt)) / dt`` at every sample point ``t_k``;
* a **gauge** channel wraps an instantaneous value that is
  piecewise-constant between fluid epochs (resource utilization, load).

Two backends implement the same sampling (``REPRO_SAMPLER``, default
``backfill``):

``backfill``
    The hub subscribes to :class:`~repro.sim.fluid.FluidScheduler` rate
    epochs.  At every epoch boundary (rebalance/settle), and at run
    boundaries and channel ``stop()``, all elapsed sample points in
    ``(last_epoch, now]`` are vectorized with NumPy: cumulative counters
    are linear within an epoch, so the backfilled rates are exact
    (``rate x dt``), and gauges hold one value per epoch.  Quiescent
    intervals are fast-forwarded with **zero heap events**.

``event``
    The legacy reference: one :func:`periodic`-style generator process
    per channel, one timeout event and one Python sample per tick.  Kept
    fully functional for differential testing
    (``tests/test_sampler_equivalence.py``).

Both backends agree to floating-point tolerance on every fluid-driven
series (throughput, CPU, utilization): the arithmetic differs only in
settle chunking (``rate*dt1 + rate*dt2`` vs ``rate*(dt1+dt2)``).  The
one exception is *kernel self-measurement*: event-rate channels count
simulator events, and the event backend's own ticks are events, so their
series are definitionally backend-dependent (the backfill backend
linearly interpolates the dynamics-event count between epochs).

The sampler backend is part of the result-cache identity
(:mod:`repro.exec.task`): cached entries never replay across backends.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.fluid import FluidScheduler
    from repro.sim.trace import TimeSeries

__all__ = ["SAMPLERS", "default_sampler", "hub_for", "SamplerHub", "Channel"]

#: Recognized sampler backends.
SAMPLERS = ("backfill", "event")

#: Channel kinds (see :class:`Channel`).
KINDS = ("rate", "gauge")

#: Sample points within this fraction of an interval of an epoch
#: boundary are treated as landing exactly on it.
_T_EPS = 1e-9


def default_sampler() -> str:
    """The backend named by ``REPRO_SAMPLER`` (default: ``backfill``)."""
    kind = os.environ.get("REPRO_SAMPLER", "").strip().lower()
    if not kind:
        return "backfill"
    if kind not in SAMPLERS:
        raise ValueError(
            f"REPRO_SAMPLER must be one of {SAMPLERS}, got {kind!r}"
        )
    return kind


def hub_for(sim: Simulator) -> "SamplerHub":
    """The simulator's :class:`SamplerHub` (created on first use)."""
    hub = sim.sampler_hub
    if hub is None:
        hub = SamplerHub(sim)
        sim.sampler_hub = hub
    return hub


class Channel:
    """One declared telemetry stream: counter + interval + target series.

    ``kind="rate"`` treats ``counter()`` as a cumulative total and
    records per-interval average rates; ``kind="gauge"`` treats it as an
    instantaneous value (piecewise-constant between fluid epochs).

    Under the ``event`` backend the channel runs the legacy per-tick
    generator process; under ``backfill`` it only stores anchors and is
    fast-forwarded by the hub at epoch/run boundaries.
    """

    __slots__ = ("hub", "counter", "interval", "series", "kind", "mode",
                 "pre_sample", "_next_t", "_last_total", "_t0", "_c0",
                 "_proc", "_stopped")

    def __init__(
        self,
        hub: "SamplerHub",
        counter: Callable[[], float],
        interval: float,
        series: "TimeSeries",
        kind: str = "rate",
        mode: Optional[str] = None,
        pre_sample: Optional[Callable[[], None]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        if mode is None:
            mode = default_sampler()
        elif mode not in SAMPLERS:
            raise ValueError(f"mode must be one of {SAMPLERS}, got {mode!r}")
        self.hub = hub
        self.counter = counter
        self.interval = float(interval)
        self.series = series
        self.kind = kind
        self.mode = mode
        self.pre_sample = pre_sample
        self._stopped = False
        now = hub.sim.now
        self._next_t = now + self.interval
        self._t0 = now
        self._last_total = float(counter()) if kind == "rate" else 0.0
        self._c0 = self._last_total
        self._proc = None
        if mode == "event":
            self._proc = hub.sim.process(
                self._tick_loop(), name=f"sampler:{series.name}"
            )
        else:
            hub._channels.append(self)

    # -- event backend (legacy per-tick sampling) -------------------------------
    def _tick_loop(self):
        sim = self.hub.sim
        interval = self.interval
        while True:
            yield sim.timeout(interval)
            self._sample_tick(sim.now)

    def _sample_tick(self, now: float) -> None:
        if self.pre_sample is not None:
            self.pre_sample()
        if self.kind == "gauge":
            self.series.record(now, float(self.counter()))
            return
        total = float(self.counter())
        self.series.record(now, (total - self._last_total) / self.interval)
        self._last_total = total

    # -- backfill backend -------------------------------------------------------
    def _pending(self, now: float) -> int:
        """How many sample points are due in ``(last, now]``."""
        span = now - self._next_t
        tol = _T_EPS * self.interval
        if span < -tol:
            return 0
        return int(span / self.interval + _T_EPS) + 1

    def _on_epoch(self, now: float) -> int:
        """Fast-forward the channel to *now*; returns samples recorded.

        Called with fluid progress already settled at *now* and (for
        gauges) rates/loads still holding their values for the epoch
        that is ending, so ``counter()`` is exact for every backfilled
        point.
        """
        if self.kind == "gauge":
            n = self._pending(now)
            if n:
                iv = self.interval
                ts = self._next_t + iv * np.arange(n)
                v = float(self.counter())
                self.series.record_many(ts, np.full(n, v))
                self._next_t = float(ts[-1]) + iv
            return n
        # rate: the cumulative counter is linear over (_t0, now].
        c1 = float(self.counter())
        t0 = self._t0
        elapsed = now - t0
        if elapsed <= 0.0:
            self._c0 = c1
            return 0
        n = self._pending(now)
        if n:
            iv = self.interval
            c0 = self._c0
            ts = self._next_t + iv * np.arange(n)
            totals = c0 + (ts - t0) * ((c1 - c0) / elapsed)
            if abs(float(ts[-1]) - now) <= _T_EPS * iv:
                # Snap the boundary sample to the exact counter reading
                # (no interpolation dust at epoch ends).
                totals[-1] = c1
            prev = np.empty(n)
            prev[0] = self._last_total
            prev[1:] = totals[:-1]
            self.series.record_many(ts, (totals - prev) / iv)
            self._last_total = float(totals[-1])
            self._next_t = float(ts[-1]) + iv
        self._t0 = now
        self._c0 = c1
        return n

    # -- lifecycle --------------------------------------------------------------
    def flush(self) -> None:
        """Materialize every sample due up to the current instant."""
        if self.mode == "event" or self._stopped:
            return
        self.hub.flush()

    def stop(self) -> "TimeSeries":
        """Flush pending samples, detach the channel, return its series."""
        if self._stopped:
            return self.series
        if self.mode == "event":
            self._stopped = True
            if self._proc.is_alive:
                self._proc.interrupt("probe stopped")
        else:
            self.hub.flush()
            self._stopped = True
            try:
                self.hub._channels.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass
        return self.series


class SamplerHub:
    """Per-simulator registry of backfill channels and fluid schedulers.

    Created lazily by :func:`hub_for` and stored on
    ``Simulator.sampler_hub``.  :class:`~repro.sim.fluid.FluidScheduler`
    registers itself at construction and notifies the hub from
    ``settle()`` whenever simulated time advances (a rate epoch ends);
    the engine flushes the hub at ``run()`` boundaries so series are
    current when control returns to the caller.
    """

    #: Process-global totals (like FluidStats), for report footers.
    total_samples_backfilled = 0
    total_events_skipped = 0

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._channels: List[Channel] = []
        self._schedulers: List["FluidScheduler"] = []

    # -- wiring ----------------------------------------------------------------
    def attach_scheduler(self, scheduler: "FluidScheduler") -> None:
        """Subscribe to *scheduler*'s rate epochs (idempotent)."""
        if scheduler not in self._schedulers:
            self._schedulers.append(scheduler)

    def channel(
        self,
        counter: Callable[[], float],
        interval: float,
        series: "TimeSeries",
        kind: str = "rate",
        mode: Optional[str] = None,
        pre_sample: Optional[Callable[[], None]] = None,
    ) -> Channel:
        """Declare a telemetry channel (see :class:`Channel`)."""
        return Channel(self, counter, interval, series, kind=kind,
                       mode=mode, pre_sample=pre_sample)

    @property
    def active(self) -> bool:
        """True when any backfill channel is registered."""
        return bool(self._channels)

    # -- epoch fan-out ----------------------------------------------------------
    def on_epoch(self, now: float) -> None:
        """A rate epoch ended at *now*: backfill every channel.

        Idempotent — calling twice at the same instant records nothing
        the second time.
        """
        channels = self._channels
        if not channels:
            return
        total = 0
        for ch in channels:
            total += ch._on_epoch(now)
        if total:
            stats = self.sim.stats
            stats.samples_backfilled += total
            stats.events_skipped += total
            SamplerHub.total_samples_backfilled += total
            SamplerHub.total_events_skipped += total

    def flush(self) -> None:
        """Settle fluid progress and fast-forward all channels to now.

        Settling a scheduler whose clock is behind triggers
        :meth:`on_epoch` by itself; the explicit call afterwards covers
        channels on simulators with no (or already-settled) schedulers.
        """
        if not self._channels:
            return
        for sched in self._schedulers:
            sched.settle()
        self.on_epoch(self.sim.now)

    @classmethod
    def process_totals(cls) -> dict[str, int]:
        """The process-global counters as a plain dict."""
        return {
            "samples_backfilled": cls.total_samples_backfilled,
            "events_skipped": cls.total_events_skipped,
        }
