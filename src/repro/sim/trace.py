"""Measurement: time series, throughput probes and a structured trace log.

These utilities produce the data behind every figure: throughput
timelines (Figs. 9, 11), CPU-utilization windows (Figs. 8, 10, 12, 14)
and per-event traces used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.sampling import hub_for

__all__ = ["TimeSeries", "ThroughputProbe", "EventRateProbe", "TraceLog", "periodic"]


@dataclass
class TimeSeries:
    """An append-only (time, value) series with summary helpers."""

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        """Append one entry."""
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards in series {self.name!r}")
        self.times.append(t)
        self.values.append(v)

    def record_many(self, times: Any, values: Any) -> None:
        """Append a batch of entries (the backfill sampler's bulk path).

        ``times`` must be non-decreasing and start no earlier than the
        last recorded time; both inputs are flat array-likes of equal
        length.  Semantically identical to calling :meth:`record` in a
        loop, but the monotonicity check is vectorized.
        """
        ts = np.asarray(times, dtype=float)
        vs = np.asarray(values, dtype=float)
        if ts.ndim != 1 or ts.shape != vs.shape:
            raise ValueError(
                f"record_many needs equal-length 1-D arrays, got "
                f"{ts.shape} and {vs.shape}"
            )
        if ts.size == 0:
            return
        if (ts.size > 1 and np.any(np.diff(ts) < 0)) or (
            self.times and ts[0] < self.times[-1]
        ):
            raise ValueError(f"time went backwards in series {self.name!r}")
        self.times.extend(ts.tolist())
        self.values.extend(vs.tolist())

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        """Arithmetic mean of the recorded values (0 if empty)."""
        return float(np.mean(self.values)) if self.values else 0.0

    def steady_mean(self, skip_fraction: float = 0.2) -> float:
        """Mean after discarding the initial ramp-up window."""
        if not self.values:
            return 0.0
        skip = int(len(self.values) * skip_fraction)
        tail = self.values[skip:] or self.values
        return float(np.mean(tail))

    def max(self) -> float:
        """Maximum recorded value."""
        return float(np.max(self.values)) if self.values else 0.0

    def min(self) -> float:
        """Minimum recorded value."""
        return float(np.min(self.values)) if self.values else 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The series as (times, values) NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def sparkline(self, width: int = 60, lo: Optional[float] = None,
                  hi: Optional[float] = None) -> str:
        """A unicode sparkline of the series (the poor man's figure).

        Values are bucketed to *width* columns (mean per bucket) and
        mapped onto eight block heights between *lo* and *hi* (default:
        0 to the series max).
        """
        if not self.values:
            return ""
        blocks = " ▁▂▃▄▅▆▇█"
        values = np.asarray(self.values, dtype=float)
        n = min(width, len(values))
        buckets = [
            float(chunk.mean())
            for chunk in np.array_split(values, n)
        ]
        low = 0.0 if lo is None else lo
        high = float(max(buckets)) if hi is None else hi
        span = max(high - low, 1e-12)
        out = []
        for v in buckets:
            idx = int(round((v - low) / span * (len(blocks) - 1)))
            out.append(blocks[max(0, min(idx, len(blocks) - 1))])
        return "".join(out)


def periodic(sim: Simulator, interval: float, fn: Callable[[float], None]):
    """A process generator calling ``fn(now)`` every *interval* seconds."""
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")

    def _proc():
        while True:
            yield sim.timeout(interval)
            fn(sim.now)

    return sim.process(_proc(), name=f"periodic:{getattr(fn, '__name__', 'fn')}")


class ThroughputProbe:
    """Samples a cumulative byte counter into a rate (bytes/s) time series.

    ``counter`` is any zero-argument callable returning cumulative bytes
    (e.g. a closure over ``flow.transferred``, possibly summing several
    flows).  Each sample records the average rate over the last interval.

    The probe is a thin veneer over a :class:`~repro.sim.sampling.Channel`
    declared on the simulator's :class:`~repro.sim.sampling.SamplerHub`:
    under the default ``backfill`` backend sample points are materialized
    analytically at fluid-epoch boundaries (zero heap events), while
    ``sampler="event"`` runs the classic per-tick generator process.
    ``pre_sample`` (e.g. ``scheduler.settle``) runs before each per-tick
    sample under the event backend; the backfill backend settles as part
    of epoch handling and does not need it.
    """

    def __init__(
        self,
        sim: Simulator,
        counter: Callable[[], float],
        interval: float = 1.0,
        name: str = "",
        pre_sample: Optional[Callable[[], None]] = None,
        sampler: Optional[str] = None,
    ):
        self.sim = sim
        self.counter = counter
        self.interval = interval
        self.series = TimeSeries(name=name or "throughput")
        self._channel = hub_for(sim).channel(
            counter, interval, self.series, kind="rate",
            mode=sampler, pre_sample=pre_sample,
        )

    @property
    def sampler(self) -> str:
        """The backend this probe runs under (``backfill`` or ``event``)."""
        return self._channel.mode

    def flush(self) -> None:
        """Materialize every sample due up to the current instant."""
        self._channel.flush()

    def stop(self) -> TimeSeries:
        """Stop the activity; returns/flushes what it accumulated."""
        return self._channel.stop()


class EventRateProbe:
    """Samples the kernel's event counters into a rate time series.

    Each sample records how many simulator events were processed per
    *simulated* second over the last interval — the kernel-load view that
    pairs with :class:`ThroughputProbe`'s byte view.  Reads the
    :class:`~repro.sim.engine.SimStats` counters maintained by the engine.

    This is kernel *self*-measurement, so the series depends on the
    sampler backend by construction: under ``event`` each tick is itself
    an event and contributes to the counts it samples, while ``backfill``
    schedules no ticks and linearly interpolates the dynamics-only event
    count across each fluid epoch.  Cross-backend comparisons should use
    fluid-driven series (throughput, CPU, utilization) instead.
    """

    def __init__(self, sim: Simulator, interval: float = 1.0, name: str = "",
                 sampler: Optional[str] = None):
        self.sim = sim
        self.interval = interval
        self.series = TimeSeries(name=name or "events/s")
        stats = sim.stats
        self._channel = hub_for(sim).channel(
            lambda: float(stats.events_processed), interval, self.series,
            kind="rate", mode=sampler,
        )

    @property
    def sampler(self) -> str:
        """The backend this probe runs under (``backfill`` or ``event``)."""
        return self._channel.mode

    def flush(self) -> None:
        """Materialize every sample due up to the current instant."""
        self._channel.flush()

    def stop(self) -> TimeSeries:
        """Stop the activity; returns/flushes what it accumulated."""
        return self._channel.stop()


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    category: str
    message: str
    fields: tuple[tuple[str, Any], ...] = ()


class TraceLog:
    """A structured, filterable event log (used heavily by tests)."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, category: str, message: str, **fields: Any) -> None:
        """Record one structured entry."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(self.sim.now, category, message, tuple(sorted(fields.items())))
        )

    def snapshot_stats(self, category: str = "sim-stats") -> None:
        """Emit one record carrying the simulator's kernel counters."""
        self.emit(category, "kernel counters", **self.sim.stats.as_dict())

    def filter(self, category: str) -> list[TraceRecord]:
        """Entries of one category."""
        return [r for r in self.records if r.category == category]

    def messages(self, category: Optional[str] = None) -> list[str]:
        """Message strings, optionally filtered by category."""
        return [
            r.message for r in self.records if category is None or r.category == category
        ]

    def __len__(self) -> int:
        return len(self.records)
