"""Simulation context: the bundle every model component is built against.

A :class:`Context` glues together the event engine, the fluid bandwidth
scheduler, the RNG registry, the trace log and the calibration constants.
Passing one object (instead of five) keeps constructor signatures sane and
guarantees all components of one experiment share a clock and a fair-share
domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.fluid import FluidScheduler
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import Calibration

__all__ = ["Context"]


@dataclass
class Context:
    """Shared simulation state for one experiment run."""

    sim: Simulator
    fluid: FluidScheduler
    rng: RngRegistry
    trace: TraceLog
    cal: "Calibration"
    #: Fault injector, when one is attached (see :mod:`repro.faults`).
    faults: Optional[Any] = None
    #: Per-context rkey registry: machine -> {id(pd): pd}.  Owned here so
    #: registrations never leak across contexts (ConnectionManager uses it).
    rkeys: Dict[Any, Dict[int, Any]] = field(default_factory=dict)

    @classmethod
    def create(cls, seed: int = 0, cal: "Calibration | None" = None) -> "Context":
        """Build a fresh context with its own clock and calibration.

        When the ``REPRO_FAULTS`` environment variable names a fault
        plan, a :class:`~repro.faults.injector.FaultInjector` driving it
        is attached — the ambient form of ``--faults`` (inherited by
        worker processes, part of the result-cache identity).
        """
        from repro.core.calibration import CALIBRATION

        sim = Simulator()
        ctx = cls(
            sim=sim,
            fluid=FluidScheduler(sim),
            rng=RngRegistry(seed),
            trace=TraceLog(sim),
            cal=cal if cal is not None else CALIBRATION,
        )
        from repro.faults.plan import ambient_plan

        plan = ambient_plan()
        if plan is not None and not plan.empty:
            from repro.faults.injector import FaultInjector

            FaultInjector(ctx, plan)
        return ctx

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now
