"""Discrete-event simulation engine.

A minimal but complete event-driven kernel:

* :class:`Simulator` owns the clock and the event heap.
* :class:`Event` is a one-shot occurrence with callbacks and a value.
* :class:`Process` drives a Python generator; ``yield event`` suspends the
  process until the event fires, and the yielded event's value becomes the
  result of the ``yield`` expression.  A ``return value`` in the generator
  becomes the process's own event value.
* :class:`Timeout` fires after a fixed delay.
* :class:`AnyOf` / :class:`AllOf` compose events.
* :meth:`Process.interrupt` raises :class:`Interrupt` inside the generator.

The design follows SimPy's semantics closely (so anyone familiar with SimPy
can read the protocol code), but is implemented from scratch and trimmed to
what this library needs.
"""

from __future__ import annotations

import sys
import time
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimStats",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, negative delay...)."""


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The value passed to interrupt()."""
        return self.args[0] if self.args else None


# Event priorities: interrupts preempt normal events scheduled at the same
# simulated instant so that an interrupted process observes the interrupt
# before e.g. a simultaneous timeout.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence.

    Lifecycle: *pending* -> triggered (scheduled on the heap) -> processed
    (callbacks ran).  ``succeed``/``fail`` trigger it; ``value`` holds the
    payload (or the exception for failed events).

    Events are their own heap entries: ``_time``/``_prio``/``_seq`` are the
    scheduling key (set by :meth:`Simulator._push`), so scheduling allocates
    no per-event wrapper tuple.  The callback list is allocated lazily on
    the first ``add_callback`` — most timeouts carry exactly one waiter and
    many events none at all.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name",
                 "_time", "_prio", "_seq")

    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._time = 0.0
        self._prio = NORMAL
        self._seq = 0

    def __lt__(self, other: "Event") -> bool:
        # Heap ordering: (time, priority, schedule sequence).
        if self._time != other._time:
            return self._time < other._time
        if self._prio != other._prio:
            return self._prio < other._prio
        return self._seq < other._seq

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it is or will be processed)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (raises if not yet triggered)."""
        if self._value is Event._PENDING:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._push(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event sees *exc* raised at its ``yield``.
        """
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._push(self, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed.

        If the event has already been processed the callback runs
        immediately (this makes waiting on completed events race-free).
        """
        if self._processed:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:
        state = (
            "processed" if self._processed else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        sim._push(self, NORMAL, delay=delay)


class Process(Event):
    """Drives a generator; the process itself is an event (its completion).

    The generator yields :class:`Event` instances.  When the yielded event
    fires, the generator resumes with the event's value (or the exception,
    if the event failed and the generator doesn't catch it, the process
    fails).
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Kick off the generator at the current simulated instant.
        boot = Event(sim)
        boot._ok = True
        boot._value = None
        sim._push(boot, NORMAL)
        boot.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        intr = Event(self.sim, name="interrupt")
        intr._ok = False
        intr._value = Interrupt(cause)
        # Detach from whatever we were waiting on.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.sim._push(intr, URGENT)
        intr.add_callback(self._resume)

    # -- generator pump -----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        event: Any = None
        try:
            if trigger._ok:
                event = self._gen.send(trigger._value)
            else:
                event = self._gen.throw(trigger._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
                return
            raise

        if not isinstance(event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {event!r}; processes must yield Events"
            )
        if event.sim is not self.sim:
            raise SimulationError("yielded event belongs to a different Simulator")
        self._waiting_on = event
        event.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on a set of events."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._processed and ev._ok}

    def _check(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its events fires (failures propagate)."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all of its events have fired (failures propagate)."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class SimStats:
    """Kernel counters: scheduling volume, heap pressure and wall time.

    ``events_scheduled``/``events_processed`` count heap pushes/pops,
    ``heap_peak`` is the largest simultaneous schedule, ``timeouts_reused``
    counts free-list hits, and ``wall_seconds`` accumulates real time spent
    inside :meth:`Simulator.run`.  ``samples_backfilled`` counts telemetry
    samples materialized analytically by the backfill sampler
    (:mod:`repro.sim.sampling`) and ``events_skipped`` the heap events
    those samples would have cost under the per-tick sampler.
    """

    __slots__ = ("events_scheduled", "events_processed", "heap_peak",
                 "timeouts_reused", "samples_backfilled", "events_skipped",
                 "wall_seconds")

    def __init__(self) -> None:
        self.events_scheduled = 0
        self.events_processed = 0
        self.heap_peak = 0
        self.timeouts_reused = 0
        self.samples_backfilled = 0
        self.events_skipped = 0
        self.wall_seconds = 0.0

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "heap_peak": self.heap_peak,
            "timeouts_reused": self.timeouts_reused,
            "samples_backfilled": self.samples_backfilled,
            "events_skipped": self.events_skipped,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"<SimStats scheduled={self.events_scheduled} "
            f"processed={self.events_processed} heap_peak={self.heap_peak} "
            f"timeouts_reused={self.timeouts_reused} "
            f"backfilled={self.samples_backfilled} "
            f"wall={self.wall_seconds:.3g}s>"
        )


# Timeouts recycled per simulator; bounds free-list memory.
_TIMEOUT_POOL_MAX = 256


class Simulator:
    """The event loop: a clock plus a priority heap of triggered events."""

    #: Process-global count of events processed by *all* simulators ever
    #: created in this interpreter.  The benchmark harness snapshots this
    #: around an experiment to derive an events/sec figure without needing
    #: a handle on the (often many) simulators the experiment builds.
    events_processed_total = 0

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._timeout_pool: list[Timeout] = []
        self.stats = SimStats()
        #: Lazily-created telemetry hub (see :mod:`repro.sim.sampling`).
        #: The engine only flushes it at run() boundaries; everything else
        #: lives on the sampling side to keep the kernel dependency-free.
        self.sampler_hub = None
        #: Advance hooks: callbacks invoked whenever the clock is about
        #: to move past the current instant (and at run() boundaries).
        #: The fluid scheduler's churn coalescer registers here so that
        #: same-timestamp flow transitions share one deferred rebalance
        #: flushed before any later event observes the new rates.
        self._advance_hooks: list[Callable[[], None]] = []

    def add_advance_hook(self, hook: Callable[[], None]) -> None:
        """Run *hook()* before the clock advances past the current instant.

        Hooks also run when the schedule drains or a ``run()`` horizon is
        reached, so deferred work (e.g. a coalesced rebalance that must
        schedule the next flow completion) cannot be lost at the end of a
        timestamp.  Hooks must be idempotent and may schedule new events
        (including at the current instant); they must never unschedule.
        """
        self._advance_hooks.append(hook)

    def _flush_advance_hooks(self) -> bool:
        """Run all advance hooks; True if they scheduled new events."""
        hooks = self._advance_hooks
        if not hooks:
            return False
        before = self.stats.events_scheduled
        for hook in hooks:
            hook()
        return self.stats.events_scheduled != before

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def _push(self, event: Event, priority: int, delay: float = 0.0,
              at: Optional[float] = None) -> None:
        event._time = self._now + delay if at is None else at
        event._prio = priority
        self._seq = seq = self._seq + 1
        event._seq = seq
        heap = self._heap
        heappush(heap, event)
        stats = self.stats
        stats.events_scheduled += 1
        if len(heap) > stats.heap_peak:
            stats.heap_peak = len(heap)

    # -- factories ------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* seconds from now.

        Reuses a processed, unreferenced ``Timeout`` from the free list
        when one is available (the dominant allocation in long runs).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            tm = pool.pop()
            tm._ok = True
            tm._value = value
            tm._processed = False
            tm.callbacks = None
            tm.name = ""
            self.stats.timeouts_reused += 1
            self._push(tm, NORMAL, delay=delay)
            return tm
        return Timeout(self, delay, value)

    def timeout_at(self, at: float, value: Any = None) -> Timeout:
        """An event firing at absolute simulated time *at* (>= now).

        Equivalent to ``timeout(at - now)`` except the deadline is used
        verbatim — no ``now + (at - now)`` round trip — so callers that
        computed an absolute completion time keep it to the last bit.
        """
        if at < self._now:
            raise SimulationError(f"timeout_at({at}) is before now={self._now}")
        pool = self._timeout_pool
        if pool:
            tm = pool.pop()
            tm._ok = True
            tm._value = value
            tm._processed = False
            tm.callbacks = None
            tm.name = ""
            self.stats.timeouts_reused += 1
        else:
            tm = Timeout.__new__(Timeout)
            Event.__init__(tm, self)
            tm._ok = True
            tm._value = value
        self._push(tm, NORMAL, at=at)
        return tm

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process driving *gen*; returns its completion event."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of the given events fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of the given events have fired."""
        return AllOf(self, events)

    # -- running ---------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        heap = self._heap
        if not heap:
            raise SimulationError("step() on an empty schedule")
        if self._advance_hooks and heap[0]._time > self._now:
            # The current instant is over: flush deferred work before any
            # later event runs (hooks may schedule earlier events, e.g. a
            # coalesced rebalance's completion timer — heappop finds them).
            for hook in self._advance_hooks:
                hook()
        event = heappop(heap)
        t = event._time
        if t < self._now - 1e-12:
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        if t > self._now:
            self._now = t
        self.stats.events_processed += 1
        Simulator.events_processed_total += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        if callbacks:
            for cb in callbacks:
                cb(event)
        # Recycle plain timeouts nobody holds a reference to any more
        # (CPython: the local `event` plus getrefcount's own argument).
        if (
            type(event) is Timeout
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and sys.getrefcount(event) == 2
        ):
            event._value = None
            self._timeout_pool.append(event)

    def peek(self) -> float:
        """Time of the next event, or +inf if none."""
        return self._heap[0]._time if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None``  — run until no events remain.
        * ``until=float`` — run until the clock reaches that time.
        * ``until=Event`` — run until the event fires; returns its value
          (raising if the event failed).
        """
        t0 = time.perf_counter()
        try:
            if until is None:
                while True:
                    while self._heap:
                        self.step()
                    # A deferred flush may schedule the next completion;
                    # keep going until the hooks add nothing new.
                    if not self._flush_advance_hooks():
                        return None

            if isinstance(until, Event):
                target = until
                while not target.processed:
                    if not self._heap:
                        if self._flush_advance_hooks():
                            continue
                        raise SimulationError(
                            f"simulation starved before {target!r} fired"
                        )
                    self.step()
                if target._ok:
                    return target._value
                raise target._value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(f"cannot run until {horizon} < now={self._now}")
            heap = self._heap
            while True:
                while heap and heap[0]._time <= horizon:
                    self.step()
                # Flush deferred work before the clock jumps to the
                # horizon: a coalesced rebalance may schedule completions
                # inside the horizon, in which case the loop resumes.
                if not self._flush_advance_hooks():
                    break
                if not (heap and heap[0]._time <= horizon):
                    break
            self._now = horizon
            return None
        finally:
            # Backfill samplers materialize pending telemetry at run
            # boundaries so series are current when control returns to
            # the caller (no-op unless backfill channels are registered,
            # keeping per-tick sampling byte-identical to its history).
            hub = self.sampler_hub
            if hub is not None and hub._channels:
                hub.flush()
            self.stats.wall_seconds += time.perf_counter() - t0
