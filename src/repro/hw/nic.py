"""Network interface cards: RoCE and InfiniBand adapters.

A :class:`Nic` sits in a PCIe slot of a :class:`~repro.hw.topology.Machine`
and will later be cabled to a :class:`~repro.net.link.Link` by the network
layer.  Its job here is to provide the *DMA path*: the fluid resources a
byte crosses between host memory and the wire — PCIe slot plus the memory
bank (crossing QPI if the buffer lives on the other node, which is exactly
the placement the paper's NUMA tuning avoids).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.hw.topology import Machine, PcieSlot
from repro.sim.fluid import FluidResource
from repro.util.units import gbps

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link

__all__ = ["NicKind", "Nic"]


class NicKind(enum.Enum):
    """Adapter families: the paper's testbed NICs (Table 1) plus the
    100 GbE generation its ref [5] anticipates."""

    ROCE_QDR = "RoCE QDR 40Gbps"
    IB_FDR = "IB FDR 56Gbps"
    ROCE_100G = "RoCE 100GbE"

    @property
    def line_rate(self) -> float:
        """Signalling rate in bytes/second."""
        return {
            NicKind.ROCE_QDR: gbps(40.0),
            NicKind.IB_FDR: gbps(56.0),
            NicKind.ROCE_100G: gbps(100.0),
        }[self]

    @property
    def is_roce(self) -> bool:
        """True for the Ethernet (RoCE) family, False for InfiniBand."""
        return self is not NicKind.IB_FDR


class Nic:
    """One RDMA-capable adapter."""

    def __init__(
        self,
        machine: Machine,
        slot: PcieSlot,
        kind: NicKind,
        mtu: int = 9000,
        name: str = "",
    ):
        if slot.device is not None:
            raise ValueError(f"PCIe slot {slot.index} already occupied")
        self.machine = machine
        self.slot = slot
        self.kind = kind
        self.mtu = mtu
        self.name = name or f"{machine.name}/nic{slot.index}"
        self.link: Optional["Link"] = None
        slot.device = self

    @property
    def node(self) -> int:
        """The NUMA node the adapter is local to."""
        return self.slot.socket

    @property
    def line_rate(self) -> float:
        """Signalling rate in bytes/second."""
        return self.kind.line_rate

    def data_rate(self) -> float:
        """Line rate after encoding/framing efficiency (calibrated)."""
        cal = self.machine.ctx.cal
        if self.kind is NicKind.IB_FDR:
            return cal.derived_ib_data_rate()
        eff = (cal.roce_mtu9000_efficiency if self.mtu >= 9000
               else cal.roce_mtu1500_efficiency)
        return self.kind.line_rate * eff

    # -- DMA paths ------------------------------------------------------------
    def dma_read_path(
        self, buffer_node: int, traffic: float = 1.0
    ) -> list[tuple[FluidResource, float]]:
        """Host memory -> wire: PCIe 'to device' plus the memory read."""
        path = [(self.slot.to_device, 1.0)]
        path += self.machine.mem_path(self.node, buffer_node, traffic)
        return path

    def dma_write_path(
        self, buffer_node: int, traffic: float = 1.0
    ) -> list[tuple[FluidResource, float]]:
        """Wire -> host memory: PCIe 'from device' plus the memory write."""
        path = [(self.slot.from_device, 1.0)]
        path += self.machine.mem_path(self.node, buffer_node, traffic)
        return path

    def __repr__(self) -> str:
        return f"<Nic {self.name!r} {self.kind.value} node={self.node}>"
