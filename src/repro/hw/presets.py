"""Testbed host presets from Table 1 of the paper.

Three host classes:

* **Front-end LAN** — IBM X3650 M4 class: 2 x Intel Xeon E5-2660 (2.2 GHz,
  16 cores total), 128 GB, three 40 Gbps RoCE QDR adapters.
* **Back-end LAN** — 2 x Intel Xeon E5-2650 (2.0 GHz, 16 cores), 384 GB
  (the borrowed 768 GB DIMM configuration backs the tmpfs store), two
  56 Gbps IB FDR adapters.
* **WAN** — ANI testbed hosts: Intel Xeon E5-2670 (2.9 GHz, 12 cores
  across 2 nodes), 64 GB, one 40 Gbps RoCE QDR adapter.

NIC socket placement follows the paper's Figure 2 layout: adapters are
distributed across sockets so that NUMA-aware binding can route each
link's traffic through its local node.
"""

from __future__ import annotations

from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.sim.context import Context

__all__ = ["frontend_lan_host", "backend_lan_host", "wan_host"]


def frontend_lan_host(ctx: Context, name: str, with_ib: bool = False) -> Machine:
    """Front-end LAN host: 16 cores / 2 nodes / 128 GB / 3 x RoCE QDR.

    With ``with_ib=True`` the host additionally carries the two IB FDR
    adapters it uses as an iSER initiator toward the back-end SAN
    (the Figure 5 end-to-end layout).
    """
    pcie = (0, 1, 0) + ((0, 1) if with_ib else ())
    machine = Machine(
        ctx,
        name,
        n_sockets=2,
        cores_per_socket=8,
        ghz=2.2,
        mem_bytes_per_node=64 << 30,
        pcie_sockets=pcie,
    )
    for slot in machine.pcie_slots[:3]:
        Nic(machine, slot, NicKind.ROCE_QDR, mtu=9000)
    for slot in machine.pcie_slots[3:]:
        Nic(machine, slot, NicKind.IB_FDR, mtu=65520)
    return machine


def backend_lan_host(ctx: Context, name: str) -> Machine:
    """Back-end SAN host: 16 cores / 2 nodes / 384 GB / 2 x IB FDR."""
    machine = Machine(
        ctx,
        name,
        n_sockets=2,
        cores_per_socket=8,
        ghz=2.0,
        mem_bytes_per_node=192 << 30,
        pcie_sockets=(0, 1),  # one FDR adapter per socket (Fig. 2)
    )
    for slot in machine.pcie_slots:
        Nic(machine, slot, NicKind.IB_FDR, mtu=65520)
    return machine


def wan_host(ctx: Context, name: str, with_ib: bool = False) -> Machine:
    """ANI WAN host: 12 cores / 2 nodes / 64 GB / 1 x RoCE QDR.

    ``with_ib=True`` adds two IB FDR adapters for the hypothetical
    full-end-to-end WAN deployment the paper argues for in §4.4 but
    could not build ("we cannot relocate our entire testbed system to
    the point of presence site").
    """
    pcie = (0,) + ((0, 1) if with_ib else ())
    machine = Machine(
        ctx,
        name,
        n_sockets=2,
        cores_per_socket=6,
        ghz=2.9,
        mem_bytes_per_node=32 << 30,
        pcie_sockets=pcie,
    )
    Nic(machine, machine.pcie_slots[0], NicKind.ROCE_QDR, mtu=9000)
    for slot in machine.pcie_slots[1:]:
        Nic(machine, slot, NicKind.IB_FDR, mtu=65520)
    return machine
