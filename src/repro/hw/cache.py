"""Cache-coherence cost model (MESI) and its fluid-level aggregate.

The paper's Fig. 7/8 asymmetry — NUMA binding wins 19% on writes but only
7.6% on reads, and saves 3x CPU on writes — is a cache-coherence effect:

    "A write request essentially is a memory-write operation, and if it
     is executed without NUMA-aware tuning, one such operation will
     invalidate all other data copies in the caches at other NUMA nodes.
     [...] When read requests are executed, [...] the data copies are
     always 'cached' or 'shared' instead of 'modified', and hence, the
     overhead from cache coherency is minimal."  (§4.2)

Two layers are provided:

* :class:`MesiCache` — an explicit per-line MESI state machine over a set
  of caching agents (NUMA nodes).  Used by tests to validate the model's
  asymmetry story and by the real datapath for line-level experiments.
* :func:`coherence_costs` — the fluid aggregate: given the fraction of
  written pages with remote sharers, the extra CPU seconds/byte and extra
  interconnect traffic/byte a write stream pays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import Calibration

__all__ = ["MesiState", "MesiCache", "CoherenceCosts", "coherence_costs"]


class MesiState(enum.Enum):
    """Per-agent cache line states of the MESI protocol."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class AccessOutcome:
    """What one access did: resulting state plus coherence actions."""

    state: MesiState
    invalidations: int  # remote copies invalidated
    remote_fetch: bool  # line supplied by another agent or memory
    writeback: bool  # a dirty remote copy had to be written back


class MesiCache:
    """A directory of MESI line states across *n_agents* caching agents.

    This is a protocol-correctness model, not a timing model: timing is
    derived in the fluid layer.  Lines are identified by integer ids
    (e.g. ``address // line_size``).
    """

    def __init__(self, n_agents: int):
        if n_agents < 1:
            raise ValueError(f"n_agents must be >= 1, got {n_agents}")
        self.n_agents = n_agents
        # line id -> list of per-agent states
        self._lines: dict[int, list[MesiState]] = {}
        self.stats = {"invalidations": 0, "remote_fetches": 0, "writebacks": 0}

    def _states(self, line: int) -> list[MesiState]:
        states = self._lines.get(line)
        if states is None:
            states = [MesiState.INVALID] * self.n_agents
            self._lines[line] = states
        return states

    def state(self, line: int, agent: int) -> MesiState:
        """Current state of *line* in *agent*'s cache."""
        return self._states(line)[agent]

    def sharers(self, line: int) -> list[int]:
        """Agents holding a valid copy of *line*."""
        return [
            i for i, s in enumerate(self._states(line)) if s is not MesiState.INVALID
        ]

    def read(self, line: int, agent: int) -> AccessOutcome:
        """Agent reads the line; returns the coherence actions taken."""
        states = self._states(line)
        mine = states[agent]
        if mine is not MesiState.INVALID:
            return AccessOutcome(mine, 0, False, False)
        # Read miss.
        writeback = False
        others = [i for i in range(self.n_agents) if states[i] is not MesiState.INVALID]
        for i in others:
            if states[i] is MesiState.MODIFIED:
                writeback = True  # dirty data supplied + written back
            states[i] = MesiState.SHARED
        new_state = MesiState.SHARED if others else MesiState.EXCLUSIVE
        states[agent] = new_state
        remote = bool(others)
        if remote:
            self.stats["remote_fetches"] += 1
        if writeback:
            self.stats["writebacks"] += 1
        return AccessOutcome(new_state, 0, remote, writeback)

    def write(self, line: int, agent: int) -> AccessOutcome:
        """Agent writes the line; remote copies are invalidated."""
        states = self._states(line)
        mine = states[agent]
        if mine is MesiState.MODIFIED:
            return AccessOutcome(mine, 0, False, False)
        invalidated = 0
        writeback = False
        remote = False
        for i in range(self.n_agents):
            if i == agent:
                continue
            if states[i] is not MesiState.INVALID:
                if states[i] is MesiState.MODIFIED:
                    writeback = True
                    remote = True
                states[i] = MesiState.INVALID
                invalidated += 1
        if mine is MesiState.INVALID and not remote:
            remote = invalidated > 0  # ownership transfer counts as remote
        states[agent] = MesiState.MODIFIED
        self.stats["invalidations"] += invalidated
        if remote:
            self.stats["remote_fetches"] += 1
        if writeback:
            self.stats["writebacks"] += 1
        return AccessOutcome(MesiState.MODIFIED, invalidated, remote, writeback)

    def evict(self, line: int, agent: int) -> bool:
        """Drop the line from *agent*; returns True if it was dirty."""
        states = self._states(line)
        dirty = states[agent] is MesiState.MODIFIED
        states[agent] = MesiState.INVALID
        return dirty


@dataclass(frozen=True)
class CoherenceCosts:
    """Aggregate per-byte penalties for a write stream."""

    cpu_per_byte: float  # extra core-seconds per byte written
    qpi_traffic_factor: float  # extra interconnect bytes per byte written


def coherence_costs(
    cal: "Calibration", remote_shared_fraction: float, is_write: bool
) -> CoherenceCosts:
    """Fluid-level coherence penalty of an access stream.

    ``remote_shared_fraction`` is the fraction of touched pages whose
    cache lines have copies on *other* NUMA nodes.  Reads never invalidate
    (lines move to Shared), so their penalty is negligible; writes pay an
    invalidation cost per byte plus extra interconnect traffic, which is
    exactly the Fig. 7/8 asymmetry.
    """
    check_fraction("remote_shared_fraction", remote_shared_fraction)
    if not is_write:
        return CoherenceCosts(0.0, 0.0)
    remote = remote_shared_fraction
    local = 1.0 - remote
    cpu = (
        remote * cal.coherence_invalidate_cpu_per_byte
        + local * cal.coherence_local_cpu_per_byte
    )
    qpi = remote * cal.coherence_traffic_factor
    return CoherenceCosts(cpu_per_byte=cpu, qpi_traffic_factor=qpi)
