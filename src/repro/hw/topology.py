"""NUMA machine topology: sockets, cores, memory banks, interconnect, PCIe.

A :class:`Machine` owns the fluid resources for one host:

* one memory-bandwidth resource per NUMA node (STREAM-calibrated),
* one inter-socket (QPI) resource per direction,
* one CPU resource per NUMA node, capacity in core-seconds/second,
* one PCIe resource per slot per direction.

Components above express their memory traffic via :meth:`Machine.mem_path`,
which routes local accesses to the local bank and remote accesses across
QPI (with the remote-access derating the paper's tuning removes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.context import Context
from repro.sim.fluid import FluidResource
from repro.util.validation import check_index, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.nic import Nic

__all__ = ["Core", "Socket", "MemoryBank", "PcieSlot", "Machine"]


@dataclass(frozen=True)
class Core:
    """One CPU core."""

    index: int
    socket: int


@dataclass
class MemoryBank:
    """The memory attached to one NUMA node."""

    node: int
    size_bytes: int
    bandwidth: FluidResource


@dataclass
class Socket:
    """One CPU package: cores plus its local memory bank."""

    index: int
    cores: tuple[Core, ...]
    memory: MemoryBank
    cpu: FluidResource  # capacity = len(cores) core-seconds/second
    ghz: float = 2.0

    @property
    def n_cores(self) -> int:
        """Number of CPU cores."""
        return len(self.cores)


@dataclass
class PcieSlot:
    """A PCIe slot with socket affinity and per-direction bandwidth."""

    index: int
    socket: int
    to_device: FluidResource  # DMA reads (host memory -> device)
    from_device: FluidResource  # DMA writes (device -> host memory)
    device: Optional["Nic"] = None


class Machine:
    """A NUMA host assembled from fluid resources.

    Parameters mirror Table 1 of the paper.  ``pcie_sockets`` gives the
    socket affinity of each PCIe slot (one NIC per slot).
    """

    def __init__(
        self,
        ctx: Context,
        name: str,
        *,
        n_sockets: int = 2,
        cores_per_socket: int = 8,
        ghz: float = 2.2,
        mem_bytes_per_node: int = 64 << 30,
        pcie_sockets: Iterable[int] = (),
        mem_bandwidth_per_node: Optional[float] = None,
        qpi_bandwidth: Optional[float] = None,
    ):
        check_positive("n_sockets", n_sockets)
        check_positive("cores_per_socket", cores_per_socket)
        cal = ctx.cal
        self.ctx = ctx
        self.name = name
        mem_bw = (
            mem_bandwidth_per_node
            if mem_bandwidth_per_node is not None
            else cal.mem_bandwidth_per_node
        )
        qpi_bw = qpi_bandwidth if qpi_bandwidth is not None else cal.qpi_bandwidth

        self.sockets: list[Socket] = []
        core_index = 0
        for s in range(n_sockets):
            cores = tuple(
                Core(index=core_index + i, socket=s) for i in range(cores_per_socket)
            )
            core_index += cores_per_socket
            mem_res = FluidResource(ctx.fluid, mem_bw, f"{name}/mem{s}")
            mem_res.kind = "mem"  # type: ignore[attr-defined]
            bank = MemoryBank(
                node=s,
                size_bytes=mem_bytes_per_node,
                bandwidth=mem_res,
            )
            cpu = FluidResource(
                ctx.fluid, float(cores_per_socket), f"{name}/cpu{s}"
            )
            cpu.kind = "cpu"  # type: ignore[attr-defined]
            self.sockets.append(
                Socket(index=s, cores=cores, memory=bank, cpu=cpu, ghz=ghz)
            )

        # One QPI resource per ordered socket pair direction.  For the
        # two-socket machines of the paper this is two resources.
        self._qpi: dict[tuple[int, int], FluidResource] = {}
        for a in range(n_sockets):
            for b in range(n_sockets):
                if a != b:
                    qpi = FluidResource(ctx.fluid, qpi_bw, f"{name}/qpi{a}->{b}")
                    qpi.kind = "qpi"  # type: ignore[attr-defined]
                    self._qpi[(a, b)] = qpi

        self.pcie_slots: list[PcieSlot] = []
        for i, sock in enumerate(pcie_sockets):
            check_index("pcie socket", sock, n_sockets)
            tx = FluidResource(ctx.fluid, cal.pcie_gen3_x8_bandwidth, f"{name}/pcie{i}.tx")
            rx = FluidResource(ctx.fluid, cal.pcie_gen3_x8_bandwidth, f"{name}/pcie{i}.rx")
            tx.kind = "pcie"  # type: ignore[attr-defined]
            rx.kind = "pcie"  # type: ignore[attr-defined]
            self.pcie_slots.append(
                PcieSlot(index=i, socket=sock, to_device=tx, from_device=rx)
            )

    # -- queries ------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.sockets)

    @property
    def n_cores(self) -> int:
        """Number of CPU cores."""
        return sum(s.n_cores for s in self.sockets)

    @property
    def total_memory_bytes(self) -> int:
        """Installed memory across all banks."""
        return sum(s.memory.size_bytes for s in self.sockets)

    def socket_of_core(self, core: int) -> int:
        """The socket index owning a core."""
        check_index("core", core, self.n_cores)
        return core // self.sockets[0].n_cores

    def numa_distance(self, a: int, b: int) -> int:
        """Linux-convention NUMA distance (10 local, 21 remote)."""
        check_index("node a", a, self.n_nodes)
        check_index("node b", b, self.n_nodes)
        return 10 if a == b else 21

    def cpu_resource(self, node: int) -> FluidResource:
        """The node's CPU fluid resource (capacity = cores)."""
        check_index("node", node, self.n_nodes)
        return self.sockets[node].cpu

    def mem_bank(self, node: int) -> MemoryBank:
        """The node's memory bank."""
        check_index("node", node, self.n_nodes)
        return self.sockets[node].memory

    def qpi(self, src: int, dst: int) -> FluidResource:
        """The directed interconnect resource between two sockets."""
        if src == dst:
            raise ValueError("QPI link requires distinct sockets")
        return self._qpi[(src, dst)]

    def cabled_nics(self, node: Optional[int] = None) -> "list[Nic]":
        """Adapters that are installed *and* cabled, in slot order.

        ``node`` filters to adapters whose PCIe slot hangs off that
        socket — the rail-locality query the transfer-service scheduler
        uses to respect socket locality (see
        :func:`repro.rdma.fabric.rail_locality_map` for the grouped
        form).
        """
        if node is not None:
            check_index("node", node, self.n_nodes)
        return [
            s.device
            for s in self.pcie_slots
            if s.device is not None and s.device.link is not None
            and (node is None or s.socket == node)
        ]

    # -- path builders -----------------------------------------------------
    def mem_path(
        self, from_node: int, mem_node: int, traffic: float = 1.0
    ) -> list[tuple[FluidResource, float]]:
        """Resource path of a memory access stream.

        ``traffic`` is memory-system bytes per payload byte (1 for a pure
        read/DMA touch, ``cal.copy_traffic_factor`` for a copy).  Remote
        accesses cross QPI and are derated (they occupy the interconnect
        longer per byte than its nominal capacity suggests).
        """
        check_positive("traffic", traffic)
        bank = self.mem_bank(mem_node).bandwidth
        if from_node == mem_node:
            return [(bank, traffic)]
        cal = self.ctx.cal
        return [
            (self.qpi(from_node, mem_node), traffic / cal.remote_access_derate),
            (bank, traffic / cal.remote_bank_derate),
        ]

    def cpu_path(
        self, node: int, seconds_per_byte: float
    ) -> list[tuple[FluidResource, float]]:
        """Resource path charging CPU time on *node* per payload byte."""
        check_positive("seconds_per_byte", seconds_per_byte)
        return [(self.cpu_resource(node), seconds_per_byte)]

    def __repr__(self) -> str:
        return (
            f"<Machine {self.name!r} {self.n_nodes} nodes x "
            f"{self.sockets[0].n_cores} cores, "
            f"{self.total_memory_bytes >> 30} GiB>"
        )
