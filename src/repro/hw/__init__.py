"""Hardware model: NUMA machines, memory, caches, PCIe and NICs.

The machine model turns the paper's testbed hosts (Table 1) into fluid
resources: per-node memory bandwidth, the inter-socket (QPI) link, PCIe
slots and per-node CPU capacity.  Everything above (OS, network, storage)
expresses its work as flows over these resources.
"""

from repro.hw.cache import CoherenceCosts, MesiCache, MesiState, coherence_costs
from repro.hw.nic import Nic, NicKind
from repro.hw.presets import backend_lan_host, frontend_lan_host, wan_host
from repro.hw.topology import Core, Machine, MemoryBank, PcieSlot, Socket

__all__ = [
    "Machine",
    "Socket",
    "Core",
    "MemoryBank",
    "PcieSlot",
    "Nic",
    "NicKind",
    "MesiCache",
    "MesiState",
    "CoherenceCosts",
    "coherence_costs",
    "frontend_lan_host",
    "backend_lan_host",
    "wan_host",
]
