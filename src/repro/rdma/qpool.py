"""Per-tenant pooled-QP accounting with RDMAvisor-style scaling cliffs.

The paper's transfers use a handful of queue pairs; a multi-tenant
fleet multiplexes thousands of jobs over each NIC, and two cliffs
appear that single-host runs never see (PAPERS.md, RDMAvisor):

* **NIC QP-cache thrash** — a NIC caches the hot QP contexts on-chip
  (``qp_cache`` entries).  Once the *active* QP count exceeds the
  cache, context fetches go to host memory over PCIe and the per-QP
  message rate derates roughly as ``cache / active`` (floored at
  ``thrash_floor``: even a thrashing NIC still pipelines).
* **CM connection storms** — every QP *creation* costs a connection-
  manager exchange.  The CM daemon is a serial service at ``cm_rate``
  setups/s; creations beyond it queue deterministically, so per-job QP
  creation at fleet arrival rates turns into seconds of setup latency.

A :class:`QpPoolSet` tracks both per NIC (rail).  In ``pooled`` mode
each (NIC, tenant) keeps up to ``qp_per_tenant`` QPs warm across jobs:
creations happen only while the pool grows, concurrency beyond the
pool multiplexes onto the pooled QPs, and the active-QP census counts
at most ``qp_per_tenant`` per tenant.  In ``per-job`` mode every job
creates (and tears down) its own QP — the RDMAvisor baseline that
walks off both cliffs.

Everything is closed-form and deterministic: no RNG streams, no events
— :meth:`acquire` returns the (derate, setup-delay) pair the broker
applies to the job's flow, and :meth:`release` retires the census
entry.  The derate is sampled at admission and frozen for the flow's
lifetime (documented approximation; MODELING.md §12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.validation import check_positive

__all__ = ["QP_MODES", "QpPoolConfig", "QpPoolSet"]

#: Supported accounting modes ("off" disables the model entirely).
QP_MODES = ("pooled", "per-job", "off")


@dataclass(frozen=True)
class QpPoolConfig:
    """The QP/CM cliff knobs of one pod's NICs."""

    mode: str = "pooled"
    #: Pooled QPs kept warm per (NIC, tenant).
    qp_per_tenant: int = 1
    #: On-NIC QP-context cache entries per NIC.
    qp_cache: int = 24
    #: Worst-case message-rate derate under full cache thrash.
    thrash_floor: float = 0.35
    #: CM daemon service rate, QP setups per second.
    cm_rate: float = 64.0
    #: Uncontended CM handshake latency, seconds.
    cm_base_s: float = 0.002

    def __post_init__(self) -> None:
        if self.mode not in QP_MODES:
            raise ValueError(
                f"mode must be one of {QP_MODES}, got {self.mode!r}")
        check_positive("qp_per_tenant", self.qp_per_tenant)
        check_positive("qp_cache", self.qp_cache)
        check_positive("cm_rate", self.cm_rate)
        if not (0.0 < self.thrash_floor <= 1.0):
            raise ValueError(
                f"thrash_floor must be in (0, 1], got {self.thrash_floor}")
        if self.cm_base_s < 0.0:
            raise ValueError(
                f"cm_base_s must be >= 0, got {self.cm_base_s}")


class _NicState:
    __slots__ = ("active", "pool")

    def __init__(self) -> None:
        self.active: Dict[str, int] = {}
        self.pool: Dict[str, int] = {}


class QpPoolSet:
    """QP census + CM queue for one pod's NICs (keyed by rail index)."""

    def __init__(self, ctx, config: QpPoolConfig):
        self.ctx = ctx
        self.config = config
        self._nics: Dict[int, _NicState] = {}
        self._cm_busy_until = 0.0
        self.qps_created = 0
        self.qp_reuses = 0
        self.thrashed_jobs = 0
        self.peak_active_qps = 0
        self.cm_delay_total = 0.0
        self.cm_delay_max = 0.0

    # -- the two cliffs ----------------------------------------------------
    def _cm_setup(self) -> float:
        """One QP creation through the serial CM daemon; returns its delay."""
        cfg = self.config
        now = self.ctx.now
        start = max(now, self._cm_busy_until)
        self._cm_busy_until = start + 1.0 / cfg.cm_rate
        delay = (start - now) + cfg.cm_base_s
        self.qps_created += 1
        self.cm_delay_total += delay
        if delay > self.cm_delay_max:
            self.cm_delay_max = delay
        return delay

    def _active_qps(self, st: _NicState) -> int:
        if self.config.mode == "pooled":
            cap = self.config.qp_per_tenant
            return sum(min(n, cap) for n in st.active.values())
        return sum(st.active.values())

    def acquire(self, rail_index: int, tenant: str) -> Tuple[float, float]:
        """Admit one job on *rail_index* for *tenant*.

        Returns ``(derate, setup_delay_s)``: the frozen message-rate
        derate for the job's flow cap and the CM setup latency to wait
        before the flow starts.
        """
        cfg = self.config
        st = self._nics.setdefault(rail_index, _NicState())
        running = st.active.get(tenant, 0) + 1
        st.active[tenant] = running
        delay = 0.0
        if cfg.mode == "pooled":
            have = st.pool.get(tenant, 0)
            if running > have and have < cfg.qp_per_tenant:
                st.pool[tenant] = have + 1
                delay = self._cm_setup()
            else:
                self.qp_reuses += 1
        else:
            delay = self._cm_setup()
        active = self._active_qps(st)
        if active > self.peak_active_qps:
            self.peak_active_qps = active
        derate = 1.0
        if active > cfg.qp_cache:
            derate = max(cfg.thrash_floor, cfg.qp_cache / active)
            self.thrashed_jobs += 1
        return derate, delay

    def release(self, rail_index: int, tenant: str) -> None:
        """Retire one job's census entry (pooled QPs stay warm)."""
        st = self._nics[rail_index]
        st.active[tenant] -= 1

    def as_dict(self) -> dict:
        """The cliff counters, JSON-canonical (one cell's ledger entry)."""
        return {
            "mode": self.config.mode,
            "qps_created": self.qps_created,
            "qp_reuses": self.qp_reuses,
            "thrashed_jobs": self.thrashed_jobs,
            "peak_active_qps": self.peak_active_qps,
            "cm_delay_total_s": self.cm_delay_total,
            "cm_delay_max_s": self.cm_delay_max,
        }
