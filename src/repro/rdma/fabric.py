"""Fluid-path construction for RDMA data movement.

:func:`rdma_fluid_path` is the placement-level twin of
:meth:`~repro.rdma.verbs.QueuePair.bulk_channel`: it builds the resource
path of a pipelined RDMA stream directly from NUMA placements, without
materializing memory regions.  Used by the iSER data engine and RFTP's
data plane, where buffers are described by placement rather than held as
registered arrays.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.nic import Nic
from repro.rdma.verbs import Opcode, QueuePair
from repro.sim.fluid import FluidResource

__all__ = ["rail_locality_map", "rdma_fluid_path", "weighted_dma_path"]


def rail_locality_map(machine) -> Dict[int, list]:
    """Cabled adapters of *machine* grouped by the NUMA node they hang off.

    The transfer-service scheduler's rail-locality query: a NIC in the
    returned ``{node: [nic, ...]}`` map can DMA a buffer on its own node
    without crossing QPI, which is exactly the placement the paper's
    NUMA tuning enforces per transfer and the ``numa-aware`` broker
    policy enforces per job.  Slot order is preserved within each node,
    so placement iteration order is deterministic.
    """
    out: Dict[int, list] = {}
    for nic in machine.cabled_nics():
        out.setdefault(nic.node, []).append(nic)
    return out


def weighted_dma_path(
    nic: Nic, fractions: Dict[int, float], write: bool
) -> list[tuple[FluidResource, float]]:
    """DMA path averaged over a buffer's NUMA placement fractions."""
    out: list[tuple[FluidResource, float]] = []
    for node, f in fractions.items():
        if f <= 0:
            continue
        p = nic.dma_write_path(node) if write else nic.dma_read_path(node)
        out.extend((r, w * f) for r, w in p)
    return out


def rdma_fluid_path(
    qp: QueuePair,
    opcode: Opcode,
    local_fractions: Dict[int, float],
    remote_fractions: Dict[int, float],
) -> list[tuple[FluidResource, float]]:
    """Resource path of a bulk RDMA stream posted on *qp*.

    ``local_fractions`` place the buffer on *qp*'s machine;
    ``remote_fractions`` place the peer buffer.  For ``RDMA_WRITE`` data
    flows local -> remote; for ``RDMA_READ`` remote -> local with the
    paper's §4.2 read-throughput derate applied to the wire.
    """
    if not qp.connected or qp.peer is None:
        raise RuntimeError(f"QP {qp.name!r} is not connected")
    if opcode is Opcode.RDMA_READ:
        src_nic, src_fracs = qp.peer.nic, remote_fractions
        dst_nic, dst_fracs = qp.nic, local_fractions
        derate = qp.ctx.cal.rdma_read_throughput_derate
    elif opcode in (Opcode.RDMA_WRITE, Opcode.SEND):
        src_nic, src_fracs = qp.nic, local_fractions
        dst_nic, dst_fracs = qp.peer.nic, remote_fractions
        derate = 1.0
    else:
        raise ValueError(f"no bulk path for opcode {opcode!r}")
    path = weighted_dma_path(src_nic, src_fracs, write=False)
    path.append((src_nic.link.direction(src_nic), 1.0))
    path += weighted_dma_path(dst_nic, dst_fracs, write=True)
    return apply_read_derate(path, derate)


def apply_read_derate(
    path: list[tuple[FluidResource, float]], derate: float
) -> list[tuple[FluidResource, float]]:
    """Inflate link/PCIe occupancy for RDMA READ streams.

    The responder paces READ responses by round trips (bounded
    outstanding-read depth), so the whole DMA chain — PCIe engines and
    the wire — is occupied ``1/derate`` longer per byte than a WRITE
    stream.  Memory banks and CPU are unaffected.
    """
    if derate >= 1.0:
        return path
    return [
        (r, w / derate if getattr(r, "kind", None) in ("link", "pcie") else w)
        for r, w in path
    ]
