"""RDMA connection manager: listeners, connects, and the rkey registry.

Mirrors librdmacm's role: resolve a (host, port) address to a NIC pair,
perform the connection handshake (paying link round-trips), and hand back
connected queue pairs.  Also keeps the per-machine rkey registry used by
one-sided operations (standing in for HCA translation tables).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.injector import faults_active
from repro.faults.recovery import DEFAULT_RECOVERY
from repro.hw.nic import Nic
from repro.hw.topology import Machine
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.rdma.verbs import CompletionQueue, QueuePair
from repro.sim.context import Context
from repro.sim.engine import Event

__all__ = ["ConnectionManager"]


class ConnectionManager:
    """Per-context connection manager (one per experiment)."""

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self._listeners: Dict[tuple[str, int], Event] = {}

    # -- rkey registry -------------------------------------------------------------
    # The registry lives on the machine's Context (``ctx.rkeys``), never
    # on this class: a class-level dict keyed by id() would leak
    # registrations across experiment contexts and could collide once the
    # GC reuses an id.  The table holds a strong reference to each PD, so
    # the id(pd) keys stay unique for the table's lifetime.
    @classmethod
    def register_pd(cls, pd: ProtectionDomain) -> None:
        """Expose a PD's registrations to one-sided remote access."""
        table = pd.machine.ctx.rkeys.setdefault(pd.machine, {})
        # bind lazily: keep a reference to the PD's live table
        table[id(pd)] = pd

    @classmethod
    def lookup_rkey(cls, machine: Machine, rkey: int) -> MemoryRegion:
        """Resolve a remote key on a machine (PermissionError on miss)."""
        table = machine.ctx.rkeys.get(machine, {})
        for pd in table.values():
            try:
                return pd.lookup_rkey(rkey)
            except PermissionError:
                continue
        raise PermissionError(f"rkey {rkey:#x} unknown on {machine.name!r}")

    # -- connection establishment ------------------------------------------------------
    def connect_pair(
        self,
        client_nic: Nic,
        server_nic: Nic,
        *,
        client_cq: Optional[CompletionQueue] = None,
        server_cq: Optional[CompletionQueue] = None,
        name: str = "",
    ):
        """Create and connect a QP pair across the link joining two NICs.

        Returns ``(client_qp, server_qp, handshake_event)``; the QPs are
        usable once the handshake event fires (three link traversals, as
        in RDMA-CM's route-resolve + connect exchange).
        """
        link = client_nic.link
        if link is None or link.peer(client_nic) is not server_nic:
            raise ValueError(
                f"{client_nic.name!r} and {server_nic.name!r} are not cabled together"
            )
        cq_c = client_cq or CompletionQueue(self.ctx, f"{name}/ccq")
        cq_s = server_cq or CompletionQueue(self.ctx, f"{name}/scq")
        qp_c = QueuePair(self.ctx, client_nic, cq_c, name=f"{name}/client")
        qp_s = QueuePair(self.ctx, server_nic, cq_s, name=f"{name}/server")

        done = self.ctx.sim.event(name=f"{name}/connected")

        def handshake():
            inj = faults_active(self.ctx)
            if inj is None:
                yield self.ctx.sim.timeout(3 * link.delay)
            else:
                # Under fault injection the exchange can be slowed
                # (cm-delay) or time out on a dark link; retry with the
                # stack's capped exponential backoff until it is up.
                attempt = 0
                while True:
                    penalty = inj.handshake_delay(link)
                    yield self.ctx.sim.timeout(3 * link.delay + penalty)
                    if not link.failed:
                        break
                    yield self.ctx.sim.timeout(DEFAULT_RECOVERY.backoff(attempt))
                    attempt += 1
            qp_c._connect(qp_s)
            qp_s._connect(qp_c)
            done.succeed((qp_c, qp_s))

        self.ctx.sim.process(handshake(), name=f"{name}/handshake")
        return qp_c, qp_s, done
