"""Memory regions and protection domains.

A :class:`MemoryRegion` is a registered (pinned) buffer: it records its
NUMA placement (for DMA routing) and optionally owns real bytes (a NumPy
array) so integrity tests can verify actual data movement through the
protocol stack.  Registration hands out ``lkey``/``rkey`` handles; remote
access requires presenting the correct rkey, as in the verbs spec.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

import numpy as np

from repro.hw.topology import Machine
from repro.kernel.pages import RegionPlacement
from repro.util.validation import check_positive

__all__ = ["MemoryRegion", "ProtectionDomain"]

_key_counter = count(start=0x1000)


class MemoryRegion:
    """A registered buffer with NUMA placement and optional real storage."""

    def __init__(
        self,
        pd: "ProtectionDomain",
        placement: RegionPlacement,
        *,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ):
        if data is not None:
            if data.dtype != np.uint8 or data.ndim != 1:
                raise ValueError("MR data must be a 1-D uint8 array")
            if len(data) != placement.size_bytes:
                raise ValueError(
                    f"data length {len(data)} != placement size {placement.size_bytes}"
                )
        self.pd = pd
        self.placement = placement
        self.data = data
        self.name = name
        self.lkey = next(_key_counter)
        self.rkey = next(_key_counter)
        self._valid = True
        pd._register(self)

    @property
    def size(self) -> int:
        """Size in bytes."""
        return self.placement.size_bytes

    @property
    def machine(self) -> Machine:
        """The owning machine."""
        return self.pd.machine

    @property
    def valid(self) -> bool:
        """True while the underlying resource is still live."""
        return self._valid

    def check_range(self, offset: int, length: int) -> None:
        """Validate an access window (raises on overflow/deregistered MR)."""
        if not self._valid:
            raise PermissionError(f"MR {self.name!r} has been deregistered")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside MR of {self.size} bytes"
            )

    def read_bytes(self, offset: int, length: int) -> Optional[np.ndarray]:
        """A view of the real bytes, if this MR carries any."""
        self.check_range(offset, length)
        if self.data is None:
            return None
        return self.data[offset : offset + length]

    def write_bytes(self, offset: int, payload: Optional[np.ndarray]) -> None:
        """Store real bytes, if both sides carry data."""
        if payload is None or self.data is None:
            return
        self.check_range(offset, len(payload))
        self.data[offset : offset + len(payload)] = payload

    def deregister(self) -> None:
        """Invalidate the registration."""
        self._valid = False
        self.pd._deregister(self)

    def __repr__(self) -> str:
        return f"<MR {self.name!r} size={self.size} rkey={self.rkey:#x}>"


class ProtectionDomain:
    """Scopes memory registrations to one host (verbs PD semantics)."""

    def __init__(self, machine: Machine, name: str = ""):
        self.machine = machine
        self.name = name or f"{machine.name}/pd"
        self._by_rkey: dict[int, MemoryRegion] = {}

    def _register(self, mr: MemoryRegion) -> None:
        self._by_rkey[mr.rkey] = mr

    def _deregister(self, mr: MemoryRegion) -> None:
        self._by_rkey.pop(mr.rkey, None)

    def lookup_rkey(self, rkey: int) -> MemoryRegion:
        """Resolve a remote key (raises ``PermissionError`` on bad keys)."""
        mr = self._by_rkey.get(rkey)
        if mr is None or not mr.valid:
            raise PermissionError(f"invalid rkey {rkey:#x} in {self.name!r}")
        return mr

    def register(
        self,
        placement: RegionPlacement,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ) -> MemoryRegion:
        """Register a new MR in this domain."""
        check_positive("placement.size_bytes", placement.size_bytes)
        return MemoryRegion(self, placement, data=data, name=name)
