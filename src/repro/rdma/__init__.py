"""RDMA verbs model: memory regions, queue pairs, completion queues.

The model reproduces the two properties the paper's systems exploit:

* **zero-copy** — RDMA data movement charges DMA (PCIe + memory-touch)
  and link resources but *no CPU copy time*;
* **offload** — no per-packet kernel processing or interrupts; only a
  small per-work-request cost paid by the posting thread.

Two granularities are offered:

* per-work-request verbs (:meth:`QueuePair.post_send` & co.) with
  event-level completions — used by control planes, the iSER datamover
  and the real-byte integrity path;
* :meth:`QueuePair.bulk_channel` — a long-lived fluid flow standing for a
  pipelined stream of work requests, used for minutes-long 100 Gbps runs
  where per-WR events would be wasteful.
"""

from repro.rdma.cm import ConnectionManager
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.rdma.verbs import (
    Completion,
    CompletionQueue,
    Opcode,
    QueuePair,
    WorkRequest,
    WrStatus,
)

__all__ = [
    "MemoryRegion",
    "ProtectionDomain",
    "Opcode",
    "WrStatus",
    "WorkRequest",
    "Completion",
    "CompletionQueue",
    "QueuePair",
    "ConnectionManager",
]
