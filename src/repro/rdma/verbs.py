"""Queue pairs, work requests and completion queues.

Semantics follow the verbs spec subset the paper's systems use:

* ``SEND``/``RECV`` — two-sided: a SEND consumes the oldest posted RECV
  at the peer and delivers into its buffer.
* ``RDMA_WRITE`` — one-sided write into a remote MR (used by the iSER
  target to serve *read* requests, §3.1).
* ``RDMA_READ`` — one-sided fetch from a remote MR (used by the target
  for *write* requests); pays an extra request round-trip and a
  throughput derate relative to WRITE (§4.2's 7.5% read-vs-write gap).

Data movement builds a fluid flow across: source DMA-read path (PCIe +
memory, crossing QPI if the buffer is remote to the NIC), the link
direction, and the destination DMA-write path.  No CPU copy is charged —
that *is* the RDMA advantage.  Small messages (< ``INLINE_THRESHOLD``)
skip the fluid layer and pay pure latency, keeping control planes cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Optional

import numpy as np

from repro.hw.nic import Nic
from repro.rdma.mr import MemoryRegion
from repro.sim.context import Context
from repro.sim.engine import Event
from repro.sim.fluid import FluidFlow, FluidResource
from repro.sim.resources import Store

__all__ = [
    "Opcode",
    "WrStatus",
    "QpState",
    "Sge",
    "WorkRequest",
    "Completion",
    "CompletionQueue",
    "QueuePair",
]

#: Messages at or below this size are treated as latency-only (no fluid flow).
SMALL_MESSAGE_BYTES = 16 << 10

_wr_ids = count(1)


class Opcode(enum.Enum):
    """RDMA work-request opcodes."""
    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


class WrStatus(enum.Enum):
    """Completion status codes (verbs subset)."""
    SUCCESS = "success"
    LOCAL_PROTECTION_ERROR = "local_protection_error"
    REMOTE_ACCESS_ERROR = "remote_access_error"
    RECV_NOT_POSTED = "recv_not_posted"
    WR_FLUSH_ERR = "wr_flush_err"  # posted to a QP in the error state


class QpState(enum.Enum):
    """Queue-pair state machine subset (RESET -> RTS -> ERROR)."""

    RESET = "reset"
    RTS = "ready_to_send"
    ERROR = "error"


@dataclass(frozen=True)
class Sge:
    """One scatter/gather entry of a work request."""

    mr: MemoryRegion
    offset: int
    length: int


@dataclass
class WorkRequest:
    """One posted operation.

    Simple requests name a single ``(local_mr, local_offset, length)``
    buffer; multi-segment requests supply ``sge_list`` instead, gathering
    the payload from several regions (the wire sees one message).
    """

    opcode: Opcode
    local_mr: Optional[MemoryRegion] = None
    local_offset: int = 0
    length: int = 0
    remote_rkey: Optional[int] = None
    remote_offset: int = 0
    sge_list: tuple["Sge", ...] = ()
    wr_id: int = field(default_factory=lambda: next(_wr_ids))

    def __post_init__(self):
        if self.sge_list:
            if self.local_mr is not None:
                raise ValueError("give either local_mr or sge_list, not both")
            self.length = sum(sge.length for sge in self.sge_list)
        elif self.local_mr is None:
            raise ValueError("work request needs local_mr or sge_list")

    def segments(self) -> tuple["Sge", ...]:
        """The request's payload as SGEs (singleton for simple WRs)."""
        if self.sge_list:
            return self.sge_list
        assert self.local_mr is not None
        return (Sge(self.local_mr, self.local_offset, self.length),)

    def check_local(self) -> None:
        """Validate every local segment (raises on violations)."""
        for sge in self.segments():
            sge.mr.check_range(sge.offset, sge.length)

    def primary_placement(self):
        """NUMA placement of the (first) local buffer, for DMA routing."""
        return self.segments()[0].mr


@dataclass(frozen=True)
class Completion:
    """A completion-queue entry."""

    wr_id: int
    opcode: Opcode
    status: WrStatus
    byte_len: int


class CompletionQueue:
    """FIFO of completions with blocking and polling access."""

    def __init__(self, ctx: Context, name: str = ""):
        self.ctx = ctx
        self.name = name
        self._store = Store(ctx.sim, name=name)

    def push(self, completion: Completion) -> None:
        # CQs are never full in the model; put() succeeds synchronously.
        """Append a completion entry."""
        self._store.put(completion)

    def wait(self) -> Event:
        """Event yielding the next completion (for processes)."""
        return self._store.get()

    def poll(self) -> Optional[Completion]:
        """Non-blocking poll."""
        return self._store.try_get()

    def __len__(self) -> int:
        return len(self._store)


class QueuePair:
    """One side of a connected (RC) queue pair.

    Create pairs via :class:`~repro.rdma.cm.ConnectionManager`, which sets
    ``peer`` on both sides and records the link between the two NICs.
    """

    def __init__(
        self,
        ctx: Context,
        nic: Nic,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        name: str = "",
    ):
        self.ctx = ctx
        self.nic = nic
        self.send_cq = send_cq
        self.recv_cq = recv_cq or send_cq
        self.name = name or f"{nic.name}/qp"
        self.peer: Optional["QueuePair"] = None
        self._recv_queue: list[WorkRequest] = []
        self.state = QpState.RESET

    # -- wiring (done by the CM) ------------------------------------------------
    def _connect(self, peer: "QueuePair") -> None:
        self.peer = peer
        self.state = QpState.RTS

    @property
    def connected(self) -> bool:
        """True when in the ready-to-send state."""
        return self.state is QpState.RTS

    def set_error(self) -> list[Completion]:
        """Transition to the ERROR state and flush posted receives.

        Mirrors ibv_modify_qp(..., IBV_QPS_ERR): outstanding and future
        work requests complete with ``WR_FLUSH_ERR``.  Returns the flush
        completions generated for queued receives.
        """
        self.state = QpState.ERROR
        flushed = []
        for wr in self._recv_queue:
            completion = Completion(wr.wr_id, Opcode.RECV,
                                    WrStatus.WR_FLUSH_ERR, 0)
            self.recv_cq.push(completion)
            flushed.append(completion)
        self._recv_queue.clear()
        return flushed

    @property
    def link(self):
        """The link this endpoint is cabled to."""
        link = self.nic.link
        if link is None:
            raise RuntimeError(f"NIC {self.nic.name!r} is not cabled")
        return link

    # -- posting ------------------------------------------------------------------
    def post_recv(self, wr: WorkRequest) -> None:
        """Queue a receive buffer for incoming SENDs."""
        if wr.opcode is not Opcode.RECV:
            raise ValueError("post_recv requires a RECV work request")
        if self.state is QpState.ERROR:
            self.recv_cq.push(
                Completion(wr.wr_id, Opcode.RECV, WrStatus.WR_FLUSH_ERR, 0))
            return
        wr.check_local()
        self._recv_queue.append(wr)

    def post_send(self, wr: WorkRequest) -> Event:
        """Post a SEND / RDMA_WRITE / RDMA_READ; returns its completion event.

        The completion is also pushed to the send CQ.  Failed operations
        complete with a non-success status (they do not raise).
        """
        if wr.opcode is Opcode.RECV:
            raise ValueError("RECV work requests go to post_recv")
        if self.state is QpState.ERROR:
            done = self.ctx.sim.event(name=f"{self.name}/wr{wr.wr_id}")
            self._complete(wr, WrStatus.WR_FLUSH_ERR, done, self.send_cq)
            return done
        if not self.connected or self.peer is None:
            raise RuntimeError(f"QP {self.name!r} is not connected")
        done = self.ctx.sim.event(name=f"{self.name}/wr{wr.wr_id}")
        self.ctx.sim.process(self._execute(wr, done), name=f"{self.name}/exec")
        return done

    # -- execution -----------------------------------------------------------------
    def _complete(
        self, wr: WorkRequest, status: WrStatus, done: Event, cq: CompletionQueue
    ):
        completion = Completion(wr.wr_id, wr.opcode, status, wr.length)
        cq.push(completion)
        done.succeed(completion)

    def _execute(self, wr: WorkRequest, done: Event):
        cal = self.ctx.cal
        sim = self.ctx.sim
        peer = self.peer
        assert peer is not None

        try:
            wr.check_local()
        except (ValueError, PermissionError):
            self._complete(wr, WrStatus.LOCAL_PROTECTION_ERROR, done, self.send_cq)
            return
        # WR post + doorbell cost.
        yield sim.timeout(cal.rdma_op_latency)
        if self.state is QpState.ERROR:
            self._complete(wr, WrStatus.WR_FLUSH_ERR, done, self.send_cq)
            return

        if wr.opcode is Opcode.SEND:
            if not peer._recv_queue:
                self._complete(wr, WrStatus.RECV_NOT_POSTED, done, self.send_cq)
                return
            recv_wr = peer._recv_queue.pop(0)
            if wr.length > recv_wr.length:
                self._complete(wr, WrStatus.REMOTE_ACCESS_ERROR, done, self.send_cq)
                return
            yield from self._move_data(
                wr,
                src_mr=wr.segments()[0].mr,
                src_off=wr.segments()[0].offset,
                dst_mr=recv_wr.local_mr,
                dst_off=recv_wr.local_offset,
                src_qp=self,
                dst_qp=peer,
                gather_wr=wr,
            )
            peer.recv_cq.push(
                Completion(recv_wr.wr_id, Opcode.RECV, WrStatus.SUCCESS, wr.length)
            )
            self._complete(wr, WrStatus.SUCCESS, done, self.send_cq)
            return

        # one-sided ops need a valid rkey at the peer
        try:
            remote_mr = peer.nic.machine and self._resolve_rkey(wr)
            remote_mr.check_range(wr.remote_offset, wr.length)
        except (PermissionError, ValueError):
            self._complete(wr, WrStatus.REMOTE_ACCESS_ERROR, done, self.send_cq)
            return

        if wr.opcode is Opcode.RDMA_WRITE:
            yield from self._move_data(
                wr,
                src_mr=wr.segments()[0].mr,
                src_off=wr.segments()[0].offset,
                dst_mr=remote_mr,
                dst_off=wr.remote_offset,
                src_qp=self,
                dst_qp=peer,
                gather_wr=wr,
            )
        else:  # RDMA_READ: data flows peer -> self, after a request trip
            yield sim.timeout(cal.rdma_read_extra_latency + self.link.delay)
            yield from self._move_data(
                wr,
                src_mr=remote_mr,
                src_off=wr.remote_offset,
                dst_mr=wr.local_mr,
                dst_off=wr.local_offset,
                src_qp=peer,
                dst_qp=self,
                read_derate=cal.rdma_read_throughput_derate,
            )
        self._complete(wr, WrStatus.SUCCESS, done, self.send_cq)

    def _resolve_rkey(self, wr: WorkRequest) -> MemoryRegion:
        if wr.remote_rkey is None:
            raise PermissionError("one-sided op without rkey")
        assert self.peer is not None
        # look up in any PD of the peer machine via the MR registry
        return self.peer._lookup_local_rkey(wr.remote_rkey)

    def _lookup_local_rkey(self, rkey: int) -> MemoryRegion:
        # QPs don't own PDs in this trimmed model; search the machine-wide
        # registry kept by ConnectionManager.
        from repro.rdma.cm import ConnectionManager

        return ConnectionManager.lookup_rkey(self.nic.machine, rkey)

    def _move_data(
        self,
        wr: WorkRequest,
        *,
        src_mr: MemoryRegion,
        src_off: int,
        dst_mr: MemoryRegion,
        dst_off: int,
        src_qp: "QueuePair",
        dst_qp: "QueuePair",
        read_derate: float = 1.0,
        gather_wr: Optional[WorkRequest] = None,
    ):
        """Move wr.length bytes src->dst as a fluid flow (+ real bytes)."""
        sim = self.ctx.sim
        length = wr.length
        link = src_qp.link
        if length > SMALL_MESSAGE_BYTES:
            from repro.rdma.fabric import apply_read_derate

            path: list[tuple[FluidResource, float]] = []
            path += _weighted(src_qp.nic, src_mr, write=False)
            path.append((link.direction(src_qp.nic), 1.0))
            path += _weighted(dst_qp.nic, dst_mr, write=True)
            path = apply_read_derate(path, read_derate)
            flow = FluidFlow(path, size=float(length), name=f"{self.name}/wr{wr.wr_id}")
            yield self.ctx.fluid.start(flow)
        else:
            # latency + serialization only
            yield sim.timeout(length / (link.rate * read_derate))
        yield sim.timeout(link.delay)
        if gather_wr is not None and gather_wr.sge_list:
            segs = [sge.mr.read_bytes(sge.offset, sge.length)
                    for sge in gather_wr.segments()]
            payload = (
                None if any(s is None for s in segs) else np.concatenate(segs)
            )
        else:
            payload = src_mr.read_bytes(src_off, length)
        if payload is not None:
            dst_mr.write_bytes(dst_off, payload)

    # -- bulk fluid channel -------------------------------------------------------
    def bulk_channel(
        self,
        *,
        src_mr: MemoryRegion,
        dst_mr: MemoryRegion,
        opcode: Opcode = Opcode.RDMA_WRITE,
        size: Optional[float] = None,
        cap: Optional[float] = None,
        charges: Iterable[tuple[object, float]] = (),
        extra_path: Iterable[tuple[FluidResource, float]] = (),
        name: str = "",
    ) -> FluidFlow:
        """A long-lived flow standing for a pipelined stream of WRs.

        Used by RFTP's data plane and the iSER data engine for runs where
        posting individual work requests would generate millions of
        events.  ``opcode`` picks the direction derate (READ pays the
        §4.2 penalty).  The caller owns starting/stopping via
        ``ctx.fluid``.
        """
        if not self.connected or self.peer is None:
            raise RuntimeError(f"QP {self.name!r} is not connected")
        derate = (
            self.ctx.cal.rdma_read_throughput_derate
            if opcode is Opcode.RDMA_READ
            else 1.0
        )
        if opcode is Opcode.RDMA_READ:
            src_qp, dst_qp = self.peer, self
        else:
            src_qp, dst_qp = self, self.peer
        from repro.rdma.fabric import apply_read_derate

        path: list[tuple[FluidResource, float]] = []
        path += _weighted(src_qp.nic, src_mr, write=False)
        path.append((src_qp.link.direction(src_qp.nic), 1.0))
        path += _weighted(dst_qp.nic, dst_mr, write=True)
        path = apply_read_derate(path, derate)
        path += list(extra_path)
        return FluidFlow(
            path, size=size, cap=cap, charges=tuple(charges), name=name or self.name
        )


def _weighted(
    nic: Nic, mr: MemoryRegion, write: bool
) -> list[tuple[FluidResource, float]]:
    """DMA path weighted over the MR's NUMA placement."""
    out: list[tuple[FluidResource, float]] = []
    for node, f in mr.placement.node_fractions().items():
        if f <= 0:
            continue
        p = nic.dma_write_path(node) if write else nic.dma_read_path(node)
        out.extend((r, w * f) for r, w in p)
    return out
