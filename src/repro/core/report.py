"""Rendering of paper-vs-measured experiment reports.

Every experiment module produces an :class:`ExperimentReport`; the
benchmark harness prints it.  The format is uniform across figures so
EXPERIMENTS.md can be assembled mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.util.tables import Table

__all__ = ["ExperimentReport", "CheckRow"]


@dataclass
class CheckRow:
    """One paper-anchored quantity."""

    metric: str
    paper: Any
    measured: Any
    ok: Optional[bool] = None  # None = informational

    def status(self) -> str:
        """Rendered status string for the report table."""
        if self.ok is None:
            return ""
        return "OK" if self.ok else "DIVERGES"


@dataclass
class ExperimentReport:
    """A figure/table reproduction: headline checks + raw data rows."""

    experiment_id: str
    title: str
    checks: List[CheckRow] = field(default_factory=list)
    data_headers: Sequence[str] = ()
    data_rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_check(self, metric: str, paper: Any, measured: Any,
                  ok: Optional[bool] = None) -> None:
        """Record one paper-anchored quantity."""
        self.checks.append(CheckRow(metric, paper, measured, ok))

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one data row."""
        self.data_rows.append(row)

    @property
    def all_ok(self) -> bool:
        """True when no check diverges from the paper."""
        return all(c.ok is not False for c in self.checks)

    def render(self) -> str:
        """Render to a fixed-width text block."""
        out: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.checks:
            t = Table(["metric", "paper", "measured", "status"])
            for c in self.checks:
                t.add_row([c.metric, c.paper, c.measured, c.status()])
            out.append(t.render())
        if self.data_rows:
            t = Table(list(self.data_headers))
            for row in self.data_rows:
                t.add_row(row)
            out.append(t.render())
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
