"""Sensitivity analysis of the reproduction's headline shapes.

A calibrated model is only credible if its *conclusions* do not hinge on
the precise values of the calibrated constants.  This module perturbs
each influential calibration constant by ±20% and re-measures the
paper's qualitative anchors:

* Fig. 7 — NUMA tuning helps writes more than reads;
* Fig. 9 — RFTP beats GridFTP by a large factor (>2x);
* Fig. 4 — TCP costs several times RDMA's CPU per byte;
* §2.3  — NUMA tuning speeds up bi-directional iperf.

For each (constant, direction) the analysis records whether every shape
survives.  Shapes that flip under small perturbations would indicate the
reproduction is an artifact of tuning rather than mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import CALIBRATION, Calibration
from repro.exec import SimTask, run_tasks
from repro.util.tables import Table

__all__ = ["SHAPES", "PERTURBED_CONSTANTS", "SensitivityResult",
           "run_sensitivity", "sensitivity_cell", "sensitivity_tasks",
           "assemble_sensitivity"]

#: the constants whose values were calibrated (not taken from specs).
PERTURBED_CONSTANTS = (
    "qpi_bandwidth",
    "mem_bandwidth_per_node",
    "memcpy_rate_local",
    "tcp_kernel_rate",
    "coherence_invalidate_cpu_per_byte",
    "coherence_traffic_factor",
    "rdma_read_throughput_derate",
    "pcie_gen3_x8_bandwidth",
)


def _shape_fig7(cal: Calibration) -> bool:
    """Write tuning gain exceeds read tuning gain (both >= 1)."""
    from repro.apps.fio import FioJob, run_fio
    from repro.hw.presets import backend_lan_host, frontend_lan_host
    from repro.net.topology import wire_san
    from repro.sim.context import Context
    from repro.storage.initiator import IserInitiator
    from repro.storage.target import IserTarget
    from repro.util.units import GB, MIB

    rates: Dict[Tuple[str, str], float] = {}
    for tuning in ("default", "numa"):
        for rw in ("read", "write"):
            ctx = Context.create(seed=1, cal=cal)
            front = frontend_lan_host(ctx, "f", with_ib=True)
            back = backend_lan_host(ctx, "b")
            wire_san(ctx, front, back)
            target = IserTarget(ctx, back, tuning=tuning, n_links=2)
            for _ in range(6):
                target.create_lun(GB)
            ini = IserInitiator(ctx, front, target)
            ctx.sim.run(until=ini.login_all())
            devices = [ini.devices[i] for i in sorted(ini.devices)]
            res = run_fio(ctx, front, devices,
                          FioJob(rw=rw, block_size=4 * MIB, runtime=8.0))
            rates[(tuning, rw)] = res.bandwidth
    read_gain = rates[("numa", "read")] / rates[("default", "read")]
    write_gain = rates[("numa", "write")] / rates[("default", "write")]
    return write_gain >= read_gain >= 0.999


def _shape_fig9(cal: Calibration) -> bool:
    """RFTP beats GridFTP by more than 2x end to end."""
    from repro.core.system import EndToEndSystem
    from repro.core.tuning import TuningPolicy
    from repro.util.units import GB

    s1 = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=2,
                                    cal=cal, lun_size=2 * GB)
    rftp = s1.run_rftp_transfer(duration=10.0)
    s2 = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=3,
                                    cal=cal, lun_size=2 * GB)
    grid = s2.run_gridftp_transfer(duration=10.0)
    return rftp.goodput > 2.0 * grid.goodput


def _shape_fig4(cal: Calibration) -> bool:
    """TCP burns > 3x RDMA's CPU at matched throughput."""
    from repro.apps.iperf import run_iperf
    from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
    from repro.hw.nic import Nic, NicKind
    from repro.hw.topology import Machine
    from repro.net.link import connect
    from repro.sim.context import Context

    def pair(ctx):
        a = Machine(ctx, "a", pcie_sockets=(0,))
        b = Machine(ctx, "b", pcie_sockets=(0,))
        na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
        nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
        connect(na, nb)
        return a, b

    ctx = Context.create(seed=4, cal=cal)
    a, b = pair(ctx)
    res = RftpTransfer(ctx, a, b, source="zero", sink="null",
                       config=RftpConfig(streams_per_link=2)).run(8.0)
    rdma_cpu = (res.sender_accounting.total_seconds
                + res.receiver_accounting.total_seconds)
    rdma_bytes = res.total_bytes

    ctx2 = Context.create(seed=5, cal=cal)
    a2, b2 = pair(ctx2)
    ires = run_iperf(ctx2, a2, b2, duration=8.0, streams_per_link=4,
                     bidirectional=False, numa_tuned=True)
    tcp_cpu = ires.accounting.total_seconds
    tcp_bytes = ires.total_bytes
    return (tcp_cpu / tcp_bytes) > 3.0 * (rdma_cpu / rdma_bytes)


def _shape_motivating(cal: Calibration) -> bool:
    """NUMA-tuned iperf beats the default scheduler."""
    from repro.apps.iperf import run_iperf
    from repro.hw.presets import frontend_lan_host
    from repro.net.topology import wire_frontend_lan
    from repro.sim.context import Context

    rates = {}
    for tuned in (False, True):
        ctx = Context.create(seed=6, cal=cal)
        a = frontend_lan_host(ctx, "a")
        b = frontend_lan_host(ctx, "b")
        wire_frontend_lan(a, b)
        rates[tuned] = run_iperf(ctx, a, b, duration=8.0,
                                 numa_tuned=tuned).aggregate_rate
    return rates[True] > rates[False]


#: shape name -> predicate over a calibration.
SHAPES: Dict[str, Callable[[Calibration], bool]] = {
    "fig7: write gain >= read gain": _shape_fig7,
    "fig9: RFTP > 2x GridFTP": _shape_fig9,
    "fig4: TCP CPU/byte > 3x RDMA": _shape_fig4,
    "motivating: tuning helps iperf": _shape_motivating,
}


@dataclass
class SensitivityResult:
    """Outcome grid: (constant, direction) -> shape -> survived."""

    outcomes: Dict[Tuple[str, str], Dict[str, bool]] = field(
        default_factory=dict)

    @property
    def all_robust(self) -> bool:
        """True when every shape survived every perturbation."""
        return all(ok for row in self.outcomes.values()
                   for ok in row.values())

    def fragile(self) -> List[Tuple[str, str, str]]:
        """The (constant, direction, shape) triples that flipped."""
        return [
            (const, direction, shape)
            for (const, direction), row in self.outcomes.items()
            for shape, ok in row.items()
            if not ok
        ]

    def render(self) -> str:
        """Render to a fixed-width text block."""
        shapes = list(SHAPES)
        t = Table(["constant", "delta"] + [s.split(":")[0] for s in shapes],
                  title="Shape robustness under +/-20% calibration shifts")
        for (const, direction), row in sorted(self.outcomes.items()):
            t.add_row([const, direction]
                      + ["ok" if row[s] else "FLIPS" for s in shapes])
        return t.render()


def _direction_labels(delta: float) -> Tuple[str, str]:
    pct = f"{delta:.0%}"
    return (f"-{pct}", f"+{pct}")


def sensitivity_cell(*, seed: int = 0, cal: Optional[Calibration] = None,
                     constant: str, direction: str,
                     delta: float = 0.20) -> Dict[str, bool]:
    """One grid cell: perturb *constant* by ±*delta*, test every shape.

    This is the :class:`~repro.exec.task.SimTask` target for the
    sensitivity sweep: every cell is an independent simulation batch
    (the shape predicates create their own seeded contexts), so the
    grid fans out across worker processes.  ``cal`` is the *base*
    calibration the perturbation applies to (None = library default);
    ``seed`` is accepted for target-signature uniformity but unused —
    the predicates pin their own seeds so cells stay comparable.
    """
    base = cal if cal is not None else CALIBRATION
    value = getattr(base, constant)
    factor = (1 - delta) if direction.startswith("-") else (1 + delta)
    perturbed = base.replace(**{constant: value * factor})
    return {name: predicate(perturbed) for name, predicate in SHAPES.items()}


def sensitivity_tasks(
    delta: float = 0.20,
    constants: Sequence[str] = PERTURBED_CONSTANTS,
    base: Calibration = CALIBRATION,
) -> List[SimTask]:
    """The ±delta perturbation grid as independent tasks, in grid order."""
    cal = None if base is CALIBRATION else base
    return [
        SimTask("repro.core.sensitivity:sensitivity_cell",
                {"constant": const, "direction": direction, "delta": delta},
                seed=0, cal=cal, label=f"sensitivity/{const}{direction}")
        for const in constants
        for direction in _direction_labels(delta)
    ]


def assemble_sensitivity(tasks: Sequence[SimTask],
                         rows: Sequence[Dict[str, bool]]) -> SensitivityResult:
    """Fold per-cell results (aligned with *tasks*) into one grid."""
    result = SensitivityResult()
    for task, row in zip(tasks, rows):
        key = (task.params["constant"], task.params["direction"])
        result.outcomes[key] = dict(row)
    return result


def run_sensitivity(
    delta: float = 0.20,
    constants: Sequence[str] = PERTURBED_CONSTANTS,
    base: Calibration = CALIBRATION,
) -> SensitivityResult:
    """Perturb each constant by ±delta and re-test every shape.

    Cells run through :func:`~repro.exec.runner.run_tasks`, so the grid
    parallelizes (and caches) under an ambient
    :class:`~repro.exec.runner.ExecContext` while staying serial — and
    bit-for-bit identical — by default.
    """
    tasks = sensitivity_tasks(delta=delta, constants=constants, base=base)
    return assemble_sensitivity(tasks, run_tasks(tasks))
