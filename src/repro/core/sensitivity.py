"""Sensitivity analysis of the reproduction's headline shapes.

A calibrated model is only credible if its *conclusions* do not hinge on
the precise values of the calibrated constants.  This module perturbs
each influential calibration constant by ±20% and re-measures the
paper's qualitative anchors:

* Fig. 7 — NUMA tuning helps writes more than reads;
* Fig. 9 — RFTP beats GridFTP by a large factor (>2x);
* Fig. 4 — TCP costs several times RDMA's CPU per byte;
* §2.3  — NUMA tuning speeds up bi-directional iperf.

For each (constant, direction) the analysis records whether every shape
survives.  Shapes that flip under small perturbations would indicate the
reproduction is an artifact of tuning rather than mechanism.

Each shape decomposes into independent **legs** — one seeded simulation
each (the four fio runs behind Fig. 7, the RFTP and GridFTP transfers
behind Fig. 9, and so on) — and a shape predicate is a pure combiner
over its legs' measurements.  The per-cell path runs a cell's legs
directly; the grid's gang kernel (:func:`gang_cells`) runs every leg
across *all* cells at once through
:func:`repro.exec.gang.run_projected`, sharing evaluations between
cells whose perturbed calibrations agree on everything the leg actually
reads.  Both paths execute the identical leg code with identical
calibration values, so their results are bit-for-bit equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import CALIBRATION, Calibration
from repro.exec import GangSpec, SimTask, run_tasks
from repro.exec.task import _canonical
from repro.util.tables import Table

__all__ = ["SHAPES", "PERTURBED_CONSTANTS", "SensitivityResult",
           "run_sensitivity", "sensitivity_cell", "sensitivity_tasks",
           "assemble_sensitivity", "gang_cells"]

#: the constants whose values were calibrated (not taken from specs).
PERTURBED_CONSTANTS = (
    "qpi_bandwidth",
    "mem_bandwidth_per_node",
    "memcpy_rate_local",
    "tcp_kernel_rate",
    "coherence_invalidate_cpu_per_byte",
    "coherence_traffic_factor",
    "rdma_read_throughput_derate",
    "pcie_gen3_x8_bandwidth",
)


# ---------------------------------------------------------------------------
# Legs: one independent seeded simulation each.
# ---------------------------------------------------------------------------

def _leg_fio(cal: Calibration, tuning: str, rw: str) -> float:
    """One fio run of the Fig. 7 iSER testbed; returns the bandwidth."""
    from repro.apps.fio import FioJob, run_fio
    from repro.hw.presets import backend_lan_host, frontend_lan_host
    from repro.net.topology import wire_san
    from repro.sim.context import Context
    from repro.storage.initiator import IserInitiator
    from repro.storage.target import IserTarget
    from repro.util.units import GB, MIB

    ctx = Context.create(seed=1, cal=cal)
    front = frontend_lan_host(ctx, "f", with_ib=True)
    back = backend_lan_host(ctx, "b")
    wire_san(ctx, front, back)
    target = IserTarget(ctx, back, tuning=tuning, n_links=2)
    for _ in range(6):
        target.create_lun(GB)
    ini = IserInitiator(ctx, front, target)
    ctx.sim.run(until=ini.login_all())
    devices = [ini.devices[i] for i in sorted(ini.devices)]
    res = run_fio(ctx, front, devices,
                  FioJob(rw=rw, block_size=4 * MIB, runtime=8.0))
    return res.bandwidth


def _leg_fig9(cal: Calibration, protocol: str) -> float:
    """One end-to-end transfer of the Fig. 9 testbed; returns the goodput."""
    from repro.core.system import EndToEndSystem
    from repro.core.tuning import TuningPolicy
    from repro.util.units import GB

    if protocol == "rftp":
        system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=2,
                                            cal=cal, lun_size=2 * GB)
        return system.run_rftp_transfer(duration=10.0).goodput
    system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=3,
                                        cal=cal, lun_size=2 * GB)
    return system.run_gridftp_transfer(duration=10.0).goodput


def _fig4_pair(ctx):
    from repro.hw.nic import Nic, NicKind
    from repro.hw.topology import Machine
    from repro.net.link import connect

    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    return a, b


def _leg_fig4(cal: Calibration, transport: str) -> Tuple[float, float]:
    """One Fig. 4 CPU-cost run; returns (cpu_seconds, bytes_moved)."""
    from repro.apps.iperf import run_iperf
    from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
    from repro.sim.context import Context

    if transport == "rdma":
        ctx = Context.create(seed=4, cal=cal)
        a, b = _fig4_pair(ctx)
        res = RftpTransfer(ctx, a, b, source="zero", sink="null",
                           config=RftpConfig(streams_per_link=2)).run(8.0)
        cpu = (res.sender_accounting.total_seconds
               + res.receiver_accounting.total_seconds)
        return cpu, res.total_bytes
    ctx = Context.create(seed=5, cal=cal)
    a, b = _fig4_pair(ctx)
    ires = run_iperf(ctx, a, b, duration=8.0, streams_per_link=4,
                     bidirectional=False, numa_tuned=True)
    return ires.accounting.total_seconds, ires.total_bytes


def _leg_motivating(cal: Calibration, tuned: bool) -> float:
    """One §2.3 bi-directional iperf run; returns the aggregate rate."""
    from repro.apps.iperf import run_iperf
    from repro.hw.presets import frontend_lan_host
    from repro.net.topology import wire_frontend_lan
    from repro.sim.context import Context

    ctx = Context.create(seed=6, cal=cal)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    return run_iperf(ctx, a, b, duration=8.0, numa_tuned=tuned).aggregate_rate


#: leg name -> evaluator over a calibration (one simulation each).
_LEGS: Dict[str, Callable[[Calibration], Any]] = {
    "fio/default/read": lambda cal: _leg_fio(cal, "default", "read"),
    "fio/default/write": lambda cal: _leg_fio(cal, "default", "write"),
    "fio/numa/read": lambda cal: _leg_fio(cal, "numa", "read"),
    "fio/numa/write": lambda cal: _leg_fio(cal, "numa", "write"),
    "fig9/rftp": lambda cal: _leg_fig9(cal, "rftp"),
    "fig9/gridftp": lambda cal: _leg_fig9(cal, "gridftp"),
    "fig4/rdma": lambda cal: _leg_fig4(cal, "rdma"),
    "fig4/tcp": lambda cal: _leg_fig4(cal, "tcp"),
    "motivating/default": lambda cal: _leg_motivating(cal, False),
    "motivating/tuned": lambda cal: _leg_motivating(cal, True),
}


# ---------------------------------------------------------------------------
# Shapes: pure combiners over leg measurements.
# ---------------------------------------------------------------------------

def _combine_fig7(vals: Sequence[Any]) -> bool:
    """Write tuning gain exceeds read tuning gain (both >= 1)."""
    default_read, default_write, numa_read, numa_write = vals
    read_gain = numa_read / default_read
    write_gain = numa_write / default_write
    return write_gain >= read_gain >= 0.999


def _combine_fig9(vals: Sequence[Any]) -> bool:
    """RFTP beats GridFTP by more than 2x end to end."""
    rftp, grid = vals
    return rftp > 2.0 * grid


def _combine_fig4(vals: Sequence[Any]) -> bool:
    """TCP burns > 3x RDMA's CPU at matched throughput."""
    (rdma_cpu, rdma_bytes), (tcp_cpu, tcp_bytes) = vals
    return (tcp_cpu / tcp_bytes) > 3.0 * (rdma_cpu / rdma_bytes)


def _combine_motivating(vals: Sequence[Any]) -> bool:
    """NUMA-tuned iperf beats the default scheduler."""
    untuned, tuned = vals
    return tuned > untuned


#: shape name -> (leg names in combiner order, combiner).
_SHAPE_DEFS: Dict[str, Tuple[Tuple[str, ...], Callable[[Sequence[Any]], bool]]] = {
    "fig7: write gain >= read gain": (
        ("fio/default/read", "fio/default/write",
         "fio/numa/read", "fio/numa/write"), _combine_fig7),
    "fig9: RFTP > 2x GridFTP": (("fig9/rftp", "fig9/gridftp"), _combine_fig9),
    "fig4: TCP CPU/byte > 3x RDMA": (("fig4/rdma", "fig4/tcp"), _combine_fig4),
    "motivating: tuning helps iperf": (
        ("motivating/default", "motivating/tuned"), _combine_motivating),
}


def _make_predicate(legs: Tuple[str, ...],
                    combine: Callable[[Sequence[Any]], bool]
                    ) -> Callable[[Calibration], bool]:
    def predicate(cal: Calibration) -> bool:
        return combine([_LEGS[name](cal) for name in legs])
    return predicate


#: shape name -> predicate over a calibration.
SHAPES: Dict[str, Callable[[Calibration], bool]] = {
    name: _make_predicate(legs, combine)
    for name, (legs, combine) in _SHAPE_DEFS.items()
}


@dataclass
class SensitivityResult:
    """Outcome grid: (constant, direction) -> shape -> survived."""

    outcomes: Dict[Tuple[str, str], Dict[str, bool]] = field(
        default_factory=dict)

    @property
    def all_robust(self) -> bool:
        """True when every shape survived every perturbation."""
        return all(ok for row in self.outcomes.values()
                   for ok in row.values())

    def fragile(self) -> List[Tuple[str, str, str]]:
        """The (constant, direction, shape) triples that flipped."""
        return [
            (const, direction, shape)
            for (const, direction), row in self.outcomes.items()
            for shape, ok in row.items()
            if not ok
        ]

    def render(self) -> str:
        """Render to a fixed-width text block."""
        shapes = list(SHAPES)
        t = Table(["constant", "delta"] + [s.split(":")[0] for s in shapes],
                  title="Shape robustness under +/-20% calibration shifts")
        for (const, direction), row in sorted(self.outcomes.items()):
            t.add_row([const, direction]
                      + ["ok" if row[s] else "FLIPS" for s in shapes])
        return t.render()


def _direction_labels(delta: float) -> Tuple[str, str]:
    pct = f"{delta:.0%}"
    return (f"-{pct}", f"+{pct}")


def _perturbed(base: Calibration, constant: str, direction: str,
               delta: float) -> Calibration:
    """*base* with *constant* shifted ±*delta* (the grid-cell calibration)."""
    value = getattr(base, constant)
    factor = (1 - delta) if direction.startswith("-") else (1 + delta)
    return base.replace(**{constant: value * factor})


def sensitivity_cell(*, seed: int = 0, cal: Optional[Calibration] = None,
                     constant: str, direction: str,
                     delta: float = 0.20) -> Dict[str, bool]:
    """One grid cell: perturb *constant* by ±*delta*, test every shape.

    This is the :class:`~repro.exec.task.SimTask` target for the
    sensitivity sweep: every cell is an independent simulation batch
    (the shape legs create their own seeded contexts), so the grid fans
    out across worker processes.  ``cal`` is the *base* calibration the
    perturbation applies to (None = library default); ``seed`` is
    accepted for target-signature uniformity but unused — the legs pin
    their own seeds so cells stay comparable.
    """
    base = cal if cal is not None else CALIBRATION
    perturbed = _perturbed(base, constant, direction, delta)
    return {name: predicate(perturbed) for name, predicate in SHAPES.items()}


def gang_cells(tasks: Sequence[SimTask]) -> List[Any]:
    """Gang kernel for the sensitivity grid: all cells in one program.

    Runs every shape leg across the whole scenario axis through
    :func:`~repro.exec.gang.run_projected`: one evaluation per
    *projection class* (cells whose perturbed calibrations agree on
    every constant the leg reads share it — e.g. perturbing
    ``tcp_kernel_rate`` cannot change a leg that never reads it, so
    that leg's base-calibration run serves 13 of the 17 grid+base
    scenarios).  Results are bit-identical to :func:`sensitivity_cell`
    because the identical leg code runs with identical values.

    Defection: an ambient fault plan defects every cell (fault arming
    couples scenarios to event order — the per-task path owns that);
    a cell whose leg evaluation raises defects alone so the error
    surfaces with its ordinary traceback.
    """
    from repro.exec.gang import DEFECT, EvalError
    from repro.faults.plan import ambient_spec

    if ambient_spec():
        return [DEFECT] * len(tasks)
    cals = []
    for task in tasks:
        base = task.cal if task.cal is not None else CALIBRATION
        cals.append(_perturbed(base, task.params["constant"],
                               task.params["direction"],
                               task.params["delta"]))
    leg_values = {name: run_projected_leg(fn, cals)
                  for name, fn in _LEGS.items()}
    rows: List[Any] = []
    for k in range(len(tasks)):
        row: Dict[str, bool] = {}
        failed = False
        for shape, (legs, combine) in _SHAPE_DEFS.items():
            vals = [leg_values[name][k] for name in legs]
            if any(isinstance(v, EvalError) for v in vals):
                failed = True
                break
            row[shape] = combine(vals)
        rows.append(DEFECT if failed else row)
    return rows


def run_projected_leg(fn: Callable[[Calibration], Any],
                      cals: Sequence[Calibration]) -> List[Any]:
    """One leg across all scenarios (separated for monkeypatching in tests)."""
    from repro.exec.gang import run_projected

    return run_projected(fn, cals)


def sensitivity_tasks(
    delta: float = 0.20,
    constants: Sequence[str] = PERTURBED_CONSTANTS,
    base: Calibration = CALIBRATION,
) -> List[SimTask]:
    """The ±delta perturbation grid as independent tasks, in grid order.

    Every cell carries the grid's :class:`~repro.exec.GangSpec`, so a
    batch of cells gangs through :func:`gang_cells` under
    ``REPRO_GANG=auto`` while staying an ordinary per-task grid under
    ``off`` (and for whatever cells a partial cache leaves unserved).
    """
    cal = None if base is CALIBRATION else base
    spec = GangSpec(
        kernel="repro.core.sensitivity:gang_cells",
        key=f"sensitivity:{delta!r}:{_canonical(cal)!r}",
    )
    return [
        SimTask("repro.core.sensitivity:sensitivity_cell",
                {"constant": const, "direction": direction, "delta": delta},
                seed=0, cal=cal, label=f"sensitivity/{const}{direction}",
                gang=spec)
        for const in constants
        for direction in _direction_labels(delta)
    ]


def assemble_sensitivity(tasks: Sequence[SimTask],
                         rows: Sequence[Dict[str, bool]]) -> SensitivityResult:
    """Fold per-cell results (aligned with *tasks*) into one grid."""
    result = SensitivityResult()
    for task, row in zip(tasks, rows):
        key = (task.params["constant"], task.params["direction"])
        result.outcomes[key] = dict(row)
    return result


def run_sensitivity(
    delta: float = 0.20,
    constants: Sequence[str] = PERTURBED_CONSTANTS,
    base: Calibration = CALIBRATION,
) -> SensitivityResult:
    """Perturb each constant by ±delta and re-test every shape.

    Cells run through :func:`~repro.exec.runner.run_tasks`, so the grid
    parallelizes (and caches) under an ambient
    :class:`~repro.exec.runner.ExecContext` while staying serial — and
    bit-for-bit identical — by default.
    """
    tasks = sensitivity_tasks(delta=delta, constants=constants, base=base)
    return assemble_sensitivity(tasks, run_tasks(tasks))
