"""Model calibration constants, each with its provenance in the paper.

Every quantitative parameter of the performance model lives here, in one
frozen dataclass, so that (a) experiments are reproducible, (b) reviewers
can audit each constant against the paper measurement it derives from, and
(c) ablation studies can perturb a copy (`dataclasses.replace`) without
touching global state.

Derivation notes
----------------
The paper's Figure 4 is the quantitative anchor for per-byte CPU costs.
At a steady 39 Gbps (= 4.875 GB/s payload each way) over one 40 Gbps RoCE
link:

* RDMA/RFTP: 122% total CPU; user-space protocol processing 56%
  (both ends combined), data copies 0% (zero-copy), data *loading* from
  ``/dev/zero`` about 70% of one core, offload to ``/dev/null`` < 1%.
* TCP/iperf: 642% total CPU; kernel protocol processing 311%, user<->kernel
  copies 213% (both ends combined), same ~70% loading cost.

From these:

* ``dev_zero_fill_rate`` = 4.875 GB/s / 0.70 cores ≈ 7.0 GB/s per core.
* ``tcp_kernel_rate``    = 4.875 / (3.11 / 2)  ≈ 3.1 GB/s per core per end.
* ``memcpy_rate_local``  = 4.875 / (2.13 / 2)  ≈ 4.6 GB/s per core per copy.
* ``rdma_proto_rate``    = 4.875 / (0.56 / 2)  ≈ 17.4 GB/s per core per end.
* ``tcp_user_rate``      : residual 642-311-213-2*70 ≈ -22% ≈ 0; iperf's
  user-space loop is nearly free → use 40 GB/s/core (≈12% per end at 39G).

The §2.3 motivating experiment anchors the memory system: STREAM Triad
measures 50 GB/s across the two NUMA nodes (25 GB/s per node), and NUMA
binding lifts bi-directional iperf from 83.5 to 91.8 Gbps.

Section 4.2 (Figs. 7/8) anchors NUMA/coherence asymmetry: +7.6% bandwidth
for reads and +19% for writes (>4 MiB blocks) under binding, with 3x CPU
savings on writes; and read service ≈7.5% faster than write service
(RDMA WRITE vs RDMA READ data movement).

Section 4.3 (Fig. 9) anchors end-to-end: fio-measured narrowest stage is
the file-write path at 94.8 Gbps; RFTP reaches 91 Gbps (96%), GridFTP
29 Gbps (30%).

Section 4.4 (Figs. 13/14) anchors WAN behaviour: 97% of the raw 40 Gbps
with large blocks over a 95 ms RTT path; per-block control-message
overhead shrinking with block size.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.units import MIB, gbps

__all__ = ["Calibration", "CALIBRATION", "TrackingCalibration",
           "tracking_calibration"]


@dataclass(frozen=True)
class Calibration:
    """All model constants (rates in bytes/second unless noted)."""

    # ------------------------------------------------------------------ memory
    #: Raw memory-system bandwidth per NUMA node.  STREAM Triad *reports*
    #: 50 GB/s over two nodes (§2.3), but Triad counts 3 accesses per
    #: iteration while write-allocate makes the hardware move 4 — so the
    #: raw per-node capacity is 25 * 4/3 ≈ 33.3 GB/s, against which this
    #: library's traffic factors (which do count write-allocate) are charged.
    mem_bandwidth_per_node: float = 33.3e9
    #: What STREAM Triad reports for the whole machine (anchor for
    #: :mod:`repro.apps.streambench`).
    stream_triad_total: float = 50e9
    #: Inter-socket (QPI) bandwidth per direction (two 8 GT/s QPI links
    #: minus snoop/control traffic; calibrated so the default-policy
    #: penalties land on Fig. 7's +7.6%/+19% gains).
    qpi_bandwidth: float = 11.5e9
    #: Extra memory-system traffic per byte *copied* (read + write-allocate
    #: + writeback ≈ 3 line crossings per byte; Drepper 2007).
    copy_traffic_factor: float = 3.0
    #: Traffic per byte for a plain read or DMA touch.
    touch_traffic_factor: float = 1.0
    #: Fraction of memory accesses landing remote under the default
    #: (NUMA-oblivious) scheduling/allocation policy on a 2-node machine.
    default_remote_fraction: float = 0.5
    #: Effective throughput derating for remote (cross-QPI) accesses.
    remote_access_derate: float = 0.75
    #: Remote accesses also occupy the *bank* longer (open-page misses,
    #: directory lookups): bank weight is inflated by 1/this for remote
    #: streams.
    remote_bank_derate: float = 0.75
    #: Fraction of execution time a default-policy thread spends on its
    #: "home" node once Linux NUMA balancing settles (threads are not
    #: bounced uniformly; they drift).  Used by the BIASED policy that
    #: models untuned-but-long-running processes like iperf's.
    numa_balancing_home_fraction: float = 0.7

    # ---------------------------------------------------- TCP copy traffic
    #: Memory traffic per byte on the *read* side of a TCP user<->kernel
    #: copy.  Kernel socket buffers are cache-cold (allocated per-packet),
    #: so copies miss more than a streaming memcpy: 1.6 vs the ideal 1.0.
    tcp_copy_read_traffic: float = 1.6
    #: Traffic on the *write* side (write-allocate + eviction writeback
    #: under cache pressure): 3.2 vs the streaming 2.0.  Together these
    #: place the tuned bi-directional iperf ceiling at the paper's
    #: 91.8 Gbps (§2.3).
    tcp_copy_write_traffic: float = 3.2

    # ------------------------------------------------------ cache coherence
    #: CPU cost (core-seconds per byte) of invalidating remotely shared
    #: cache lines on writes (drives Fig. 7/8 write-side NUMA gain).
    coherence_invalidate_cpu_per_byte: float = 1.0 / 0.65e9
    #: Additional interconnect traffic per byte written to pages with
    #: remote sharers (invalidation + ownership transfers).
    coherence_traffic_factor: float = 0.75
    #: Same-node invalidation cost (cheap: on-die snoop).
    coherence_local_cpu_per_byte: float = 1.0 / 20.0e9

    # --------------------------------------------------------------- CPU rates
    #: Zero-filling a user buffer from /dev/zero (Fig. 4: ~70% @ 39 Gbps).
    dev_zero_fill_rate: float = 7.0e9
    #: Kernel TCP/IP protocol processing, per end (Fig. 4: 311%/2 @ 39G).
    tcp_kernel_rate: float = 3.1e9
    #: One user<->kernel copy, local NUMA (Fig. 4: 213%/2 @ 39G).
    memcpy_rate_local: float = 4.6e9
    #: Same copy when source/destination is on the remote node.
    memcpy_rate_remote: float = 2.9e9
    #: RFTP/RDMA user-space protocol processing per end (Fig. 4: 56%/2).
    rdma_proto_rate: float = 17.4e9
    #: iperf-style user-space loop cost per end.
    tcp_user_rate: float = 40.0e9
    #: iSER/SCSI target processing per byte (request handling, tags).
    iser_target_rate: float = 30.0e9
    #: Interrupt/softirq handling per byte of TCP traffic (coalesced).
    tcp_interrupt_rate: float = 12.0e9

    # ------------------------------------------------------------ per-op costs
    #: Fixed CPU cost per RFTP block (descriptor + credit message), per end.
    rftp_per_block_cpu: float = 18e-6
    #: Fixed wire cost (bytes) per RFTP control round-trip per block.
    rftp_ctrl_bytes_per_block: float = 512.0
    #: Fixed CPU cost per SCSI command at the target.
    scsi_per_cmd_cpu: float = 12e-6
    #: Fixed CPU cost per SCSI command at the initiator.
    scsi_initiator_per_cmd_cpu: float = 8e-6
    #: Latency of an RDMA work-request post + completion (per op).
    rdma_op_latency: float = 4e-6
    #: RDMA READ adds a request round-trip before data flows.
    rdma_read_extra_latency: float = 6e-6

    # ------------------------------------------------------------------- links
    #: RoCE QDR line rate (paper front-end: 3 x 40 Gbps).
    roce_line_rate: float = gbps(40.0)
    #: InfiniBand FDR line rate (paper back-end: 2 x 56 Gbps).
    ib_fdr_line_rate: float = gbps(56.0)
    #: 64/66 encoding + headers: fraction of line rate available to L4.
    ib_encoding_efficiency: float = 0.9685  # 64/66 * header factor
    #: RoCE payload efficiency at MTU 9000 (Ethernet+IP+UDP+IB headers).
    roce_mtu9000_efficiency: float = 0.988
    #: RoCE payload efficiency at MTU 1500.
    roce_mtu1500_efficiency: float = 0.942
    #: Relative throughput of RDMA READ vs RDMA WRITE data movement
    #: (paper §4.2: read-requests ≈7.5% faster than write-requests).
    rdma_read_throughput_derate: float = 0.93
    #: PCIe Gen3 x8 effective bandwidth per slot, per direction (TLP
    #: overhead included; Mellanox FDR HCAs measure ~6.0-6.3 GB/s).
    pcie_gen3_x8_bandwidth: float = 6.2e9

    # ----------------------------------------------------------------- storage
    #: tmpfs page-touch rate per target worker thread (memory-speed).
    tmpfs_thread_rate: float = 6.0e9
    #: SSD (Fusion-IO class) burst bandwidth.
    ssd_burst_bandwidth: float = 1.4e9
    #: SSD bandwidth once thermal throttling engages (§4.1: ~500 MB/s).
    ssd_throttled_bandwidth: float = 0.5e9
    #: Bytes of sustained I/O before thermal throttling begins (§4.1:
    #: "100 gigabytes data or more continuously").
    ssd_thermal_budget_bytes: float = 100e9
    #: Seconds of idleness to dissipate heat back below the throttle point.
    ssd_cooldown_seconds: float = 120.0

    # -------------------------------------------------------------- filesystems
    #: Page-cache copy penalty applies to non-direct I/O (extra memcpy).
    pagecache_copy_rate: float = 4.6e9
    #: XFS per-I/O allocation overhead (allocation groups allow parallelism).
    xfs_per_io_cpu: float = 6e-6
    #: ext4 per-I/O overhead (single journal, more serialization).
    ext4_per_io_cpu: float = 10e-6
    #: Filesystem concurrency: XFS allocation groups (parallel I/O paths).
    xfs_allocation_groups: int = 8
    #: ext4 effective concurrent I/O streams (journal serialization).
    ext4_concurrency: int = 2

    # -------------------------------------------------------------------- TCP
    #: cubic scaling constant C (RFC 8312), in window-segments/sec^3.
    cubic_c: float = 0.4
    #: cubic beta (multiplicative decrease).
    cubic_beta: float = 0.7
    #: initial congestion window in bytes.
    tcp_init_cwnd_bytes: float = 10 * 1460.0
    #: socket buffer limit (paper hosts tuned for WAN): 512 MiB.
    tcp_max_window_bytes: float = 512 * MIB

    # --------------------------------------------------------------------- RFTP
    #: RFTP credit tokens per stream (outstanding blocks).
    rftp_credits_per_stream: int = 16
    #: RFTP maximum worker threads per host.
    rftp_max_threads: int = 8

    # ----------------------------------------------------------- GridFTP model
    #: GridFTP data-mover processes used in the paper's comparison runs
    #: (globus-url-copy -p: two movers per RoCE link).
    gridftp_processes: int = 6
    #: Disk/network phase alternation leaves the link idle while the single
    #: thread performs blocking I/O (paper §4.3, reason two).
    gridftp_io_block_bytes: float = 4 * MIB

    def derived_ib_data_rate(self) -> float:
        """Usable per-link data rate of IB FDR after encoding/headers."""
        return self.ib_fdr_line_rate * self.ib_encoding_efficiency

    def derived_roce_data_rate(self, mtu: int = 9000) -> float:
        """Usable per-link data rate of RoCE QDR at the given MTU."""
        eff = (
            self.roce_mtu9000_efficiency
            if mtu >= 9000
            else self.roce_mtu1500_efficiency
        )
        return self.roce_line_rate * eff

    def replace(self, **kwargs) -> "Calibration":
        """A copy with some constants overridden (for ablations)."""
        return dataclasses.replace(self, **kwargs)


#: The library-wide default calibration (the paper's testbed).
CALIBRATION = Calibration()

#: Every constant's field name (the tracking subclass intercepts these).
_FIELD_NAMES = frozenset(f.name for f in dataclasses.fields(Calibration))


class TrackingCalibration(Calibration):
    """A :class:`Calibration` that records which constants are read.

    Used by gang execution (:mod:`repro.exec.gang`) to learn the exact
    read-set of one scenario evaluation: any simulation whose
    calibration agrees on every *recorded* field is guaranteed to take
    the identical execution path, so its result can be shared without
    re-running.  Values are bit-identical to the wrapped calibration —
    only attribute lookup is intercepted — so a run under tracking is
    byte-equal to a run without it.

    Copies made via ``replace``/``dataclasses.replace``/``asdict`` read
    every field of the source, which conservatively marks the whole
    calibration as read; the copy itself is untracked, which is then
    harmless (nothing finer-grained than "everything" remains to learn).
    """

    def __getattribute__(self, name: str):
        if name in _FIELD_NAMES:
            sink = object.__getattribute__(self, "__dict__").get("_gang_reads")
            if sink is not None:
                sink.add(name)
        return object.__getattribute__(self, name)


def tracking_calibration(cal: Calibration, sink: set) -> TrackingCalibration:
    """A tracked copy of *cal* recording every constant read into *sink*."""
    tracked = TrackingCalibration(
        **{name: object.__getattribute__(cal, name) for name in _FIELD_NAMES}
    )
    object.__setattr__(tracked, "_gang_reads", sink)
    return tracked
