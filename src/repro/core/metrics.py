"""Run-level metrics: throughput summaries and CPU breakdowns.

These are the data structures the experiment modules return and the
benchmark harness renders — one :class:`RunResult` per measured
configuration, with the paper's reporting conventions (Gbps, percent of
one core, usr/sys split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.kernel.accounting import CpuAccounting
from repro.sim.trace import TimeSeries
from repro.util.units import to_gbps

__all__ = ["CpuBreakdown", "RunResult"]


@dataclass
class CpuBreakdown:
    """CPU utilization in percent-of-one-core, by category."""

    by_category: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_accounting(cls, acc: CpuAccounting, wall: float) -> "CpuBreakdown":
        """Build from a CPU ledger over a wall-clock window."""
        if wall <= 0:
            raise ValueError(f"wall time must be > 0, got {wall}")
        return cls(
            by_category={
                k: 100.0 * v / wall for k, v in acc.seconds_by_category().items()
            }
        )

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return sum(self.by_category.values())

    @property
    def usr(self) -> float:
        """User-space share (protocol + load + offload)."""
        return sum(
            v
            for k, v in self.by_category.items()
            if k in ("usr_proto", "load", "offload")
        )

    @property
    def sys(self) -> float:
        """Kernel-side share (stack + copies + interrupts + I/O)."""
        return sum(
            v
            for k, v in self.by_category.items()
            if k in ("sys_proto", "copy", "irq", "coherence", "io")
        )

    def get(self, category: str) -> float:
        """Take an amount; blocks (as an event) until available."""
        return self.by_category.get(category, 0.0)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{k}={v:.0f}%" for k, v in sorted(self.by_category.items()) if v >= 0.5
        )
        return f"total={self.total:.0f}% ({parts})"


@dataclass
class RunResult:
    """One measured configuration: throughput + CPU + timeline."""

    label: str
    total_bytes: float
    duration: float
    sender_cpu: Optional[CpuBreakdown] = None
    receiver_cpu: Optional[CpuBreakdown] = None
    series: Optional[TimeSeries] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Mean payload rate over the run (bytes/s)."""
        return self.total_bytes / self.duration

    @property
    def goodput_gbps(self) -> float:
        """Mean payload rate in gigabits/second."""
        return to_gbps(self.goodput)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.label}: {self.goodput_gbps:.1f} Gbps over {self.duration:.0f} s"
        ]
        if self.sender_cpu is not None:
            lines.append(f"  sender CPU:   {self.sender_cpu}")
        if self.receiver_cpu is not None:
            lines.append(f"  receiver CPU: {self.receiver_cpu}")
        for k, v in self.extras.items():
            lines.append(f"  {k}: {v:.3g}")
        return "\n".join(lines)
