"""System-wide NUMA tuning policies.

A :class:`TuningPolicy` captures the paper's two operating regimes in one
object so the end-to-end builder can apply them consistently to targets,
initiators, transfer applications and IRQ steering:

* :meth:`TuningPolicy.default` — stock Linux behaviour everywhere,
* :meth:`TuningPolicy.numa_bound` — the paper's tuning: one target
  process per node with ``mpol``-pinned tmpfs files, ``numactl``-bound
  RFTP/GridFTP processes near their NICs, IRQs steered NIC-local.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TuningPolicy"]


@dataclass(frozen=True)
class TuningPolicy:
    """Switches for every NUMA-sensitive knob in the testbed."""

    #: per-node target processes with node-pinned tmpfs ("numa") vs a
    #: single roaming target ("default").
    target_tuning: str = "default"
    #: numactl-bind transfer applications to NIC-local nodes.
    bind_apps: bool = False
    #: steer NIC interrupts to the NIC-local node.
    tune_irq: bool = False

    def __post_init__(self):
        if self.target_tuning not in ("default", "numa"):
            raise ValueError(
                f"target_tuning must be 'default' or 'numa', got {self.target_tuning!r}"
            )

    @classmethod
    def default(cls) -> "TuningPolicy":
        """Stock Linux scheduling and allocation everywhere."""
        return cls(target_tuning="default", bind_apps=False, tune_irq=False)

    @classmethod
    def numa_bound(cls) -> "TuningPolicy":
        """The paper's full tuning (§3.1 + §4.3 numactl bindings)."""
        return cls(target_tuning="numa", bind_apps=True, tune_irq=True)

    @property
    def label(self) -> str:
        """Human-readable name of this configuration."""
        return "NUMA-tuned" if self.bind_apps else "default"
