"""The composed end-to-end system (the paper's Figure 5 testbed).

:class:`EndToEndSystem` assembles the full data path:

.. code-block:: text

    target-A  ==2x IB FDR==  host-A  ==3x RoCE QDR==  host-B  ==2x IB FDR==  target-B
    (tmpfs SAN)  (iSER)   (RFTP client)            (RFTP server)  (iSER)   (tmpfs SAN)

with six 50 GB logical units per SAN, XFS formatted from the initiators,
and every NUMA knob driven by one :class:`~repro.core.tuning.TuningPolicy`.
Methods run the paper's §4.3 workloads: unidirectional and bi-directional
RFTP and GridFTP transfers, plus the fio cross-check that establishes the
94.8 Gbps file-write ceiling.
"""

from __future__ import annotations

from typing import List, Literal, Optional

from repro.apps.fio import FioJob, run_fio
from repro.apps.gridftp import GridFtp
from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.metrics import CpuBreakdown, RunResult
from repro.core.tuning import TuningPolicy
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.vfs import FileSystem
from repro.fs.xfs import XfsFileSystem
from repro.hw.presets import backend_lan_host, frontend_lan_host
from repro.hw.topology import Machine
from repro.net.topology import wire_frontend_lan, wire_san
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, MIB
from repro.util.validation import check_positive

__all__ = ["EndToEndSystem"]

FsKind = Literal["xfs", "ext4", "raw"]


class EndToEndSystem:
    """Two front-end hosts, two back-end SANs, fully cabled and mounted."""

    def __init__(
        self,
        ctx: Context,
        tuning: TuningPolicy,
        *,
        n_luns: int = 6,
        lun_size: int = 50 * GB,
        fs_kind: FsKind = "xfs",
    ):
        check_positive("n_luns", n_luns)
        self.ctx = ctx
        self.tuning = tuning
        self.fs_kind: FsKind = fs_kind

        # hosts
        self.host_a = frontend_lan_host(ctx, "host-a", with_ib=True)
        self.host_b = frontend_lan_host(ctx, "host-b", with_ib=True)
        self.target_a = backend_lan_host(ctx, "target-a")
        self.target_b = backend_lan_host(ctx, "target-b")

        # wires
        self.frontend_links = wire_frontend_lan(self.host_a, self.host_b)
        self.san_a = wire_san(ctx, self.host_a, self.target_a)
        self.san_b = wire_san(ctx, self.host_b, self.target_b)

        # SANs
        self.tgt_a = IserTarget(ctx, self.target_a, tuning=tuning.target_tuning,
                                n_links=2, name="tgtd-a")
        self.tgt_b = IserTarget(ctx, self.target_b, tuning=tuning.target_tuning,
                                n_links=2, name="tgtd-b")
        for _ in range(n_luns):
            self.tgt_a.create_lun(lun_size)
            self.tgt_b.create_lun(lun_size)
        self.initiator_a = IserInitiator(ctx, self.host_a, self.tgt_a)
        self.initiator_b = IserInitiator(ctx, self.host_b, self.tgt_b)
        ctx.sim.run(until=ctx.sim.any_of(
            [self.initiator_a.login_all(), self.initiator_b.login_all()]
        ))
        ctx.sim.run(until=ctx.sim.now + 0.01)  # let both logins settle

        # filesystems over the exported block devices
        self.fs_a = self._make_filesystems(self.initiator_a)
        self.fs_b = self._make_filesystems(self.initiator_b)

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def lan_testbed(
        cls,
        tuning: Optional[TuningPolicy] = None,
        *,
        seed: int = 0,
        cal: Optional[Calibration] = None,
        n_luns: int = 6,
        lun_size: int = 50 * GB,
        fs_kind: FsKind = "xfs",
    ) -> "EndToEndSystem":
        """Build the Figure 5 LAN testbed with a fresh simulation context."""
        ctx = Context.create(seed=seed, cal=cal)
        return cls(
            ctx,
            tuning if tuning is not None else TuningPolicy.numa_bound(),
            n_luns=n_luns,
            lun_size=lun_size,
            fs_kind=fs_kind,
        )

    def _make_filesystems(self, initiator: IserInitiator) -> List[FileSystem]:
        out: List[FileSystem] = []
        for lun_id in sorted(initiator.devices):
            dev = initiator.devices[lun_id]
            if self.fs_kind == "xfs":
                out.append(XfsFileSystem(self.ctx, dev))
            elif self.fs_kind == "ext4":
                out.append(Ext4FileSystem(self.ctx, dev))
            else:  # raw block device: a trivially thin XFS-less wrapper
                out.append(XfsFileSystem(self.ctx, dev, cache_bytes=1 << 20))
        return out

    # -- introspection -----------------------------------------------------------
    def solver_stats(self) -> dict:
        """Fluid-solver identity and counters for this system's scheduler.

        Console-footer material (``python -m repro report``), never part
        of the EXPERIMENTS.md ledger: counters depend on event interleaving
        and solver dispatch, not on the modeled physics.
        """
        fluid = self.ctx.fluid
        return {"solver": fluid.solver, **fluid.stats.as_dict()}

    # -- workloads ---------------------------------------------------------------
    def fio_file_write_ceiling(self, block_size: int = 4 * MIB,
                               runtime: float = 30.0) -> float:
        """The paper's fio cross-check: the narrowest end-to-end stage.

        Returns the aggregate file-*write* bandwidth (bytes/s) into SAN B
        — 94.8 Gbps in the paper, the bound RFTP then reaches 96% of.
        """
        devices = [self.initiator_b.devices[i] for i in sorted(self.initiator_b.devices)]
        job = FioJob(rw="write", block_size=block_size, numjobs=4, runtime=runtime)
        result = run_fio(self.ctx, self.host_b, devices, job)
        return result.bandwidth

    def _rftp(self, sender: Machine, receiver: Machine,
              src_fs: List[FileSystem], dst_fs: List[FileSystem],
              config: Optional[RftpConfig], name: str) -> RftpTransfer:
        cfg = config if config is not None else RftpConfig(
            streams_per_link=2, numa_tuned=self.tuning.bind_apps
        )
        return RftpTransfer(
            self.ctx, sender, receiver,
            source=src_fs, sink=dst_fs, config=cfg, name=name,
        )

    def run_rftp_transfer(self, duration: float = 60.0,
                          config: Optional[RftpConfig] = None) -> RunResult:
        """Unidirectional RFTP: SAN A -> host A -> host B -> SAN B (Fig. 9)."""
        xfer = self._rftp(self.host_a, self.host_b, self.fs_a, self.fs_b,
                          config, "rftp-ab")
        res = xfer.run(duration)
        return RunResult(
            label=f"RFTP ({self.tuning.label})",
            total_bytes=res.total_bytes,
            duration=duration,
            sender_cpu=CpuBreakdown.from_accounting(res.sender_accounting, duration),
            receiver_cpu=CpuBreakdown.from_accounting(res.receiver_accounting, duration),
            series=res.series,
        )

    def run_rftp_bidirectional(self, duration: float = 60.0,
                               config: Optional[RftpConfig] = None) -> RunResult:
        """Simultaneous RFTP in both directions (Fig. 11)."""
        ab = self._rftp(self.host_a, self.host_b, self.fs_a, self.fs_b,
                        config, "rftp-ab")
        ba = self._rftp(self.host_b, self.host_a, self.fs_b, self.fs_a,
                        config, "rftp-ba")
        ab.start()
        ba.start()
        t0 = self.ctx.sim.now
        self.ctx.sim.run(until=t0 + duration)
        self.ctx.fluid.settle()
        total = ab.transferred() + ba.transferred()
        snd = ab._ledger(ab._send_threads + ba._send_threads, "snd")
        rcv = ab._ledger(ab._recv_threads + ba._recv_threads, "rcv")
        ab.stop()
        ba.stop()
        return RunResult(
            label=f"RFTP bidir ({self.tuning.label})",
            total_bytes=total,
            duration=duration,
            sender_cpu=CpuBreakdown.from_accounting(snd, duration),
            receiver_cpu=CpuBreakdown.from_accounting(rcv, duration),
        )

    def run_gridftp_transfer(self, duration: float = 60.0,
                             processes: Optional[int] = None) -> RunResult:
        """Unidirectional GridFTP baseline (Fig. 9)."""
        g = GridFtp(
            self.ctx, self.host_a, self.host_b,
            source_fs=self.fs_a, sink_fs=self.fs_b,
            processes=processes, numa_tuned=self.tuning.bind_apps,
            name="gridftp-ab",
        )
        res = g.run(duration)
        return RunResult(
            label=f"GridFTP ({self.tuning.label})",
            total_bytes=res.total_bytes,
            duration=duration,
            sender_cpu=CpuBreakdown.from_accounting(res.sender_accounting, duration),
            receiver_cpu=CpuBreakdown.from_accounting(res.receiver_accounting, duration),
            series=res.series,
        )

    def run_gridftp_bidirectional(self, duration: float = 60.0,
                                  processes: Optional[int] = None) -> RunResult:
        """Simultaneous GridFTP in both directions (Fig. 11)."""
        ab = GridFtp(self.ctx, self.host_a, self.host_b,
                     source_fs=self.fs_a, sink_fs=self.fs_b,
                     processes=processes, numa_tuned=self.tuning.bind_apps,
                     name="gridftp-ab")
        ba = GridFtp(self.ctx, self.host_b, self.host_a,
                     source_fs=self.fs_b, sink_fs=self.fs_a,
                     processes=processes, numa_tuned=self.tuning.bind_apps,
                     name="gridftp-ba")
        ab.start()
        ba.start()
        t0 = self.ctx.sim.now
        self.ctx.sim.run(until=t0 + duration)
        self.ctx.fluid.settle()
        total = ab.transferred() + ba.transferred()
        for g in (ab, ba):
            for f in g.flows:
                if f._active:
                    self.ctx.fluid.stop(f)

        def ledger(threads, name):
            from repro.kernel.accounting import CpuAccounting

            acc = CpuAccounting(name)
            for t in threads:
                acc.add_many(t.accounting.seconds_by_category())
            return acc

        snd_acc = ledger(ab._send_threads + ba._send_threads, "snd")
        rcv_acc = ledger(ab._recv_threads + ba._recv_threads, "rcv")
        return RunResult(
            label=f"GridFTP bidir ({self.tuning.label})",
            total_bytes=total,
            duration=duration,
            sender_cpu=CpuBreakdown.from_accounting(snd_acc, duration),
            receiver_cpu=CpuBreakdown.from_accounting(rcv_acc, duration),
        )
