"""Ablation A3: raw device vs ext4 vs XFS over iSER (§4.3).

"the throughput differences among the raw block devices [...], ext4, and
XFS [...] are comparable.  Since the XFS file system particularly is
efficient for parallel I/O [...] we chose XFS."
"""

from __future__ import annotations

from typing import Dict

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 20.0 if quick else 300.0
    report = ExperimentReport(
        "ablation-fs",
        "A3: raw / ext4 / XFS over iSER: comparable for direct-I/O RFTP, "
        "XFS ahead for buffered parallel I/O (GridFTP)",
        data_headers=["filesystem", "RFTP Gbps (O_DIRECT)",
                      "GridFTP Gbps (buffered)"],
    )
    rftp_rates: Dict[str, float] = {}
    grid_rates: Dict[str, float] = {}
    for i, fs_kind in enumerate(("raw", "ext4", "xfs")):
        system = EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=seed + i, cal=cal,
            lun_size=2 * GB, fs_kind=fs_kind,
        )
        rftp_rates[fs_kind] = system.run_rftp_transfer(
            duration=duration).goodput
        system2 = EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=seed + 10 + i, cal=cal,
            lun_size=2 * GB, fs_kind=fs_kind,
        )
        grid_rates[fs_kind] = system2.run_gridftp_transfer(
            duration=duration).goodput
        report.add_row([
            fs_kind,
            round(rftp_rates[fs_kind] * 8 / 1e9, 1),
            round(grid_rates[fs_kind] * 8 / 1e9, 1),
        ])

    spread = (max(rftp_rates.values()) - min(rftp_rates.values())) / max(
        rftp_rates.values()
    )
    report.add_check("raw/ext4/XFS comparable for direct I/O", "within ~10%",
                     f"{spread:.1%} spread", ok=spread < 0.12)
    report.add_check("XFS >= ext4 for buffered parallel I/O", "yes",
                     f"xfs/ext4 = {grid_rates['xfs'] / grid_rates['ext4']:.3f}x",
                     ok=grid_rates["xfs"] >= grid_rates["ext4"] * 0.999)
    return report
