"""Fig. 8: iSER target CPU utilization, default vs NUMA tuning.

Same workload as Fig. 7; the metric is the target host's CPU.  Paper
anchors: the default policy costs ≈**3x** the CPU on writes (coherence
invalidations + remote copies), while the read-side saving is modest.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.experiments.exp_fig07_iser_bw import BLOCK_SIZES, sweep
from repro.core.report import ExperimentReport
from repro.util.units import KIB, MIB

__all__ = ["run"]

PAPER_WRITE_CPU_RATIO = 3.0


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    block_sizes = BLOCK_SIZES if not quick else (256 * KIB, 4 * MIB)
    grid = sweep(quick=quick, seed=seed, cal=cal, block_sizes=block_sizes)
    runtime = 10.0 if quick else 300.0
    report = ExperimentReport(
        "fig08",
        "Fig. 8 iSER target CPU: default vs NUMA-tuned",
        data_headers=["rw", "block size", "default CPU %", "NUMA CPU %", "ratio"],
    )
    big = max(block_sizes)
    for rw in ("read", "write"):
        for bs in block_sizes:
            d_cpu = 100.0 * grid[("default", rw, bs)][1] / runtime
            n_cpu = 100.0 * grid[("numa", rw, bs)][1] / runtime
            report.add_row([
                rw, f"{bs // 1024} KiB", round(d_cpu), round(n_cpu),
                f"{d_cpu / max(n_cpu, 1e-9):.2f}x",
            ])

    w_ratio = grid[("default", "write", big)][1] / grid[("numa", "write", big)][1]
    r_ratio = grid[("default", "read", big)][1] / grid[("numa", "read", big)][1]
    report.add_check("write CPU ratio (default/tuned)",
                     f"~{PAPER_WRITE_CPU_RATIO:.0f}x", f"{w_ratio:.2f}x",
                     ok=2.2 < w_ratio < 4.0)
    report.add_check("read CPU ratio (default/tuned)", "modest (<2x)",
                     f"{r_ratio:.2f}x", ok=r_ratio < 2.0)
    report.add_check("write penalty exceeds read penalty", "yes",
                     "yes" if w_ratio > r_ratio else "no", ok=w_ratio > r_ratio)
    return report
