"""Figs. 5 & 6: testbed connectivity (structural reproduction).

Figures 5 and 6 are wiring diagrams: the LAN testbed's two front-end
hosts joined by three RoCE QDR links, each host reaching its storage
target over two IB FDR links through the FDR switch; and the WAN loop's
two ANI hosts 95 ms apart.  This experiment builds both testbeds and
verifies every edge of the diagrams — link counts, technologies, rates,
switch attachment, NUMA affinity of the adapters, and RTTs.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.hw.nic import NicKind
from repro.hw.presets import wan_host
from repro.net.topology import wire_wan
from repro.sim.context import Context
from repro.util.units import GB, to_gbps

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    report = ExperimentReport(
        "fig05",
        "Figs. 5 & 6: end-to-end testbed connectivity",
        data_headers=["edge", "count", "per-link usable Gbps", "RTT (ms)"],
    )
    system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=seed,
                                        cal=cal, lun_size=GB, n_luns=2)

    front = system.frontend_links
    report.add_row(["host-a <-> host-b (RoCE QDR)", len(front),
                    round(to_gbps(front[0].rate), 1),
                    round(front[0].rtt * 1e3, 3)])
    for label, san in (("host-a <-> target-a (IB FDR)", system.san_a),
                       ("host-b <-> target-b (IB FDR)", system.san_b)):
        report.add_row([label, len(san.links),
                        round(to_gbps(san.links[0].rate), 1),
                        round(san.links[0].rtt * 1e3, 3)])

    # Figure 5 edges
    report.add_check("front-end RoCE links", 3, len(front),
                     ok=len(front) == 3)
    report.add_check("IB links per SAN", 2,
                     f"{len(system.san_a.links)} / {len(system.san_b.links)}",
                     ok=len(system.san_a.links) == len(system.san_b.links) == 2)
    report.add_check("SAN links attach to the FDR switch", "yes",
                     "yes" if len(system.san_a.switch.links) == 2 else "no",
                     ok=len(system.san_a.switch.links) == 2)
    aggregate_roce = sum(link.rate for link in front)
    report.add_check("front-end aggregate (line 120 Gbps)", "~118 usable",
                     round(to_gbps(aggregate_roce), 1),
                     ok=110 < to_gbps(aggregate_roce) < 120)
    aggregate_ib = sum(link.rate for link in system.san_a.links)
    report.add_check("back-end aggregate (line 112 Gbps)", "~108 usable",
                     round(to_gbps(aggregate_ib), 1),
                     ok=100 < to_gbps(aggregate_ib) < 112)
    # Figure 2's NUMA layout: the two FDR adapters sit on different sockets
    target_nodes = {s.device.node for s in system.target_a.pcie_slots}
    report.add_check("target FDR adapters span both sockets (Fig. 2)",
                     "{0, 1}", str(target_nodes), ok=target_nodes == {0, 1})
    roce_kinds = {
        s.device.kind for s in system.host_a.pcie_slots[:3]
    }
    report.add_check("front-end adapters are RoCE QDR", "yes",
                     "yes" if roce_kinds == {NicKind.ROCE_QDR} else "no",
                     ok=roce_kinds == {NicKind.ROCE_QDR})

    # Figure 6: the ANI loop
    ctx = Context.create(seed=seed, cal=cal)
    loop = wire_wan(wan_host(ctx, "nersc"), wan_host(ctx, "anl"))
    report.add_row(["NERSC <-> ANL loop (RoCE QDR)", 1,
                    round(to_gbps(loop.rate), 1), round(loop.rtt * 1e3, 1)])
    report.add_check("WAN RTT (Fig. 6: ~95 ms over 4000 miles)", 95.0,
                     round(loop.rtt * 1e3, 1),
                     ok=abs(loop.rtt * 1e3 - 95.0) < 0.01)
    bdp_mb = loop.rate * loop.rtt / 1e6
    report.add_check("WAN BDP (\"close to 500 megabytes\")", "~500 MB",
                     f"{bdp_mb:.0f} MB", ok=400 < bdp_mb < 520)
    report.notes.append(
        "Figures 1 and 2 are conceptual diagrams (data-center layout and "
        "the iSER tuning schematic); their content is realized by the "
        "hw presets and the IserTarget tuning regimes respectively."
    )
    return report
