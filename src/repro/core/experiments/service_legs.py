"""Process-pool-safe legs for the transfer-service experiment.

Each leg stands up one :class:`~repro.service.fleet.RailFleet` (``hosts``
front-end/sink pairs, three 40 Gbps RoCE rails each), attaches a
:class:`~repro.service.broker.TransferBroker` under the requested
placement policy, and serves a seeded workload for ``duration`` seconds
of simulated time.  Arrivals then drain and in-flight jobs get a short
grace window to finish, so sustained-rate and latency numbers describe
the steady serving window, not a truncated tail.

Policy comparability is structural: the workload draws from its own
``service.*`` RNG streams and never consults the policy, so two legs at
one seed see byte-identical job streams and differ **only** in
placement.  The fault plan arrives as a plain ``faults`` spec-string
parameter (hashed into the result-cache identity); a non-empty plan
drives an explicit per-context injector, which the broker registers
with so dead rails trigger rescheduling rather than stalls.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.calibration import Calibration
from repro.util.units import MIB

__all__ = ["service_leg"]

#: Fraction of ``duration`` granted to in-flight jobs after drain.
GRACE_FRACTION = 0.5


def service_leg(*, seed: int, cal: Optional[Calibration], hosts: int,
                policy: str, rate_per_host: float, duration: float,
                size_mean_mib: float = 128.0, arrival: str = "poisson",
                faults: str = "") -> Dict[str, Any]:
    """One fleet run under *policy*; returns the broker's scorecard."""
    from repro.faults import FaultInjector, FaultPlan
    from repro.service import (BrokerConfig, RailFleet, TransferBroker,
                               WorkloadConfig)
    from repro.sim.context import Context

    ctx = Context.create(seed=seed, cal=cal)
    # An ambient REPRO_FAULTS plan already attached an injector in
    # Context.create and takes precedence (it is part of the cache
    # identity); the leg's own spec only drives fault-free contexts.
    if faults and getattr(ctx, "faults", None) is None:
        FaultInjector(ctx, FaultPlan.parse(faults))
    fleet = RailFleet(ctx, n_hosts=hosts)
    workload = WorkloadConfig(
        rate=rate_per_host * hosts,
        arrival=arrival,
        size_mean=size_mean_mib * MIB,
    )
    broker = TransferBroker(ctx, fleet, BrokerConfig(policy=policy),
                            workload=workload)

    broker.serve()
    ctx.sim.run(until=duration)
    broker.drain()
    ctx.sim.run(until=duration * (1.0 + GRACE_FRACTION))

    s = broker.summary()
    injector = getattr(ctx, "faults", None)
    active = s["queued"] + s["running"]
    out: Dict[str, Any] = {
        "policy": policy,
        "hosts": hosts,
        "rails": len(fleet.rails),
        "offered_rate": workload.rate,
        "duration": duration,
        "submitted": s["submitted"],
        "completed": s["completed"],
        "shed": s["shed"],
        "cancelled": s["cancelled"],
        "rescheduled": s["rescheduled"],
        "remote_placements": s["remote_placements"],
        "active_end": active,
        "jobs_per_s": s["completed"] / duration,
        "p50_ms": s["p50"] * 1e3,
        "p95_ms": s["p95"] * 1e3,
        "p99_ms": s["p99"] * 1e3,
        "bytes_completed": s["bytes_completed"],
        "tenants": s["tenants"],
        "conserved": (s["submitted"]
                      == s["completed"] + s["shed"] + s["cancelled"] + active),
        "faults_injected": (0 if injector is None
                            else injector.stats.faults_injected),
    }
    return out
