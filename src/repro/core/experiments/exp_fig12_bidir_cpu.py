"""Fig. 12: CPU breakdown for the bi-directional RFTP/GridFTP runs.

Paper anchor: GridFTP's bi-directional CPU roughly doubles while its
throughput gains only 33% — CPU contention is what caps it; RFTP's CPU
stays modest per gigabit.

Runs the same four legs as Fig. 11 (identical tasks — the runner dedups
them within one report run, and the result cache across runs) but reads
the CPU ledgers instead of the throughput gains.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.experiments.exp_fig11_bidir import bidir_plan
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble"]


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as four independent transfer tasks (= Fig. 11's)."""
    return bidir_plan(quick, seed, cal, "fig12")


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the legs' results."""
    rftp_uni, rftp_bi, grid_uni, grid_bi = results
    report = ExperimentReport(
        "fig12",
        "Fig. 12 bi-directional CPU breakdown: RFTP vs GridFTP",
        data_headers=["tool", "mode", "Gbps", "usr %", "sys %", "total %"],
    )

    for tool, mode, res in (
        ("RFTP", "uni", rftp_uni),
        ("RFTP", "bidir", rftp_bi),
        ("GridFTP", "uni", grid_uni),
        ("GridFTP", "bidir", grid_bi),
    ):
        cpu = res.sender_cpu.by_category.copy()
        for k, v in res.receiver_cpu.by_category.items():
            cpu[k] = cpu.get(k, 0.0) + v
        usr = sum(v for k, v in cpu.items()
                  if k in ("usr_proto", "load", "offload"))
        sys_ = sum(v for k, v in cpu.items()
                   if k in ("sys_proto", "copy", "irq", "coherence", "io"))
        report.add_row([tool, mode, round(res.goodput_gbps, 1),
                        round(usr), round(sys_), round(usr + sys_)])

    grid_cpu_uni = grid_uni.sender_cpu.total + grid_uni.receiver_cpu.total
    grid_cpu_bi = grid_bi.sender_cpu.total + grid_bi.receiver_cpu.total
    rftp_cpu_uni = rftp_uni.sender_cpu.total + rftp_uni.receiver_cpu.total
    rftp_cpu_bi = rftp_bi.sender_cpu.total + rftp_bi.receiver_cpu.total

    report.add_check("GridFTP bidir CPU growth", "~2x",
                     f"{grid_cpu_bi / grid_cpu_uni:.2f}x",
                     ok=1.2 < grid_cpu_bi / grid_cpu_uni < 2.4)
    report.add_check(
        "GridFTP burns more CPU per Gbps than RFTP", ">5x",
        f"{(grid_cpu_bi / grid_bi.goodput_gbps) / (rftp_cpu_bi / rftp_bi.goodput_gbps):.1f}x",
        ok=(grid_cpu_bi / grid_bi.goodput_gbps)
        > 4 * (rftp_cpu_bi / rftp_bi.goodput_gbps),
    )
    report.add_check("RFTP bidir CPU grows with throughput", "yes",
                     f"{rftp_cpu_bi / rftp_cpu_uni:.2f}x",
                     ok=rftp_cpu_bi > rftp_cpu_uni)
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
