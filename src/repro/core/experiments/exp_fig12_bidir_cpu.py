"""Fig. 12: CPU breakdown for the bi-directional RFTP/GridFTP runs.

Paper anchor: GridFTP's bi-directional CPU roughly doubles while its
throughput gains only 33% — CPU contention is what caps it; RFTP's CPU
stays modest per gigabit.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 30.0 if quick else 3000.0
    lun_size = 2 * GB if quick else 50 * GB
    report = ExperimentReport(
        "fig12",
        "Fig. 12 bi-directional CPU breakdown: RFTP vs GridFTP",
        data_headers=["tool", "mode", "Gbps", "usr %", "sys %", "total %"],
    )

    def fresh(offset):
        return EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=seed + offset, cal=cal,
            lun_size=lun_size,
        )

    rftp_uni = fresh(0).run_rftp_transfer(duration=duration)
    rftp_bi = fresh(1).run_rftp_bidirectional(duration=duration)
    grid_uni = fresh(2).run_gridftp_transfer(duration=duration)
    grid_bi = fresh(3).run_gridftp_bidirectional(duration=duration)

    for tool, mode, res in (
        ("RFTP", "uni", rftp_uni),
        ("RFTP", "bidir", rftp_bi),
        ("GridFTP", "uni", grid_uni),
        ("GridFTP", "bidir", grid_bi),
    ):
        cpu = res.sender_cpu.by_category.copy()
        for k, v in res.receiver_cpu.by_category.items():
            cpu[k] = cpu.get(k, 0.0) + v
        usr = sum(v for k, v in cpu.items()
                  if k in ("usr_proto", "load", "offload"))
        sys_ = sum(v for k, v in cpu.items()
                   if k in ("sys_proto", "copy", "irq", "coherence", "io"))
        report.add_row([tool, mode, round(res.goodput_gbps, 1),
                        round(usr), round(sys_), round(usr + sys_)])

    grid_cpu_uni = grid_uni.sender_cpu.total + grid_uni.receiver_cpu.total
    grid_cpu_bi = grid_bi.sender_cpu.total + grid_bi.receiver_cpu.total
    rftp_cpu_uni = rftp_uni.sender_cpu.total + rftp_uni.receiver_cpu.total
    rftp_cpu_bi = rftp_bi.sender_cpu.total + rftp_bi.receiver_cpu.total

    report.add_check("GridFTP bidir CPU growth", "~2x",
                     f"{grid_cpu_bi / grid_cpu_uni:.2f}x",
                     ok=1.2 < grid_cpu_bi / grid_cpu_uni < 2.4)
    report.add_check(
        "GridFTP burns more CPU per Gbps than RFTP", ">5x",
        f"{(grid_cpu_bi / grid_bi.goodput_gbps) / (rftp_cpu_bi / rftp_bi.goodput_gbps):.1f}x",
        ok=(grid_cpu_bi / grid_bi.goodput_gbps)
        > 4 * (rftp_cpu_bi / rftp_bi.goodput_gbps),
    )
    report.add_check("RFTP bidir CPU grows with throughput", "yes",
                     f"{rftp_cpu_bi / rftp_cpu_uni:.2f}x",
                     ok=rftp_cpu_bi > rftp_cpu_uni)
    return report
