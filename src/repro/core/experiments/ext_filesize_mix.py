"""Extension E3: the lots-of-small-files penalty.

The paper's corpus — six 50 GB LUN-backed files — is the best case for a
bulk mover.  This extension measures what happens to RFTP when the same
byte volume arrives as many small files: every file pays fixed control
round trips (request, completion/digest), which large files amortize.

Method: the per-file overhead is *measured* from the event-level
transfer engine (two file sizes, solve the affine model), then the
validated analytic model projects completion time for three corpus
shapes of equal total volume, with and without control-phase pipelining.
"""

from __future__ import annotations

import numpy as np

from repro.apps.rftp.dataset import effective_bandwidth, synth_dataset
from repro.apps.rftp.filetransfer import rftp_send_file
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.fs.vfs import O_RDWR
from repro.fs.xfs import XfsFileSystem
from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.net.link import connect
from repro.sim.context import Context
from repro.storage.blockdev import RamDisk
from repro.util.units import GB, MIB, to_gbps

__all__ = ["run"]


def _measure_per_file_overhead(seed: int, cal: Calibration | None
                               ) -> tuple[float, float]:
    """Transfer a large and a small file event-level; solve t = s/B + c."""
    ctx = Context.create(seed=seed, cal=cal)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    src = XfsFileSystem(ctx, RamDisk(ctx, "s",
                                     place_region(64 * MIB, NumaPolicy.bind(0), 2),
                                     store_data=True))
    dst = XfsFileSystem(ctx, RamDisk(ctx, "d",
                                     place_region(64 * MIB, NumaPolicy.bind(0), 2),
                                     store_data=True))
    times = {}
    for name, size in (("big.dat", 16 * MIB), ("small.dat", 1 * MIB)):
        src.create(name, size)
        ctx.sim.run(until=src.open(name, O_RDWR).write(size))
        t0 = ctx.sim.now
        done = rftp_send_file(ctx, source_fs=src, sink_fs=dst,
                              src_path=name, dst_path=name,
                              client_nic=na, server_nic=nb,
                              block_size=1 * MIB, credits=8)
        ctx.sim.run(until=done)
        times[size] = ctx.sim.now - t0
    s_big, s_small = 16 * MIB, 1 * MIB
    bandwidth = (s_big - s_small) / (times[s_big] - times[s_small])
    overhead = times[s_small] - s_small / bandwidth
    return bandwidth, max(overhead, 0.0)


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    total = 2 * GB if quick else 300 * GB
    report = ExperimentReport(
        "ext-filesize-mix",
        "E3 (extension): RFTP completion time vs file-size mix "
        "(equal total volume)",
        data_headers=["corpus", "files", "mean size", "goodput (Gbps)",
                      "goodput w/ pipelining (Gbps)"],
    )
    bandwidth, overhead = _measure_per_file_overhead(seed, cal)
    report.add_check("measured per-file control overhead", "O(RTTs), < 5 ms",
                     f"{overhead * 1e6:.0f} us",
                     ok=0 < overhead < 5e-3)

    rng = np.random.default_rng(seed)
    rates = {}
    for kind in ("bulk", "lognormal", "small"):
        ds = synth_dataset(rng, total, kind)
        plain = effective_bandwidth(ds.sizes, bandwidth, overhead,
                                    pipeline_depth=1)
        pipelined = effective_bandwidth(ds.sizes, bandwidth, overhead,
                                        pipeline_depth=8)
        rates[kind] = (plain, pipelined)
        report.add_row([
            kind, ds.n_files, f"{ds.mean_size / MIB:.2f} MiB",
            round(to_gbps(plain), 2), round(to_gbps(pipelined), 2),
        ])

    bulk_plain = rates["bulk"][0]
    small_plain = rates["small"][0]
    small_piped = rates["small"][1]
    report.add_check("bulk corpus reaches the wire rate", ">95% of link",
                     f"{bulk_plain / bandwidth:.0%}",
                     ok=bulk_plain > 0.95 * bandwidth)
    report.add_check("small-file corpus collapses", ">3x slower than bulk",
                     f"{bulk_plain / small_plain:.1f}x",
                     ok=bulk_plain > 3 * small_plain)
    report.add_check("control-phase pipelining recovers most of the gap",
                     ">=75% of bulk goodput",
                     f"{small_piped / bulk_plain:.0%}",
                     ok=small_piped > 0.75 * bulk_plain)
    report.notes.append(
        "The per-file overhead is measured from the event-level engine "
        "(two sizes, affine fit), then projected analytically; the paper's "
        "50 GB files sit deep in the flat region of this curve."
    )
    return report
