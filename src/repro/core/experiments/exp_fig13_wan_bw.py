"""Fig. 13: RFTP bandwidth over the 40 Gbps / 95 ms ANI WAN loop.

Memory-to-memory (``/dev/zero`` -> ``/dev/null``) between the two ANI
hosts, sweeping block size and the number of parallel streams.

Paper anchors: with large blocks RFTP fills **97%** of the raw link;
payload efficiency rises with block size (per-block control messages
amortize); more streams lift small-block throughput (credits x block /
RTT is the per-stream ceiling at BDP ≈ 500 MB).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.rftp.transfer import RftpConfig, RftpResult, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import wan_host
from repro.net.topology import wire_wan
from repro.sim.context import Context
from repro.util.units import KIB, MIB, to_gbps

__all__ = ["run", "sweep", "BLOCK_SIZES", "STREAM_COUNTS"]

BLOCK_SIZES = (256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)
STREAM_COUNTS = (1, 2, 4, 8)
PAPER_PEAK_EFFICIENCY = 0.97


def sweep(quick: bool = True, seed: int = 0, cal: Calibration | None = None,
          block_sizes=BLOCK_SIZES, stream_counts=STREAM_COUNTS,
          ) -> Dict[Tuple[int, int], RftpResult]:
    """Run the (block size x streams) grid; returns full results."""
    duration = 20.0 if quick else 300.0
    out: Dict[Tuple[int, int], RftpResult] = {}
    for streams in stream_counts:
        for bs in block_sizes:
            ctx = Context.create(seed=seed, cal=cal)
            nersc = wan_host(ctx, "nersc")
            anl = wan_host(ctx, "anl")
            wire_wan(nersc, anl)
            xfer = RftpTransfer(
                ctx, nersc, anl, source="zero", sink="null",
                config=RftpConfig(block_size=bs, streams_per_link=streams,
                                  numa_tuned=True),
                name=f"wan-{bs}-{streams}",
            )
            out[(bs, streams)] = xfer.run(duration)
    return out


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    block_sizes = BLOCK_SIZES if not quick else (256 * KIB, 4 * MIB, 16 * MIB)
    stream_counts = STREAM_COUNTS if not quick else (1, 4, 8)
    grid = sweep(quick=quick, seed=seed, cal=cal, block_sizes=block_sizes,
                 stream_counts=stream_counts)
    report = ExperimentReport(
        "fig13",
        "Fig. 13 RFTP WAN bandwidth vs block size and parallel streams "
        "(40G RoCE, RTT 95 ms)",
        data_headers=["streams"] + [f"{bs // 1024} KiB" for bs in block_sizes],
    )
    for streams in stream_counts:
        report.add_row(
            [streams]
            + [round(to_gbps(grid[(bs, streams)].goodput), 2)
               for bs in block_sizes]
        )

    raw = 40.0
    peak = max(to_gbps(r.goodput) for r in grid.values())
    report.add_check("peak link utilization",
                     f"{PAPER_PEAK_EFFICIENCY:.0%} of 40G",
                     f"{peak / raw:.0%}", ok=peak / raw > 0.90)

    big, small = max(block_sizes), min(block_sizes)
    top = max(stream_counts)
    monotone_in_bs = all(
        grid[(big, s)].goodput >= grid[(small, s)].goodput
        for s in stream_counts
    )
    report.add_check("throughput rises with block size", "yes",
                     "yes" if monotone_in_bs else "no", ok=monotone_in_bs)
    monotone_in_streams = all(
        grid[(bs, top)].goodput >= grid[(bs, min(stream_counts))].goodput
        for bs in block_sizes
    )
    report.add_check("throughput rises with streams", "yes",
                     "yes" if monotone_in_streams else "no",
                     ok=monotone_in_streams)
    # per-stream credit ceiling at small block / single stream
    one = grid[(small, 1)]
    ctx_cal = cal if cal is not None else Calibration()
    credit_cap = ctx_cal.rftp_credits_per_stream * small / 0.095
    report.add_check(
        "single-stream small-block rate ~= credits*block/RTT",
        f"{to_gbps(credit_cap):.2f} Gbps",
        f"{to_gbps(one.goodput):.2f} Gbps",
        ok=abs(one.goodput - credit_cap) / credit_cap < 0.15,
    )
    return report
