"""Fig. 14: RFTP CPU on the WAN path, sender (a) and receiver (b).

Paper anchor: per-block control-message processing dominates at small
blocks, so CPU utilization *falls* as block size grows (and rises with
stream count at fixed block size).
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.experiments.exp_fig13_wan_bw import sweep
from repro.core.report import ExperimentReport
from repro.util.units import KIB, MIB, to_gbps

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    block_sizes = (256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB) if not quick else (
        256 * KIB, 4 * MIB, 16 * MIB)
    stream_counts = (1, 4, 8) if quick else (1, 2, 4, 8)
    duration = 20.0 if quick else 300.0
    grid = sweep(quick=quick, seed=seed, cal=cal, block_sizes=block_sizes,
                 stream_counts=stream_counts)
    report = ExperimentReport(
        "fig14",
        "Fig. 14 RFTP WAN CPU utilization (sender / receiver)",
        data_headers=["streams", "block size", "Gbps", "sender CPU %",
                      "receiver CPU %", "CPU% per Gbps"],
    )
    for streams in stream_counts:
        for bs in block_sizes:
            res = grid[(bs, streams)]
            snd = 100.0 * res.sender_accounting.total_seconds / duration
            rcv = 100.0 * res.receiver_accounting.total_seconds / duration
            gbps = to_gbps(res.goodput)
            report.add_row([
                streams, f"{bs // 1024} KiB", round(gbps, 2), round(snd, 1),
                round(rcv, 1),
                round((snd + rcv) / max(gbps, 1e-9), 1),
            ])

    # normalized CPU cost falls with block size (per-block amortization)
    top = max(stream_counts)
    big, small = max(block_sizes), min(block_sizes)

    def cpu_per_byte(bs):
        res = grid[(bs, top)]
        total = (res.sender_accounting.total_seconds
                 + res.receiver_accounting.total_seconds)
        return total / max(res.total_bytes, 1.0)

    falling = cpu_per_byte(big) < cpu_per_byte(small)
    report.add_check("CPU-per-byte falls with block size", "yes",
                     "yes" if falling else "no", ok=falling)
    # sender and receiver costs are of the same order (both zero-copy)
    res = grid[(big, top)]
    snd = res.sender_accounting.total_seconds
    rcv = res.receiver_accounting.total_seconds
    report.add_check("sender/receiver CPU ratio", "same order",
                     f"{snd / max(rcv, 1e-9):.2f}x",
                     ok=0.3 < snd / max(rcv, 1e-9) < 3.5)
    return report
