"""Process-pool-safe legs for the fleet availability experiment.

Each leg runs one :class:`~repro.service.fabric.FabricSpec` through the
topology-sharded runtime under an **ambient fault plan** (the
``REPRO_FAULTS`` mechanism, scoped to the leg body): correlated
``tor:<pod>`` cuts generated deterministically from a fault rate, plus
a mid-run broker crash (``crash@transfer:*``).  The plan string is a
pure function of the leg parameters, so it hashes into the nested cell
tasks' cache identities exactly like a CLI ``--faults`` flag would.

Three leg families:

* :func:`availability_leg` — the curve point: availability, p99 job
  latency and goodput at one (hosts, fault-rate) coordinate, with a
  journaled or amnesiac broker restart in the middle;
* :func:`mttr_leg` — the recovery story: the fleet goodput timeline
  around a broker crash, bucketed into an MTTR curve, with pre-crash
  vs post-restart goodput and the exactly-once byte audit;
* :func:`domain_determinism_leg` — the correctness anchor: one fabric
  under a staggered ``power:*`` cascade at two different shard counts
  must produce byte-identical per-pod ledgers (each cell draws its
  stagger offsets from its own ``"faults"`` stream).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.calibration import Calibration

__all__ = ["availability_leg", "domain_determinism_leg", "fault_plan_for",
           "mttr_leg"]

#: Window (seconds) for pre-crash / post-restart goodput comparison.
_GOODPUT_WINDOW = 1.0
#: MTTR-curve bucket width in seconds.
_BUCKET_S = 0.5


@contextmanager
def _ambient_faults(plan: str):
    """Scope ``REPRO_FAULTS`` to the enclosed fabric run (and restore)."""
    old = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = plan
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_FAULTS"]
        else:
            os.environ["REPRO_FAULTS"] = old


def fault_plan_for(*, n_pods: int, fault_rate: float, serve_s: float,
                   crash_at: float = 0.0, restart_s: float = 0.5,
                   outage_s: float = 1.0, stagger: float = 0.05) -> str:
    """The deterministic availability plan for one curve point.

    ``fault_rate`` is the fraction of pods whose ToR is cut once during
    the serve window: ``round(rate x n_pods)`` evenly-spaced pods go
    dark for ``outage_s`` seconds at evenly-spaced times, each cut
    cascading over seeded ``stagger`` offsets.  ``crash_at > 0`` adds a
    fleet-wide broker crash restarting after ``restart_s``.
    """
    clauses: List[str] = []
    n_cuts = int(round(fault_rate * n_pods))
    for k in range(n_cuts):
        pod = (k * n_pods) // max(1, n_cuts)
        at = 1.0 + (k + 0.5) * (serve_s - 1.0) / max(1, n_cuts)
        clauses.append(
            f"link-down@tor:{pod},at={at:.3f},duration={outage_s}"
            f",stagger={stagger}")
    if crash_at > 0.0:
        clauses.append(f"crash@transfer:*,at={crash_at},duration={restart_s}")
    return ";".join(clauses)


def _merge_cells(cells: List[dict], serve_s: float) -> Dict[str, Any]:
    """Fold per-pod ledgers into one availability scorecard."""
    latencies = np.sort(np.concatenate(
        [np.asarray(c["latencies_s"], dtype=float) for c in cells]))
    p50 = p99 = 0.0
    if latencies.size:
        p50, p99 = (float(v) for v in np.percentile(latencies, [50.0, 99.0]))
    active = sum(c["queued"] + c["running"] for c in cells)
    submitted = sum(c["submitted"] for c in cells)
    dropped = sum(c["dropped"] for c in cells)
    completed = sum(c["completed"] for c in cells)
    offered = submitted + dropped
    settled = offered - active
    audits = [c["audit"] for c in cells]
    out: Dict[str, Any] = {
        "submitted": submitted,
        "offered": offered,
        "completed": completed,
        "shed": sum(c["shed"] for c in cells),
        "cancelled": sum(c["cancelled"] for c in cells),
        "failed": sum(c["failed"] for c in cells),
        "lost": sum(c["lost"] for c in cells),
        "lost_bytes": sum(c["lost_bytes"] for c in cells),
        "dropped": dropped,
        "crashes": sum(c["crashes"] for c in cells),
        "replayed": sum(c["replayed"] for c in cells),
        "rescheduled": sum(c["rescheduled"] for c in cells),
        "active_end": active,
        "bytes_completed": sum(c["bytes_completed"] for c in cells),
        "availability": completed / settled if settled > 0 else 1.0,
        "goodput_Bps": sum(c["bytes_completed"] for c in cells) / serve_s,
        "p50_ms": p50 * 1e3,
        "p99_ms": p99 * 1e3,
        "audit_ok": all(
            a["jobs_conserved"] and a["completions_exact"] and a["bytes_exact"]
            for a in audits),
        "unobserved": sum(a["unobserved"] for a in audits),
    }
    out["conserved"] = (
        submitted == completed + out["shed"] + out["cancelled"]
        + out["failed"] + out["lost"] + active)
    return out


def _timeline(cells: List[dict]) -> List[Tuple[float, float]]:
    """All pods' (time, bytes) completion events, time-sorted."""
    events: List[Tuple[float, float]] = []
    for c in cells:
        events.extend((float(t), float(b)) for t, b in c["goodput_timeline"])
    events.sort()
    return events


def _window_goodput(events: List[Tuple[float, float]], lo: float,
                    hi: float) -> float:
    """Completed bytes/s inside ``[lo, hi)``."""
    width = hi - lo
    if width <= 0.0:
        return 0.0
    return sum(b for t, b in events if lo <= t < hi) / width


def availability_leg(*, seed: int, cal: Optional[Calibration], hosts: int,
                     fault_rate: float, journal: bool,
                     hosts_per_pod: int = 8, rate_per_host: float = 3.0,
                     size_mean_mib: float = 1024.0, wan_tenants: int = 2,
                     serve_s: float = 4.0, horizon_s: float = 6.0,
                     crash_at: float = 2.0, restart_s: float = 0.5,
                     fixed_rounds: int = 2) -> Dict[str, Any]:
    """One availability curve point: ToR cuts + a broker crash."""
    from repro.core.experiments.fleet_legs import _spec
    from repro.service.fabric import run_fabric

    spec = _spec(hosts, hosts_per_pod,
                 rate_per_host=rate_per_host, size_mean_mib=size_mean_mib,
                 wan_tenants=wan_tenants, serve_s=serve_s,
                 horizon_s=horizon_s, journal=journal)
    plan = fault_plan_for(
        n_pods=spec.n_pods, fault_rate=fault_rate, serve_s=serve_s,
        crash_at=crash_at, restart_s=restart_s)
    with _ambient_faults(plan):
        result = run_fabric(spec, seed=seed, cal=cal,
                            fixed_rounds=fixed_rounds)
    out = _merge_cells(result["cells"], serve_s)
    out.update(hosts=hosts, fault_rate=fault_rate, journal=journal,
               plan=plan, converged=result["exchange"]["converged"])
    return out


def mttr_leg(*, seed: int, cal: Optional[Calibration], hosts: int,
             journal: bool, hosts_per_pod: int = 8,
             rate_per_host: float = 3.0, size_mean_mib: float = 1024.0,
             serve_s: float = 6.0, horizon_s: float = 9.0,
             crash_at: float = 3.0, restart_s: float = 0.5,
             fixed_rounds: int = 2) -> Dict[str, Any]:
    """The MTTR story: goodput timeline around one broker crash.

    No ToR cuts here — the only fault is the crash, so the timeline
    isolates restart recovery: how fast a journaled broker returns to
    pre-crash goodput versus the amnesiac baseline that must refill
    its pipeline from scratch.
    """
    from repro.core.experiments.fleet_legs import _spec
    from repro.service.fabric import run_fabric

    spec = _spec(hosts, hosts_per_pod,
                 rate_per_host=rate_per_host, size_mean_mib=size_mean_mib,
                 serve_s=serve_s, horizon_s=horizon_s, journal=journal)
    plan = f"crash@transfer:*,at={crash_at},duration={restart_s}"
    with _ambient_faults(plan):
        result = run_fabric(spec, seed=seed, cal=cal,
                            fixed_rounds=fixed_rounds)
    cells = result["cells"]
    out = _merge_cells(cells, serve_s)
    events = _timeline(cells)
    restart_at = crash_at + restart_s
    pre = _window_goodput(events, crash_at - _GOODPUT_WINDOW, crash_at)
    # Recovery: slide a goodput window from the restart forward (while
    # arrivals still flow) — the best window is the recovered level, and
    # MTTR is the time from crash until a window first clears 95% of the
    # pre-crash goodput.  A single fixed window would alias the Poisson
    # arrival noise into the gate.
    post = 0.0
    mttr_s = float("inf")
    t = restart_at
    while t + _GOODPUT_WINDOW <= serve_s + _GOODPUT_WINDOW:
        g = _window_goodput(events, t, t + _GOODPUT_WINDOW)
        post = max(post, g)
        if mttr_s == float("inf") and pre > 0 and g >= 0.95 * pre:
            mttr_s = t - crash_at
        t += _BUCKET_S / 2.0
    n_buckets = int(round(horizon_s / _BUCKET_S))
    curve = [
        round(_window_goodput(events, k * _BUCKET_S, (k + 1) * _BUCKET_S), 3)
        for k in range(n_buckets)
    ]
    out.update(
        hosts=hosts, journal=journal, plan=plan,
        crash_at=crash_at, restart_at=restart_at,
        pre_crash_goodput_Bps=pre,
        post_restart_goodput_Bps=post,
        recovery_ratio=post / pre if pre > 0 else 0.0,
        mttr_s=mttr_s,
        mttr_curve_Bps=curve,
    )
    return out


def domain_determinism_leg(*, seed: int, cal: Optional[Calibration],
                           n_pods: int = 4, hosts_per_pod: int = 2,
                           horizon_s: float = 4.0) -> Dict[str, Any]:
    """Correlated-domain faults at two shard counts must agree exactly."""
    from repro.service.fabric import FabricSpec, run_fabric

    # Deliberately overloaded (offered demand > rail rate): the cuts at
    # 1.0-2.0 s must always catch running jobs, whatever the seed, or
    # `rescheduled` would be 0 and the anchor would prove nothing.
    spec = FabricSpec(
        n_pods=n_pods, hosts_per_pod=hosts_per_pod, n_wan_links=1,
        wan_gbps=20.0, elephants_per_pod=1, elephant_gbps=4.0,
        rate_per_host=6.0, size_mean_mib=1024.0, wan_tenants=1,
        serve_s=horizon_s - 1.0, horizon_s=horizon_s)
    plan = ("link-down@power:0,at=1.0,duration=1.0,stagger=0.1;"
            f"link-down@tor:{n_pods - 1},at=1.5,duration=0.5,stagger=0.05")
    with _ambient_faults(plan):
        few = run_fabric(spec, seed=seed, cal=cal, n_shards=1,
                         fixed_rounds=2)
        many = run_fabric(spec, seed=seed, cal=cal, n_shards=n_pods,
                          fixed_rounds=2)
    mismatches = 0
    for a, b in zip(few["cells"], many["cells"]):
        for key in ("submitted", "completed", "rescheduled",
                    "bytes_completed"):
            if a[key] != b[key]:
                mismatches += 1
    return {
        "plan": plan,
        "cells": n_pods,
        "mismatches": mismatches,
        "completed": sum(c["completed"] for c in few["cells"]),
        "rescheduled": sum(c["rescheduled"] for c in few["cells"]),
        "identical": mismatches == 0,
    }
