"""Ablation A6: iperf's cache effect (§2.3).

"With the default setting, iperf uses only a small chunk of memory, and
reuses the same data [...] the data is always cached within CPU [...]
the result of iperf's performance matches that of RDMA-based data
transfer [...] To eliminate this cache effect, we purposely enlarged the
sender's buffer to exceed the size of the CPU cache."

With a cache-resident buffer the sender's memory *read* disappears, so
iperf looks better than any real transfer application would.
"""

from __future__ import annotations

from repro.apps.iperf import run_iperf
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import frontend_lan_host
from repro.net.topology import wire_frontend_lan
from repro.sim.context import Context

__all__ = ["run"]


def _measure(cached: bool, seed: int, cal: Calibration | None,
             duration: float) -> float:
    ctx = Context.create(seed=seed, cal=cal)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    res = run_iperf(ctx, a, b, duration=duration, numa_tuned=True,
                    cached_buffer=cached)
    return res.aggregate_gbps


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 15.0 if quick else 300.0
    report = ExperimentReport(
        "ablation-cache",
        "A6: iperf default (cache-resident) vs enlarged (memory-bound) "
        "buffers",
        data_headers=["buffer", "aggregate Gbps"],
    )
    cached = _measure(True, seed, cal, duration)
    uncached = _measure(False, seed + 1, cal, duration)
    report.add_row(["small (LLC-resident, iperf default)", round(cached, 1)])
    report.add_row(["large (exceeds cache, paper's method)", round(uncached, 1)])
    report.add_check("cached buffers inflate iperf", "higher",
                     f"{cached / uncached:.2f}x",
                     ok=cached > uncached * 1.03)
    report.add_check("uncached matches the paper's tuned 91.8 Gbps", 91.8,
                     round(uncached, 1), ok=abs(uncached - 91.8) / 91.8 < 0.1)
    return report
