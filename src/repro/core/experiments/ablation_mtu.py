"""Ablation A7 (extension): jumbo frames matter more for TCP than RDMA.

Table 1 shows the testbed ran MTU 9000 on the RoCE links.  This ablation
quantifies why: at MTU 1500 the wire loses a few percent of framing
efficiency for *everyone*, but TCP additionally pays ~6x the per-packet
kernel work — so iperf collapses while RFTP merely dips.
"""

from __future__ import annotations

from repro.apps.iperf import run_iperf
from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, gang_calgrid, run_tasks
from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.net.link import connect
from repro.net.topology import LAN_ROCE_DELAY
from repro.sim.context import Context
from repro.util.units import to_gbps

__all__ = ["run", "plan", "assemble", "rftp_leg", "iperf_leg"]


def _pair(ctx: Context, mtu: int):
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR, mtu=mtu)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR, mtu=mtu)
    connect(na, nb, delay=LAN_ROCE_DELAY)
    return a, b


def rftp_leg(*, seed: int, cal: Calibration | None, mtu: int,
             duration: float) -> float:
    """RFTP goodput over one RoCE link at *mtu* (SimTask target)."""
    ctx = Context.create(seed=seed, cal=cal)
    a, b = _pair(ctx, mtu)
    res = RftpTransfer(ctx, a, b, source="zero", sink="null",
                       config=RftpConfig(streams_per_link=2)).run(duration)
    return res.goodput


def iperf_leg(*, seed: int, cal: Calibration | None, mtu: int,
              duration: float) -> tuple[float, float]:
    """iperf ``(aggregate_rate, aggregate_gbps)`` at *mtu* (SimTask target)."""
    ctx = Context.create(seed=seed, cal=cal)
    a, b = _pair(ctx, mtu)
    ires = run_iperf(ctx, a, b, duration=duration, streams_per_link=4,
                     bidirectional=False, numa_tuned=True)
    return ires.aggregate_rate, ires.aggregate_gbps


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> list[SimTask]:
    """Both tools at both MTUs: four independent, gang-eligible legs."""
    duration = 15.0 if quick else 120.0
    module = "repro.core.experiments.ablation_mtu"
    tasks = []
    for mtu in (1500, 9000):
        tasks.append(gang_calgrid(SimTask(
            f"{module}:rftp_leg", {"mtu": mtu, "duration": duration},
            seed=seed, cal=cal, label=f"A7 RFTP mtu={mtu}")))
        tasks.append(gang_calgrid(SimTask(
            f"{module}:iperf_leg", {"mtu": mtu, "duration": duration},
            seed=seed + 1, cal=cal, label=f"A7 iperf mtu={mtu}")))
    return tasks


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the four legs' rates."""
    report = ExperimentReport(
        "ablation-mtu",
        "A7 (extension): MTU 1500 vs 9000 on one 40G RoCE link, "
        "RFTP vs iperf",
        data_headers=["tool", "MTU", "Gbps"],
    )
    rates = {}
    it = iter(results)
    for mtu in (1500, 9000):
        goodput = next(it)
        rates[("rftp", mtu)] = goodput
        report.add_row(["RFTP", mtu, round(to_gbps(goodput), 1)])
        aggregate_rate, aggregate_gbps = next(it)
        rates[("tcp", mtu)] = aggregate_rate
        report.add_row(["iperf/TCP", mtu, round(aggregate_gbps, 1)])

    rftp_penalty = 1.0 - rates[("rftp", 1500)] / rates[("rftp", 9000)]
    tcp_penalty = 1.0 - rates[("tcp", 1500)] / rates[("tcp", 9000)]
    report.add_check("RFTP penalty at MTU 1500", "framing only (~5%)",
                     f"{rftp_penalty:.1%}", ok=rftp_penalty < 0.10)
    report.add_check("TCP penalty at MTU 1500", "large (per-packet work)",
                     f"{tcp_penalty:.1%}", ok=tcp_penalty > 0.25)
    report.add_check("TCP suffers more than RFTP", "yes",
                     "yes" if tcp_penalty > rftp_penalty else "no",
                     ok=tcp_penalty > rftp_penalty)
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
