"""Ablation A11 (extension): I/O latency vs offered load at the target.

Throughput figures hide the latency cost of driving a target hard.
Using the event-level command loop (bounded worker pool), this ablation
sweeps the number of concurrent synchronous requesters and records the
classic open-queueing curve: completion latency is flat while workers
are free, then grows linearly once the pool saturates — the mechanism
behind the paper's "too many I/O threads would introduce more
contention" (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import backend_lan_host, frontend_lan_host
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage.daemon import QueuedCommand, TargetDaemon
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import MIB

__all__ = ["run"]

CONCURRENCY = (1, 4, 8, 16, 32)
N_WORKERS = 8
BLOCK = 1 * MIB
ROUNDS = 6


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    report = ExperimentReport(
        "ablation-latency-load",
        "A11 (extension): I/O completion latency vs concurrency "
        f"({N_WORKERS}-worker target pool)",
        data_headers=["concurrent requesters", "mean latency (us)",
                      "mean queue wait (us)", "IOPS"],
    )
    latency = {}
    waits_by_conc = {}
    iops_by_conc = {}
    for conc in CONCURRENCY:
        ctx = Context.create(seed=seed, cal=cal)
        front = frontend_lan_host(ctx, "front", with_ib=True)
        back = backend_lan_host(ctx, "back")
        wire_san(ctx, front, back)
        target = IserTarget(ctx, back, tuning="numa", n_links=2)
        target.create_lun(512 * MIB, store_data=False)
        initiator = IserInitiator(ctx, front, target)
        ctx.sim.run(until=initiator.login_all())
        session = initiator.sessions[0]
        daemon = TargetDaemon(ctx, target, session.qp_t, n_workers=N_WORKERS)
        lun = target.luns[0]
        mr = session.pd.register(place_region(BLOCK, NumaPolicy.bind(0), 2))

        def requester(k):
            for r in range(ROUNDS):
                cmd = QueuedCommand(lun=lun, is_write=False,
                                    offset=((k * ROUNDS + r) * BLOCK)
                                    % (lun.capacity_bytes - BLOCK),
                                    length=BLOCK, initiator_mr=mr)
                yield daemon.submit(cmd)

        t0 = ctx.sim.now
        procs = [ctx.sim.process(requester(k)) for k in range(conc)]
        for p in procs:
            ctx.sim.run(until=p)
        elapsed = ctx.sim.now - t0
        lats = [c.queue_wait + c.service_time for c in daemon.completed]
        waits = [c.queue_wait for c in daemon.completed]
        latency[conc] = float(np.mean(lats))
        waits_by_conc[conc] = float(np.mean(waits))
        iops_by_conc[conc] = len(daemon.completed) / elapsed
        report.add_row([
            conc,
            round(np.mean(lats) * 1e6),
            round(np.mean(waits) * 1e6),
            round(len(daemon.completed) / elapsed),
        ])

    saturated = latency[32] / latency[8]
    report.add_check("no queueing below the pool size", "0 us wait at 1-8",
                     f"{max(waits_by_conc[c] for c in (1, 4, 8)) * 1e6:.0f} us",
                     ok=max(waits_by_conc[c] for c in (1, 4, 8)) < 1e-5)
    report.add_check("queue wait dominates past the pool size",
                     ">50% of latency at 32",
                     f"{waits_by_conc[32] / latency[32]:.0%}",
                     ok=waits_by_conc[32] > 0.5 * latency[32])
    report.add_check("latency grows past the pool size", ">2x (8 -> 32)",
                     f"{saturated:.2f}x", ok=saturated > 2.0)
    report.add_check("IOPS saturates at the pool limit", "flat 8 -> 32",
                     f"{iops_by_conc[32] / iops_by_conc[8]:.2f}x",
                     ok=0.95 < iops_by_conc[32] / iops_by_conc[8] < 1.05)
    report.notes.append(
        "Latency below the pool size still grows with concurrency — that "
        "is bandwidth sharing on the IB link/PCIe (service time), not "
        "queueing; the queue-wait column separates the two effects."
    )
    return report
