"""E6: capacity planning for a NUMA-aware transfer service.

The paper tunes a *single* transfer's placement; a production broker
must do it per job, continuously, under multi-tenant load.  This
extension runs the :mod:`repro.service` broker — Poisson arrivals,
heavy-tailed file sizes, per-tenant quotas, bounded queueing — over
growing rail fleets and reports the capacity-planning curve operators
actually ask for: sustained jobs/s and p95/p99 job latency versus fleet
size, ``numa-aware`` placement versus the ``numa-blind`` baseline.

The comparison is placement-pure: both policies at one fleet size share
one seed and therefore one byte-identical job stream (arrival times,
tenants, sizes, first-touch nodes); only where the buffer lands
differs.  ``numa-blind`` pays the remote-access stream derate plus
QPI/membank contention on roughly half its jobs, which shows up
directly in the latency tail — the fleet-level restatement of the
paper's single-stream NUMA penalty.

A chaos leg runs the broker under a mid-run rail failure (fault-plan
hook): jobs on the dead rail are stopped, their remaining bytes
requeued, and rescheduled onto surviving rails, so the service degrades
instead of stalling.

Environment overrides (both hashed into the result-cache identity as
ordinary leg parameters):

* ``REPRO_SERVICE_POLICY``  — baseline policy for the comparison
  (default ``numa-blind``; ``fifo`` compares against the naive
  round-robin instead).
* ``REPRO_SERVICE_ARRIVAL`` — offered load in jobs/s per host
  (default 55).
"""

from __future__ import annotations

import os

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble", "baseline_policy", "arrival_rate"]

_LEGS = "repro.core.experiments.service_legs"

#: Default offered load per host, jobs/second (~50% rail utilization at
#: the 128 MiB quick-mode mean size).
DEFAULT_RATE = 55.0


def baseline_policy() -> str:
    """The comparison baseline (``REPRO_SERVICE_POLICY``, else numa-blind)."""
    from repro.service import POLICIES

    policy = os.environ.get("REPRO_SERVICE_POLICY", "").strip() or "numa-blind"
    if policy not in POLICIES:
        raise ValueError(
            f"REPRO_SERVICE_POLICY must be one of {POLICIES}, got {policy!r}")
    return policy


def arrival_rate() -> float:
    """Offered jobs/s per host (``REPRO_SERVICE_ARRIVAL``, else default)."""
    text = os.environ.get("REPRO_SERVICE_ARRIVAL", "").strip()
    if not text:
        return DEFAULT_RATE
    try:
        rate = float(text)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVICE_ARRIVAL must be a number, got {text!r}") from None
    if rate <= 0:
        raise ValueError(
            f"REPRO_SERVICE_ARRIVAL must be > 0, got {rate}")
    return rate


def _shape(quick: bool):
    fleets = (1, 2) if quick else (1, 2, 4)
    duration = 12.0 if quick else 45.0
    size_mean_mib = 128.0
    return fleets, duration, size_mean_mib


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as independent tasks.

    Per fleet size, one ``numa-aware`` leg and one baseline leg at the
    **same seed** (identical job streams; the comparison is pure
    placement), plus a round-robin ``fifo`` curve point at the largest
    fleet and one chaos leg (mid-run rail failure) at the smallest.
    """
    fleets, duration, size_mean_mib = _shape(quick)
    baseline = baseline_policy()
    rate = arrival_rate()
    common = {"rate_per_host": rate, "duration": duration,
              "size_mean_mib": size_mean_mib}
    tasks: list[SimTask] = []
    for i, hosts in enumerate(fleets):
        for policy in ("numa-aware", baseline):
            tasks.append(SimTask(
                f"{_LEGS}:service_leg",
                {"hosts": hosts, "policy": policy, **common},
                seed=seed + i, cal=cal,
                label=f"service/{policy}-x{hosts}"))
    tasks.append(SimTask(
        f"{_LEGS}:service_leg",
        {"hosts": fleets[-1], "policy": "fifo", **common},
        seed=seed + len(fleets) - 1, cal=cal,
        label=f"service/fifo-x{fleets[-1]}"))
    # Chaos: one of three rails dies mid-serve and stays dead; the
    # broker must reschedule its jobs onto the survivors.  The leg runs
    # overloaded (2 GiB mean files above rail capacity) so the
    # admission budget keeps every rail occupied with a standing queue
    # by the fault time — the dying rail is never idle.
    tasks.append(SimTask(
        f"{_LEGS}:service_leg",
        {"hosts": fleets[0], "policy": "numa-aware",
         "faults": f"link-down@link:0,at={2.0 * duration / 3.0}",
         **{**common, "size_mean_mib": 2048.0, "rate_per_host": 12.0}},
        seed=seed + 17, cal=cal,
        label=f"service/chaos-x{fleets[0]}"))
    return tasks


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Fold the legs into the capacity-planning report."""
    fleets, duration, _ = _shape(quick)
    baseline = baseline_policy()
    rate = arrival_rate()
    pairs = results[:2 * len(fleets)]
    fifo = results[2 * len(fleets)]
    chaos = results[2 * len(fleets) + 1]
    aware = {leg["hosts"]: leg for leg in pairs[0::2]}
    blind = {leg["hosts"]: leg for leg in pairs[1::2]}

    report = ExperimentReport(
        "ext-service",
        "E6: transfer-service capacity curves — sustained jobs/s and job "
        f"latency vs fleet size, numa-aware vs {baseline} "
        f"({rate:g} jobs/s/host offered)",
        data_headers=["fleet", "policy", "offered /s", "sustained /s",
                      "p50 ms", "p95 ms", "p99 ms", "remote %", "shed"],
    )

    def _row(leg):
        remote = (leg["remote_placements"] / leg["submitted"]
                  if leg["submitted"] else 0.0)
        report.add_row([
            f"{leg['hosts']} host{'s' if leg['hosts'] > 1 else ''}",
            leg["policy"],
            round(leg["offered_rate"], 1),
            round(leg["jobs_per_s"], 1),
            round(leg["p50_ms"], 1),
            round(leg["p95_ms"], 1),
            round(leg["p99_ms"], 1),
            f"{remote:.0%}",
            leg["shed"],
        ])

    for hosts in fleets:
        _row(aware[hosts])
        _row(blind[hosts])
    _row(fifo)

    # -- SLO invariant: the CI service-smoke gate -------------------------
    ref = fleets[-1]
    a, b = aware[ref], blind[ref]
    report.add_check(
        f"numa-aware p99 <= {baseline} p99 at equal offered load",
        f"aware <= {b['p99_ms']:.1f} ms",
        f"{a['p99_ms']:.1f} ms",
        ok=a["p99_ms"] <= b["p99_ms"])
    report.add_check(
        f"numa-aware p95 <= {baseline} p95 at equal offered load",
        f"aware <= {b['p95_ms']:.1f} ms",
        f"{a['p95_ms']:.1f} ms",
        ok=a["p95_ms"] <= b["p95_ms"])
    report.add_check(
        "identical job streams across policies (same seed)",
        f"{b['submitted']} submissions",
        a["submitted"],
        ok=a["submitted"] == b["submitted"]
        and a["offered_rate"] == b["offered_rate"])
    report.add_check(
        "numa-aware placement is local", "0 remote DMA reads",
        aware[ref]["remote_placements"],
        ok=all(leg["remote_placements"] == 0 for leg in aware.values()))
    report.add_check(
        f"{baseline} pays remote placements", "> 0 remote DMA reads",
        blind[ref]["remote_placements"],
        ok=blind[ref]["remote_placements"] > 0)

    # -- capacity scaling --------------------------------------------------
    lo, hi = fleets[0], fleets[-1]
    scale = hi / lo
    ratio = (aware[hi]["jobs_per_s"] / aware[lo]["jobs_per_s"]
             if aware[lo]["jobs_per_s"] else 0.0)
    report.add_check(
        f"sustained jobs/s scales with fleet ({lo} -> {hi} hosts)",
        f">= {0.85 * scale:.2f}x", f"{ratio:.2f}x",
        ok=ratio >= 0.85 * scale)
    report.add_check(
        "no load shedding at reference load", "0 shed",
        sum(leg["shed"] for leg in (*aware.values(), *blind.values())),
        ok=all(leg["shed"] == 0 for leg in (*aware.values(), *blind.values())))
    report.add_check(
        "job accounting conserves (all legs)",
        "submitted == completed + shed + cancelled + active",
        all(leg["conserved"] for leg in results),
        ok=all(leg["conserved"] for leg in results))

    # -- chaos: broker reschedules around the dead rail -------------------
    report.add_check(
        "chaos: rail failure injected", ">= 1 fault",
        chaos["faults_injected"], ok=chaos["faults_injected"] >= 1)
    report.add_check(
        "chaos: jobs rescheduled off the dead rail", ">= 1 job",
        chaos["rescheduled"], ok=chaos["rescheduled"] >= 1)
    report.add_check(
        "chaos: service kept completing on surviving rails",
        f">= 60% of {chaos['submitted']} submitted",
        chaos["completed"],
        ok=chaos["completed"] >= 0.6 * chaos["submitted"] > 0)

    gap = b["p99_ms"] - a["p99_ms"]
    report.notes.append(
        f"At {ref} hosts the {baseline} p99 is {gap:.1f} ms above "
        "numa-aware on the identical job stream: remote placements run "
        "their DMA reads across QPI at the remote-access stream derate, "
        "and under load those crossings contend for the interconnect and "
        "remote membank — the paper's single-transfer placement penalty, "
        "surfacing as a fleet latency-tail tax.")
    report.notes.append(
        "Chaos leg (overloaded broker, rail 0 dead from "
        f"t={2.0 * duration / 3.0:g} s): {chaos['rescheduled']} job(s) "
        "rescheduled with their remaining bytes onto surviving rails; "
        f"{chaos['completed']}/{chaos['submitted']} jobs still completed.")
    report.notes.append(
        "Per-tenant accounting and live-session inspection ride along "
        "(service.sessions(); quotas bound concurrent jobs per tenant, "
        "the aggregate bandwidth budget bounds fabric oversubscription).")
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the capacity-planning report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
