"""Ablation A2: threads-per-LUN sweep (§4.2).

"The gain in performance levels off once the number of threads reaches a
certain threshold.  Beyond that, too many I/O threads would introduce
more contention [...] the optimal configuration is to use four threads
for each LUN."
"""

from __future__ import annotations

from typing import Dict

from repro.apps.fio import FioJob, run_fio
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import backend_lan_host, frontend_lan_host
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, KIB, to_gbps

__all__ = ["run"]

THREAD_COUNTS = (1, 2, 4, 8, 16)


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    runtime = 10.0 if quick else 120.0
    report = ExperimentReport(
        "ablation-threads",
        "A2: fio threads per LUN (the paper's optimum is 4)",
        data_headers=["threads/LUN", "Gbps", "target CPU %"],
    )
    rates: Dict[int, float] = {}
    for numjobs in THREAD_COUNTS:
        ctx = Context.create(seed=seed, cal=cal)
        front = frontend_lan_host(ctx, "front", with_ib=True)
        back = backend_lan_host(ctx, "back")
        wire_san(ctx, front, back)
        target = IserTarget(ctx, back, tuning="numa", n_links=2)
        for _ in range(6):
            target.create_lun(GB)
        initiator = IserInitiator(ctx, front, target)
        ctx.sim.run(until=initiator.login_all())
        devices = [initiator.devices[i] for i in sorted(initiator.devices)]
        job = FioJob(rw="write", block_size=256 * KIB, numjobs=numjobs,
                     runtime=runtime)
        res = run_fio(ctx, front, devices, job)
        rates[numjobs] = res.bandwidth
        cpu = 100.0 * target.accounting().total_seconds / runtime
        report.add_row([numjobs, round(to_gbps(res.bandwidth), 1), round(cpu)])

    gain_1_to_4 = rates[4] / rates[1]
    tail = rates[16] / rates[4]
    report.add_check("scaling 1 -> 4 threads", "large gain",
                     f"{gain_1_to_4:.2f}x", ok=gain_1_to_4 > 1.5)
    report.add_check("4 threads near-saturates (8 adds little)", "yes",
                     f"8/4 = {rates[8] / rates[4]:.3f}x",
                     ok=rates[8] / rates[4] < 1.10)
    report.add_check("16 threads levels off / degrades", "yes",
                     f"16/4 = {tail:.3f}x", ok=tail < 1.05)
    return report
