"""Experiment modules: one per table/figure of the paper, plus ablations.

Every module exposes ``run(quick=True, seed=0) -> ExperimentReport``.
``quick`` trims simulated durations for CI; the benchmark harness runs
the same code (pytest-benchmark wraps ``run``) and prints the reports
that populate EXPERIMENTS.md.

==================  ==============================================
module              reproduces
==================  ==============================================
exp_motivating      §2.3 iperf + STREAM motivating experiment
exp_table1          Table 1 testbed configuration
exp_fig03_delay     Fig. 3 per-block delay breakdown (quantified)
exp_fig04_cost      Fig. 4 CPU cost breakdown at 40 Gbps
exp_fig05_connect.  Figs. 5/6 testbed connectivity (structural)
exp_fig07_iser_bw   Fig. 7 iSER bandwidth (tuning x rw x bs)
exp_fig08_iser_cpu  Fig. 8 iSER CPU utilization
exp_fig09_e2e       Fig. 9 end-to-end RFTP vs GridFTP
exp_fig10_e2e_cpu   Fig. 10 end-to-end CPU breakdown
exp_fig11_bidir     Fig. 11 bi-directional throughput
exp_fig12_bidir_cpu Fig. 12 bi-directional CPU breakdown
exp_fig13_wan_bw    Fig. 13 WAN bandwidth (bs x streams)
exp_fig14_wan_cpu   Fig. 14 WAN CPU (sender/receiver)
ablation_*          design-choice studies A1-A11 (§4.1-4.3 asides,
                    MTU, credits, TCP-on-WAN, GridFTP movers,
                    latency-vs-load)
ext_*               claims the paper could not test: E1 storage-to-
                    storage over the WAN, E2 calibration sensitivity,
                    E3 file-size-mix penalty, E4 the 100 GbE upgrade
                    path, E5 goodput under faults (RFTP recovery vs
                    GridFTP stall), E6 transfer-service capacity
                    curves (NUMA-aware broker vs blind baseline),
                    E7 fleet-scale fabric sweeps (topology-sharded
                    runtime, pooled-QP vs per-job cliffs),
                    E8 fleet availability under failure domains
                    (journaled vs amnesiac broker restart, MTTR)
==================  ==============================================
"""

from repro.core.experiments import (  # noqa: F401 (re-exported for discovery)
    ablation_cache,
    ablation_credits,
    ablation_fs,
    ablation_gridftp_procs,
    ablation_latency_load,
    ablation_luns,
    ablation_mtu,
    ablation_rdma_ops,
    ablation_ssd,
    ablation_tcp_wan,
    ablation_threads,
    ablation_tuning_value,
    exp_fig03_delay,
    exp_fig04_cost,
    exp_fig05_connectivity,
    exp_fig07_iser_bw,
    exp_fig08_iser_cpu,
    exp_fig09_e2e,
    exp_fig10_e2e_cpu,
    exp_fig11_bidir,
    exp_fig12_bidir_cpu,
    exp_fig13_wan_bw,
    exp_fig14_wan_cpu,
    exp_motivating,
    exp_table1,
    ext_100g,
    ext_availability,
    ext_filesize_mix,
    ext_fleet,
    ext_recovery,
    ext_sensitivity,
    ext_service,
    ext_wan_e2e,
)

ALL_EXTENSIONS = {
    "wan-e2e": ext_wan_e2e,
    "sensitivity": ext_sensitivity,
    "filesize-mix": ext_filesize_mix,
    "100g": ext_100g,
    "recovery": ext_recovery,
    "service": ext_service,
    "fleet": ext_fleet,
    "availability": ext_availability,
}

ALL_ABLATIONS = {
    "ssd": ablation_ssd,
    "threads": ablation_threads,
    "fs": ablation_fs,
    "rdma-ops": ablation_rdma_ops,
    "luns": ablation_luns,
    "cache": ablation_cache,
    "mtu": ablation_mtu,
    "credits": ablation_credits,
    "tcp-wan": ablation_tcp_wan,
    "gridftp-procs": ablation_gridftp_procs,
    "latency-load": ablation_latency_load,
    "tuning-value": ablation_tuning_value,
}

ALL_FIGURES = {
    "motivating": exp_motivating,
    "table1": exp_table1,
    "fig03": exp_fig03_delay,
    "fig04": exp_fig04_cost,
    "fig05": exp_fig05_connectivity,
    "fig07": exp_fig07_iser_bw,
    "fig08": exp_fig08_iser_cpu,
    "fig09": exp_fig09_e2e,
    "fig10": exp_fig10_e2e_cpu,
    "fig11": exp_fig11_bidir,
    "fig12": exp_fig12_bidir_cpu,
    "fig13": exp_fig13_wan_bw,
    "fig14": exp_fig14_wan_cpu,
}
