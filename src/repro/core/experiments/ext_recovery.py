"""E5: goodput under faults — RFTP multi-rail recovery vs GridFTP stall.

The paper's WAN claims assume a fabric that misbehaves (link flaps,
dead ports) but its evaluation never kills a NIC mid-transfer.  This
extension does, on a credit-bound three-rail metro testbed
(:mod:`repro.core.experiments.fault_legs`):

* **Permanent NIC failure** — RFTP detects the dead rail within the
  block-ack timeout, retransmits the lost credit windows, reclaims the
  dead streams' credits for the surviving rails (multi-rail failover),
  and recovers >= 90% of pre-fault goodput within a bounded window.
  GridFTP's movers on the dead link block forever: aggregate goodput
  drops by roughly the dead link's share and never comes back.
* **Transient flap** — RFTP additionally re-establishes the QPs through
  the connection manager (capped exponential backoff) once the link
  returns, restoring full rail redundancy; the reconnect counter and
  recovery time land in the report.

Scheduled through :class:`~repro.exec.task.SimTask` legs; the fault
plan is a leg parameter, so cached results never mix fault
configurations.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble"]

_LEGS = "repro.core.experiments.fault_legs"


def _shape(quick: bool):
    duration = 30.0 if quick else 120.0
    fault_at = 10.0 if quick else 40.0
    flap = 3.0 if quick else 10.0
    interval = 0.5 if quick else 1.0
    return duration, fault_at, flap, interval


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as independent tasks (three fault scenarios)."""
    duration, fault_at, flap, interval = _shape(quick)
    nic_down = f"nic-down@link:1,at={fault_at}"
    flap_spec = f"link-down@link:1,at={fault_at},duration={flap}"
    common = {"duration": duration, "fault_at": fault_at,
              "sample_interval": interval}
    return [
        SimTask(f"{_LEGS}:recovery_leg",
                {"tool": "rftp", "faults": nic_down, **common},
                seed=seed, cal=cal, label="recovery/rftp-nic-down"),
        SimTask(f"{_LEGS}:recovery_leg",
                {"tool": "gridftp", "faults": nic_down, **common},
                seed=seed + 1, cal=cal, label="recovery/gridftp-nic-down"),
        SimTask(f"{_LEGS}:recovery_leg",
                {"tool": "rftp", "faults": flap_spec, **common},
                seed=seed + 2, cal=cal, label="recovery/rftp-flap"),
    ]


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Fold the three scenarios into the recovery report."""
    rftp, gridftp, flap = results
    duration, fault_at, flap_s, _ = _shape(quick)
    report = ExperimentReport(
        "ext-recovery",
        "E5: goodput under faults — RFTP recovery/failover vs GridFTP "
        "(1 of 3 NICs dies mid-transfer)",
        data_headers=["scenario", "pre Gbps", "post Gbps", "post/pre",
                      "recover s", "retx MB", "reconnects"],
    )

    for label, leg in (("RFTP, NIC down (permanent)", rftp),
                       ("GridFTP, NIC down (permanent)", gridftp),
                       (f"RFTP, {flap_s:.0f} s flap", flap)):
        report.add_row([
            label,
            round(leg["pre_gbps"], 1),
            round(leg["post_gbps"], 1),
            f"{leg['post_over_pre']:.0%}",
            ("—" if leg["recovery_s"] == float("inf")
             else round(leg["recovery_s"], 1)),
            round(leg["retransmitted_bytes"] / 1e6, 1),
            leg["reconnects"],
        ])

    report.add_check(
        "RFTP goodput recovered after NIC loss", ">= 90% of pre-fault",
        f"{rftp['post_over_pre']:.0%}", ok=rftp["post_over_pre"] >= 0.90)
    report.add_check(
        "RFTP failover window", "bounded (< 5 s)",
        f"{rftp['recovery_s']:.1f} s", ok=rftp["recovery_s"] < 5.0)
    report.add_check(
        "RFTP retransmitted the lost credit windows", "> 0 bytes",
        f"{rftp['retransmitted_bytes'] / 1e6:.1f} MB",
        ok=rftp["retransmitted_bytes"] > 0 and rftp["streams_failed"] > 0)
    report.add_check(
        "GridFTP stalls (no credit reclamation)", "~2/3 of pre-fault",
        f"{gridftp['post_over_pre']:.0%}",
        ok=0.55 < gridftp["post_over_pre"] < 0.80)
    ratio = (rftp["post_gbps"] / gridftp["post_gbps"]
             if gridftp["post_gbps"] else float("inf"))
    report.add_check(
        "RFTP vs GridFTP goodput under fault", ">= 1.2x", f"{ratio:.1f}x",
        ok=ratio >= 1.2)
    report.add_check(
        "flap: CM reconnect restores rail redundancy", ">= 1 reconnect",
        flap["reconnects"], ok=flap["reconnects"] >= 1)
    report.add_check(
        "flap: reconnect latency", "outage + capped backoff",
        f"{flap['recovery_seconds']:.1f} s",
        ok=0.0 < flap["recovery_seconds"] < flap_s + 2.0)

    report.notes.append(
        "RFTP under permanent NIC loss (Gbps over the run): "
        + rftp["sparkline"])
    report.notes.append("GridFTP under the same fault: " + gridftp["sparkline"])
    report.notes.append(
        "Failover recovers goodput while the link is still dark (surviving "
        "rails absorb the dead rails' credit budget); the flap scenario then "
        "re-establishes the QPs once the link returns. GridFTP's movers "
        "block in the kernel and nothing reclaims their share.")
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
