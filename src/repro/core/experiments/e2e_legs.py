"""Process-pool-safe work units ("legs") for the end-to-end experiments.

Figures 9-12 each build one or more complete
:class:`~repro.core.system.EndToEndSystem` instances and run one
transfer on each — independent simulations that only meet again at
report-assembly time.  These module-level functions are those legs in
:class:`~repro.exec.task.SimTask` target form: importable by name from a
worker process, parameterised only by ``(seed, cal, **params)``, and
returning picklable :class:`~repro.core.metrics.RunResult` values.

Several figures share legs verbatim (Fig. 11's four quick-mode runs are
Fig. 12's four, Fig. 9's GridFTP run is Fig. 10's), so the runner's
identity dedup and the result cache both collapse them to a single
simulation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.calibration import Calibration
from repro.core.metrics import RunResult
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy

__all__ = ["transfer_leg", "rftp_with_ceiling_leg"]


def _testbed(seed: int, cal: Optional[Calibration], lun_size: int) -> EndToEndSystem:
    return EndToEndSystem.lan_testbed(
        TuningPolicy.numa_bound(), seed=seed, cal=cal, lun_size=lun_size
    )


def transfer_leg(*, seed: int, cal: Optional[Calibration], duration: float,
                 lun_size: int, tool: str, mode: str = "uni") -> RunResult:
    """One complete testbed running one transfer (Figs. 9-12)."""
    system = _testbed(seed, cal, lun_size)
    runners = {
        ("rftp", "uni"): system.run_rftp_transfer,
        ("rftp", "bidir"): system.run_rftp_bidirectional,
        ("gridftp", "uni"): system.run_gridftp_transfer,
        ("gridftp", "bidir"): system.run_gridftp_bidirectional,
    }
    try:
        run = runners[(tool, mode)]
    except KeyError:
        raise ValueError(f"unknown transfer leg {tool!r}/{mode!r}") from None
    return run(duration=duration)


def rftp_with_ceiling_leg(*, seed: int, cal: Optional[Calibration],
                          duration: float, lun_size: int,
                          ceiling_runtime: float) -> Dict[str, Any]:
    """Fig. 9's first leg: fio write-ceiling cross-check, then RFTP.

    Both run on the *same* testbed (the fio pass precedes the transfer in
    simulated time, exactly as the paper ran them), so they form one leg.
    """
    system = _testbed(seed, cal, lun_size)
    ceiling = system.fio_file_write_ceiling(runtime=ceiling_runtime)
    rftp = system.run_rftp_transfer(duration=duration)
    return {"ceiling": ceiling, "rftp": rftp}
