"""Fig. 11: bi-directional end-to-end throughput (50-minute runs).

Both directions run simultaneously over the same hosts, links and SANs.

Paper anchors: RFTP's aggregate improves **+83%** over unidirectional
(17% short of a perfect 2x, lost to contention at hosts and targets);
GridFTP improves only **+33%** (CPU contention).
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB

__all__ = ["run"]

PAPER_RFTP_GAIN = 1.83
PAPER_GRIDFTP_GAIN = 1.33


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 30.0 if quick else 3000.0  # paper: 50 minutes
    lun_size = 2 * GB if quick else 50 * GB
    report = ExperimentReport(
        "fig11",
        "Fig. 11 bi-directional end-to-end throughput",
        data_headers=["tool", "unidirectional Gbps", "bidirectional Gbps",
                      "gain"],
    )

    def fresh(offset):
        return EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=seed + offset, cal=cal,
            lun_size=lun_size,
        )

    rftp_uni = fresh(0).run_rftp_transfer(duration=duration)
    rftp_bi = fresh(1).run_rftp_bidirectional(duration=duration)
    grid_uni = fresh(2).run_gridftp_transfer(duration=duration)
    grid_bi = fresh(3).run_gridftp_bidirectional(duration=duration)

    rftp_gain = rftp_bi.goodput / rftp_uni.goodput
    grid_gain = grid_bi.goodput / grid_uni.goodput
    report.add_row(["RFTP", round(rftp_uni.goodput_gbps, 1),
                    round(rftp_bi.goodput_gbps, 1), f"{rftp_gain:.2f}x"])
    report.add_row(["GridFTP", round(grid_uni.goodput_gbps, 1),
                    round(grid_bi.goodput_gbps, 1), f"{grid_gain:.2f}x"])

    report.add_check("RFTP bidirectional gain", f"{PAPER_RFTP_GAIN:.2f}x",
                     f"{rftp_gain:.2f}x", ok=1.6 < rftp_gain <= 2.0)
    report.add_check("GridFTP bidirectional gain", f"{PAPER_GRIDFTP_GAIN:.2f}x",
                     f"{grid_gain:.2f}x", ok=1.1 < grid_gain < 1.7)
    report.add_check("RFTP gains more than GridFTP", "yes",
                     "yes" if rftp_gain > grid_gain else "no",
                     ok=rftp_gain > grid_gain)
    report.add_check("RFTP bidir short of 2x (contention)", "17% less",
                     f"{(2.0 - rftp_gain) / 2.0:.0%} less",
                     ok=rftp_gain < 2.0)
    return report
