"""Fig. 11: bi-directional end-to-end throughput (50-minute runs).

Both directions run simultaneously over the same hosts, links and SANs.

Paper anchors: RFTP's aggregate improves **+83%** over unidirectional
(17% short of a perfect 2x, lost to contention at hosts and targets);
GridFTP improves only **+33%** (CPU contention).

The four measured configurations (RFTP/GridFTP x uni/bidir) each build
a fresh testbed, so :func:`plan` exposes them as four independent
:class:`~repro.exec.task.SimTask` legs.  Fig. 12 reuses the identical
legs — the runner's dedup and the result cache run them once.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks
from repro.util.units import GB

__all__ = ["run", "plan", "assemble", "bidir_plan"]

PAPER_RFTP_GAIN = 1.83
PAPER_GRIDFTP_GAIN = 1.33

_LEGS = "repro.core.experiments.e2e_legs"


def bidir_plan(quick: bool, seed: int, cal: Calibration | None,
               figure: str) -> list[SimTask]:
    """The four uni/bidir legs shared by Figs. 11 and 12."""
    duration = 30.0 if quick else 3000.0  # paper: 50 minutes
    lun_size = 2 * GB if quick else 50 * GB
    legs = [("rftp", "uni"), ("rftp", "bidir"),
            ("gridftp", "uni"), ("gridftp", "bidir")]
    return [
        SimTask(f"{_LEGS}:transfer_leg",
                {"duration": duration, "lun_size": lun_size,
                 "tool": tool, "mode": mode},
                seed=seed + offset, cal=cal,
                label=f"{figure}/{tool}-{mode}")
        for offset, (tool, mode) in enumerate(legs)
    ]


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as four independent transfer tasks."""
    return bidir_plan(quick, seed, cal, "fig11")


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the legs' results."""
    rftp_uni, rftp_bi, grid_uni, grid_bi = results
    report = ExperimentReport(
        "fig11",
        "Fig. 11 bi-directional end-to-end throughput",
        data_headers=["tool", "unidirectional Gbps", "bidirectional Gbps",
                      "gain"],
    )

    rftp_gain = rftp_bi.goodput / rftp_uni.goodput
    grid_gain = grid_bi.goodput / grid_uni.goodput
    report.add_row(["RFTP", round(rftp_uni.goodput_gbps, 1),
                    round(rftp_bi.goodput_gbps, 1), f"{rftp_gain:.2f}x"])
    report.add_row(["GridFTP", round(grid_uni.goodput_gbps, 1),
                    round(grid_bi.goodput_gbps, 1), f"{grid_gain:.2f}x"])

    report.add_check("RFTP bidirectional gain", f"{PAPER_RFTP_GAIN:.2f}x",
                     f"{rftp_gain:.2f}x", ok=1.6 < rftp_gain <= 2.0)
    report.add_check("GridFTP bidirectional gain", f"{PAPER_GRIDFTP_GAIN:.2f}x",
                     f"{grid_gain:.2f}x", ok=1.1 < grid_gain < 1.7)
    report.add_check("RFTP gains more than GridFTP", "yes",
                     "yes" if rftp_gain > grid_gain else "no",
                     ok=rftp_gain > grid_gain)
    report.add_check("RFTP bidir short of 2x (contention)", "17% less",
                     f"{(2.0 - rftp_gain) / 2.0:.0%} less",
                     ok=rftp_gain < 2.0)
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
