"""Ablation A12 (extension): what the paper's tuning buys end to end.

The paper quantifies each tuning in isolation — +10% for iperf (§2.3),
+7.6%/+19% for iSER (Fig. 7) — but always runs the end-to-end
comparison with both applications bound (§4.3: "we used numactl to bind
the RFTP and GridFTP processes").  This ablation measures the composed
effect: the full Figure 5 path with every knob at its default, each
knob alone, and the paper's full tuning.

The composition is super-linear: untuned pieces share the same QPI and
remote-bank budgets, so their penalties compound.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.exec import SimTask, gang_calgrid, run_tasks
from repro.util.units import GB, to_gbps

__all__ = ["run", "plan", "assemble", "tuned_leg"]

CONFIGS = (
    ("nothing tuned", TuningPolicy(target_tuning="default", bind_apps=False,
                                   tune_irq=False)),
    ("targets only", TuningPolicy(target_tuning="numa", bind_apps=False,
                                  tune_irq=False)),
    ("apps only", TuningPolicy(target_tuning="default", bind_apps=True,
                               tune_irq=True)),
    ("full tuning (the paper)", TuningPolicy.numa_bound()),
)


def tuned_leg(*, seed: int, cal: Calibration | None, config: str,
              duration: float) -> float:
    """End-to-end RFTP goodput under one named tuning (SimTask target)."""
    policy = dict(CONFIGS)[config]
    system = EndToEndSystem.lan_testbed(policy, seed=seed, cal=cal,
                                        lun_size=2 * GB)
    return system.run_rftp_transfer(duration=duration).goodput


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> list[SimTask]:
    """The four tuning configurations as independent, gang-eligible legs."""
    duration = 20.0 if quick else 300.0
    return [
        gang_calgrid(SimTask(
            "repro.core.experiments.ablation_tuning_value:tuned_leg",
            {"config": label, "duration": duration},
            seed=seed + i, cal=cal, label=f"A12 {label}"))
        for i, (label, _policy) in enumerate(CONFIGS)
    ]


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the four legs' goodputs."""
    report = ExperimentReport(
        "ablation-tuning-value",
        "A12 (extension): composed value of NUMA tuning for end-to-end RFTP",
        data_headers=["configuration", "RFTP Gbps", "vs untuned"],
    )
    rates = {label: goodput
             for (label, _policy), goodput in zip(CONFIGS, results)}
    base = rates["nothing tuned"]
    for label, _ in CONFIGS:
        report.add_row([label, round(to_gbps(rates[label]), 1),
                        f"{rates[label] / base:.2f}x"])

    full = rates["full tuning (the paper)"]
    tgt_only = rates["targets only"]
    apps_only = rates["apps only"]
    report.add_check("full tuning vs nothing", "large (composed penalties)",
                     f"{full / base:.2f}x", ok=full > 1.5 * base)
    report.add_check(
        "the gain is concentrated at the SAN targets",
        "targets-only ~= full tuning",
        f"{tgt_only / full:.2f}x of full",
        ok=tgt_only > 0.95 * full,
    )
    report.add_check(
        "zero-copy front end is placement-insensitive",
        "apps-only ~= untuned",
        f"{apps_only / base:.2f}x of untuned",
        ok=0.95 < apps_only / base < 1.1,
    )
    report.add_check(
        "composed gain exceeds the largest single-component gain",
        "> Fig. 7's 1.19x", f"{full / base:.2f}x",
        ok=full / base > 1.19,
    )
    report.notes.append(
        "A finding the paper's bound-everything methodology could not "
        "surface: RFTP's zero-copy data plane makes front-end numactl "
        "binding irrelevant at these rates — every Gbps of the untuned "
        "penalty lives in the target's copy path.  (The front-end "
        "binding still matters for TCP tools; see the motivating "
        "experiment.)"
    )
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
