"""E8: fleet availability under failure domains and broker crashes.

The paper's recovery story is a single transfer surviving a link flap;
the fleet question operators actually ask is an *availability* one:
when a ToR cut takes out a whole pod of rails and the control plane
itself crashes mid-stream, what fraction of offered jobs still
complete, at what p99 latency, and how fast does goodput recover?

This extension sweeps correlated ``tor:<pod>`` fault rates over
N-host fabrics (:mod:`repro.service.fabric`) with a fleet-wide broker
crash in the middle, at the **same seed** for a *journaled* broker
(write-ahead job journal, replayed at restart) and an *amnesiac*
baseline (no journal: queued work vanishes, orphaned flows are torn
down, unobserved completions are lost).  An MTTR pair isolates restart
recovery on a crash-only plan, and a determinism leg anchors that
correlated domain faults expand identically at any shard count.

Environment overrides (both ordinary leg parameters, so they hash into
the result-cache identity):

* ``REPRO_AVAIL_HOSTS`` — comma-separated host counts replacing the
  default sweep (CI's availability-smoke runs ``128``);
* ``REPRO_AVAIL_RATE`` — comma-separated ToR fault rates replacing the
  default curve.
"""

from __future__ import annotations

import os

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble", "avail_sizes", "fault_rates"]

_LEGS = "repro.core.experiments.availability_legs"

#: Broker variants compared at each curve point (same seed).
VARIANTS = (True, False)  # journal on / off


def _env_tuple(name: str, kind, default):
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        values = tuple(kind(tok) for tok in text.split(",") if tok.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be comma-separated {kind.__name__}s, "
            f"got {text!r}") from None
    if not values or any(v < 0 for v in values):
        raise ValueError(f"{name} must be non-negative, got {text!r}")
    return values


def avail_sizes(quick: bool = True) -> tuple:
    """Host counts to sweep (``REPRO_AVAIL_HOSTS`` override)."""
    return _env_tuple("REPRO_AVAIL_HOSTS", int,
                      (16,) if quick else (128, 512))


def fault_rates(quick: bool = True) -> tuple:
    """ToR fault rates to sweep (``REPRO_AVAIL_RATE`` override)."""
    return _env_tuple("REPRO_AVAIL_RATE", float,
                      (0.5, 1.0) if quick else (0.25, 0.5, 1.0))


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """Per (hosts, fault rate): journaled and amnesiac legs at the same
    seed; plus the MTTR pair and the shard-determinism anchor."""
    sizes = avail_sizes(quick)
    rates = fault_rates(quick)
    tasks: list[SimTask] = []
    for i, hosts in enumerate(sizes):
        for rate in rates:
            for journal in VARIANTS:
                tag = "journaled" if journal else "amnesiac"
                tasks.append(SimTask(
                    f"{_LEGS}:availability_leg",
                    {"hosts": hosts, "fault_rate": rate, "journal": journal},
                    seed=seed + i, cal=cal,
                    label=f"avail/{tag}-x{hosts}-r{rate:g}"))
    for journal in VARIANTS:
        tag = "journaled" if journal else "amnesiac"
        tasks.append(SimTask(
            f"{_LEGS}:mttr_leg",
            {"hosts": sizes[0], "journal": journal},
            seed=seed + 57, cal=cal, label=f"avail/mttr-{tag}"))
    tasks.append(SimTask(
        f"{_LEGS}:domain_determinism_leg", {}, seed=seed + 93, cal=cal,
        label="avail/determinism"))
    return tasks


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Fold the legs into the availability report."""
    sizes = avail_sizes(quick)
    rates = fault_rates(quick)
    n_curve = len(sizes) * len(rates) * len(VARIANTS)
    legs = {(leg["hosts"], leg["fault_rate"], leg["journal"]): leg
            for leg in results[:n_curve]}
    mttr = {leg["journal"]: leg for leg in results[n_curve:n_curve + 2]}
    det = results[n_curve + 2]

    report = ExperimentReport(
        "ext-availability",
        "E8: fleet availability under correlated failure domains — "
        "availability, p99 latency and goodput vs ToR fault rate with a "
        "mid-run broker crash, journaled (WAL replay) vs amnesiac "
        "restart, plus MTTR recovery curves",
        data_headers=["hosts", "fault rate", "broker", "availability",
                      "p99 ms", "goodput GB/s", "lost", "replayed",
                      "rescheduled"],
    )
    for hosts in sizes:
        for rate in rates:
            for journal in VARIANTS:
                leg = legs[(hosts, rate, journal)]
                report.add_row([
                    hosts, f"{rate:g}",
                    "journaled" if journal else "amnesiac",
                    f"{leg['availability']:.1%}",
                    round(leg["p99_ms"], 1),
                    round(leg["goodput_Bps"] / 1e9, 2),
                    leg["lost"],
                    leg["replayed"],
                    leg["rescheduled"],
                ])

    # -- the CI availability-smoke gates ----------------------------------
    gaps_ok = all(
        legs[(h, r, True)]["availability"]
        >= legs[(h, r, False)]["availability"]
        for h in sizes for r in rates)
    report.add_check(
        "journaled restart never loses availability vs amnesiac",
        "journaled >= amnesiac at every curve point", gaps_ok, ok=gaps_ok)
    exact = all(
        legs[(h, r, True)]["audit_ok"] and legs[(h, r, True)]["lost"] == 0
        for h in sizes for r in rates)
    report.add_check(
        "journaled byte accounting is exactly-once",
        "audit exact, zero lost jobs", exact, ok=exact)
    conserved = all(leg["conserved"] and leg["audit_ok"]
                    for leg in legs.values())
    report.add_check(
        "job conservation holds through crash + restart (all legs)",
        "submitted == terminal states + active", conserved, ok=conserved)
    mj, ma = mttr[True], mttr[False]
    report.add_check(
        "journaled restart recovers pre-crash goodput",
        ">= 95%", f"{mj['recovery_ratio']:.0%}",
        ok=mj["recovery_ratio"] >= 0.95)
    report.add_check(
        "amnesiac restart loses in-flight bytes the journal preserves",
        "> 0 lost bytes (amnesiac), 0 (journaled)",
        f"{ma['lost_bytes'] / 1e9:.1f} GB vs {mj['lost_bytes'] / 1e9:.1f} GB",
        ok=ma["lost_bytes"] > 0.0 and mj["lost_bytes"] == 0.0)
    report.add_check(
        "correlated domain faults are shard-count invariant",
        "identical per-pod ledgers at 1 vs N shards", det["identical"],
        ok=det["identical"] and det["rescheduled"] > 0)

    report.notes.append(
        f"MTTR at {mj['hosts']} hosts (crash at {mj['crash_at']:.1f} s, "
        f"restart {mj['restart_at'] - mj['crash_at']:.1f} s later): the "
        f"journaled broker replays {mj['replayed']} journal entries, "
        f"re-adopts surviving flows and recovers "
        f"{mj['recovery_ratio']:.0%} of pre-crash goodput "
        f"{mj['mttr_s']:.1f} s after the crash; the amnesiac baseline "
        f"recovers {ma['recovery_ratio']:.0%} after "
        f"{ma['mttr_s']:.1f} s, losing {ma['lost']} jobs "
        f"({ma['lost_bytes'] / 1e9:.1f} GB already moved) and restarting "
        "its pipeline from empty.")
    report.notes.append(
        "Goodput timeline (GB/s per 0.5 s bucket) around the crash — "
        f"journaled {[round(v / 1e9, 1) for v in mj['mttr_curve_Bps']]}, "
        f"amnesiac {[round(v / 1e9, 1) for v in ma['mttr_curve_Bps']]}.")
    report.notes.append(
        "Correlated faults expand per cell from registered topology "
        "(host/tor/power domains), with stagger offsets drawn from each "
        f"cell's own \"faults\" stream: the determinism anchor completed "
        f"{det['completed']} jobs with {det['mismatches']} ledger "
        "mismatches between shard counts.")
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the availability report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
