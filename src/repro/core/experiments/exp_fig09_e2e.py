"""Fig. 9: end-to-end throughput, RFTP vs GridFTP (25-minute runs).

The full Figure 5 path: SAN A -> host A -> 3x RoCE -> host B -> SAN B,
XFS over iSER, both applications numactl-bound.

Paper anchors: fio puts the narrowest stage (file write) at
**94.8 Gbps**; RFTP sustains **91 Gbps** (96% of that); GridFTP reaches
**29 Gbps** (30%), i.e. RFTP is ≈**3x** faster.

The RFTP system (with its fio ceiling cross-check) and the GridFTP
system are independent simulations, so :func:`plan` exposes them as two
:class:`~repro.exec.task.SimTask` legs; :func:`run` is their serial
composition.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks
from repro.util.units import GB, to_gbps

__all__ = ["run", "plan", "assemble"]

PAPER_CEILING = 94.8
PAPER_RFTP = 91.0
PAPER_GRIDFTP = 29.0

_LEGS = "repro.core.experiments.e2e_legs"


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as independent tasks (RFTP+ceiling, GridFTP)."""
    duration = 30.0 if quick else 1500.0  # paper: 25 minutes
    lun_size = 2 * GB if quick else 50 * GB
    return [
        SimTask(f"{_LEGS}:rftp_with_ceiling_leg",
                {"duration": duration, "lun_size": lun_size,
                 "ceiling_runtime": min(duration, 20.0)},
                seed=seed, cal=cal, label="fig09/rftp+ceiling"),
        SimTask(f"{_LEGS}:transfer_leg",
                {"duration": duration, "lun_size": lun_size,
                 "tool": "gridftp", "mode": "uni"},
                seed=seed + 1, cal=cal, label="fig09/gridftp"),
    ]


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the legs' results."""
    rftp_leg, gridftp = results
    ceiling = rftp_leg["ceiling"]
    rftp = rftp_leg["rftp"]
    report = ExperimentReport(
        "fig09",
        "Fig. 9 end-to-end throughput: RFTP vs GridFTP over 3x40G + iSER SANs",
        data_headers=["tool", "Gbps", "% of effective bandwidth"],
    )

    ceiling_gbps = to_gbps(ceiling)
    report.add_row(["fio write ceiling", round(ceiling_gbps, 1), "100%"])
    report.add_row(["RFTP", round(rftp.goodput_gbps, 1),
                    f"{rftp.goodput / ceiling:.0%}"])
    report.add_row(["GridFTP", round(gridftp.goodput_gbps, 1),
                    f"{gridftp.goodput / ceiling:.0%}"])

    report.add_check("file-write ceiling (Gbps)", PAPER_CEILING,
                     round(ceiling_gbps, 1),
                     ok=abs(ceiling_gbps - PAPER_CEILING) / PAPER_CEILING < 0.08)
    report.add_check("RFTP (Gbps)", PAPER_RFTP, round(rftp.goodput_gbps, 1),
                     ok=abs(rftp.goodput_gbps - PAPER_RFTP) / PAPER_RFTP < 0.08)
    report.add_check("RFTP share of ceiling", "96%",
                     f"{rftp.goodput / ceiling:.0%}",
                     ok=rftp.goodput / ceiling > 0.90)
    report.add_check("GridFTP (Gbps)", PAPER_GRIDFTP,
                     round(gridftp.goodput_gbps, 1),
                     ok=abs(gridftp.goodput_gbps - PAPER_GRIDFTP) / PAPER_GRIDFTP < 0.15)
    ratio = rftp.goodput / gridftp.goodput
    report.add_check("RFTP/GridFTP speedup", "~3.1x", f"{ratio:.1f}x",
                     ok=2.4 < ratio < 4.0)
    if rftp.series is not None and len(rftp.series) > 4:
        values = np.asarray(rftp.series.values[1:])
        cv = float(values.std() / values.mean()) if values.mean() else 1.0
        report.add_check("RFTP throughput steadiness (CV)", "flat line",
                         f"{cv:.3f}", ok=cv < 0.1)
        report.notes.append(
            "RFTP timeline (Gbps over the run): "
            + rftp.series.sparkline(width=50)
        )
    if gridftp.series is not None and len(gridftp.series) > 4:
        report.notes.append(
            "GridFTP timeline: " + gridftp.series.sparkline(width=50)
        )
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
