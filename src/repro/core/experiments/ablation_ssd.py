"""Ablation A1: why the paper's back-end is tmpfs, not flash (§4.1).

The authors started with Fusion-IO PCIe SSDs and abandoned them: after
~100 GB of continuous I/O, thermal throttling cut throughput to about
500 MB/s.  This ablation runs a sustained write against the SSD model
and against a tmpfs RAM disk and shows the divergence.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.kernel.process import SimProcess
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.storage.blockdev import RamDisk
from repro.storage.ssd import SsdDevice
from repro.util.units import GB, MIB

__all__ = ["run"]


def _sustained_write(ctx: Context, device, machine, duration: float,
                     n_threads: int = 4):
    proc = SimProcess(machine, "fio", cpu_policy=NumaPolicy.bind(0))
    flows = []
    for _ in range(n_threads):
        t = proc.spawn_thread()
        spec = device.bulk_path(True, t, 4 * MIB)
        flow = FluidFlow(spec.path, size=None, cap=spec.cap,
                         charges=spec.charges, name=f"w{len(flows)}")
        ctx.fluid.start(flow)
        flows.append(flow)
    samples = []
    last = 0.0
    step = duration / 20.0
    for _ in range(20):
        ctx.sim.run(until=ctx.sim.now + step)
        ctx.fluid.settle()
        total = sum(f.transferred for f in flows)
        samples.append((total - last) / step)
        last = total
    for f in flows:
        ctx.fluid.stop(f)
    return samples


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    report = ExperimentReport(
        "ablation-ssd",
        "A1: SSD thermal throttling vs tmpfs (why the SAN is memory-backed)",
        data_headers=["backend", "early GB/s", "late GB/s", "throttled?"],
    )
    # scaled thermal budget so the quick run crosses it
    budget = 20e9 if quick else 100e9
    duration = 120.0 if quick else 600.0

    ctx = Context.create(seed=seed, cal=cal)
    m = Machine(ctx, "storage-host", pcie_sockets=(0,))
    ssd = SsdDevice(ctx, "fusion-io", capacity_bytes=2000 * GB,
                    thermal_budget=budget)
    ssd_samples = _sustained_write(ctx, ssd, m, duration)

    ctx2 = Context.create(seed=seed, cal=cal)
    m2 = Machine(ctx2, "storage-host", pcie_sockets=(0,))
    ram = RamDisk(ctx2, "tmpfs", place_region(300 * GB, NumaPolicy.bind(0),
                                              m2.n_nodes))
    ram_samples = _sustained_write(ctx2, ram, m2, duration)

    ssd_early = sum(ssd_samples[:3]) / 3 / 1e9
    ssd_late = sum(ssd_samples[-3:]) / 3 / 1e9
    ram_early = sum(ram_samples[:3]) / 3 / 1e9
    ram_late = sum(ram_samples[-3:]) / 3 / 1e9
    report.add_row(["Fusion-IO SSD", round(ssd_early, 2), round(ssd_late, 2),
                    "yes" if ssd.throttled else "no"])
    report.add_row(["tmpfs RAM disk", round(ram_early, 2), round(ram_late, 2),
                    "no"])

    report.add_check("SSD throttled rate (GB/s)", "~0.5",
                     round(ssd_late, 2), ok=0.4 < ssd_late < 0.65)
    report.add_check("SSD throttles under sustained load", "yes",
                     "yes" if ssd.throttled else "no", ok=ssd.throttled)
    report.add_check("tmpfs is steady", "yes",
                     "yes" if abs(ram_late - ram_early) / ram_early < 0.05
                     else "no",
                     ok=abs(ram_late - ram_early) / ram_early < 0.05)
    report.add_check("tmpfs sustains >> throttled SSD", ">10x",
                     f"{ram_late / max(ssd_late, 1e-9):.1f}x",
                     ok=ram_late > 5 * ssd_late)
    return report
