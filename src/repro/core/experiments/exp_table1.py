"""Table 1: testbed host configurations.

Not a measurement — a consistency check that the modelled machines match
the published inventory (CPUs, NUMA nodes, memory, adapters, MTUs, RTTs).
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import backend_lan_host, frontend_lan_host, wan_host
from repro.net.topology import LAN_IB_DELAY, LAN_ROCE_DELAY, WAN_DELAY
from repro.sim.context import Context

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    ctx = Context.create(seed=seed, cal=cal)
    front = frontend_lan_host(ctx, "front", with_ib=True)
    back = backend_lan_host(ctx, "back")
    wan = wan_host(ctx, "wan")

    report = ExperimentReport(
        "table1",
        "Table 1 testbed host configurations",
        data_headers=["host class", "cores", "NUMA nodes", "mem (GiB)",
                      "adapters", "RTT (ms)"],
    )
    roce = [s.device for s in front.pcie_slots if s.device.kind.name == "ROCE_QDR"]
    ib = [s.device for s in front.pcie_slots if s.device.kind.name == "IB_FDR"]
    report.add_row([
        "front-end LAN", front.n_cores, front.n_nodes,
        front.total_memory_bytes >> 30,
        f"{len(roce)}x RoCE QDR + {len(ib)}x IB FDR",
        round(2 * LAN_ROCE_DELAY * 1e3, 3),
    ])
    back_ib = [s.device for s in back.pcie_slots]
    report.add_row([
        "back-end LAN", back.n_cores, back.n_nodes,
        back.total_memory_bytes >> 30,
        f"{len(back_ib)}x IB FDR",
        round(2 * LAN_IB_DELAY * 1e3, 3),
    ])
    report.add_row([
        "WAN (ANI)", wan.n_cores, wan.n_nodes,
        wan.total_memory_bytes >> 30,
        "1x RoCE QDR",
        round(2 * WAN_DELAY * 1e3, 1),
    ])

    report.add_check("front-end cores", 16, front.n_cores, ok=front.n_cores == 16)
    report.add_check("back-end mem (GB)", 384, back.total_memory_bytes >> 30,
                     ok=(back.total_memory_bytes >> 30) == 384)
    report.add_check("WAN cores", 12, wan.n_cores, ok=wan.n_cores == 12)
    report.add_check("LAN RoCE RTT (ms)", 0.166, round(2 * LAN_ROCE_DELAY * 1e3, 3),
                     ok=abs(2 * LAN_ROCE_DELAY * 1e3 - 0.166) < 1e-6)
    report.add_check("LAN IB RTT (ms)", 0.144, round(2 * LAN_IB_DELAY * 1e3, 3),
                     ok=abs(2 * LAN_IB_DELAY * 1e3 - 0.144) < 1e-6)
    report.add_check("WAN RTT (ms)", 95, round(2 * WAN_DELAY * 1e3, 1),
                     ok=abs(2 * WAN_DELAY * 1e3 - 95) < 1e-6)
    return report
