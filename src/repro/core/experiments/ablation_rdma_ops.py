"""Ablation A4: RDMA WRITE vs RDMA READ throughput (§4.2).

"the bandwidth performance of serving read requests [...] is slightly
better by 7.5% than that of serving write requests [...] the better
performance of RDMA Write (used by read requests) than RDMA Read (used
by write requests)."
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, gang_calgrid, run_tasks
from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.net.link import connect
from repro.rdma.cm import ConnectionManager
from repro.rdma.mr import ProtectionDomain
from repro.rdma.verbs import Opcode
from repro.sim.context import Context
from repro.util.units import GIB, to_gbps

__all__ = ["run", "plan", "assemble", "measure_leg"]

PAPER_RATIO = 1.075


def measure_leg(*, seed: int, cal: Calibration | None, opcode: str) -> float:
    """One bulk-channel throughput measurement (SimTask target)."""
    ctx = Context.create(seed=seed, cal=cal)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.IB_FDR, mtu=65520)
    nb = Nic(b, b.pcie_slots[0], NicKind.IB_FDR, mtu=65520)
    connect(na, nb, delay=72e-6)
    qp_a, qp_b, hs = ConnectionManager(ctx).connect_pair(na, nb, name="ab")
    ctx.sim.run(until=hs)
    pd_a, pd_b = ProtectionDomain(a), ProtectionDomain(b)
    src = pd_a.register(place_region(1 * GIB, NumaPolicy.bind(0), 2))
    dst = pd_b.register(place_region(1 * GIB, NumaPolicy.bind(0), 2))
    flow = qp_a.bulk_channel(src_mr=src, dst_mr=dst, opcode=Opcode[opcode],
                             name="bulk")
    ctx.fluid.start(flow)
    ctx.sim.run(until=ctx.sim.now + 10.0)
    ctx.fluid.settle()
    rate = flow.transferred / 10.0
    ctx.fluid.stop(flow)
    return rate


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> list[SimTask]:
    """The two opcode measurements as independent, gang-eligible legs."""
    target = "repro.core.experiments.ablation_rdma_ops:measure_leg"
    return [
        gang_calgrid(SimTask(target, {"opcode": "RDMA_WRITE"}, seed=seed,
                             cal=cal, label="A4 RDMA WRITE")),
        gang_calgrid(SimTask(target, {"opcode": "RDMA_READ"}, seed=seed + 1,
                             cal=cal, label="A4 RDMA READ")),
    ]


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the two legs' rates."""
    write_rate, read_rate = results
    report = ExperimentReport(
        "ablation-rdma-ops",
        "A4: one-sided RDMA WRITE vs RDMA READ bulk throughput (IB FDR)",
        data_headers=["opcode", "Gbps"],
    )
    report.add_row(["RDMA WRITE", round(to_gbps(write_rate), 2)])
    report.add_row(["RDMA READ", round(to_gbps(read_rate), 2)])
    ratio = write_rate / read_rate
    report.add_check("WRITE/READ throughput ratio", f"{PAPER_RATIO:.3f}x",
                     f"{ratio:.3f}x", ok=1.03 < ratio < 1.12)
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
