"""Process-pool-safe legs for the fleet-scale fabric experiment.

Each curve leg runs one :class:`~repro.service.fabric.FabricSpec`
through the topology-sharded runtime (:mod:`repro.sim.shard`) and folds
the per-pod ledgers into a fleet scorecard: sustained jobs/s, latency
percentiles over every pod's completed jobs, the QP/CM cliff counters
summed fleet-wide, and the boundary-exchange accounting.  The leg is a
single :class:`~repro.exec.SimTask` target, so the whole fabric — shard
fan-out included — caches as one content-addressed entry; inside a
worker process the nested shard tasks simply run serially.

The differential leg is the experiment's correctness anchor: the same
small fabric through the sharded and single-process reference paths,
compared per cell.  On static scenarios (elephant flows only, no
churn) the boundary exchange converges to the global flow-level
max-min allocation, so agreement is held to 1e-6; on churn the
deterministic fixed-round mode must complete exactly the same jobs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.calibration import Calibration

__all__ = ["diff_leg", "fleet_leg"]


def _spec(hosts: int, hosts_per_pod: int, **overrides) -> "FabricSpec":
    from repro.service.fabric import FabricSpec

    if hosts % hosts_per_pod:
        raise ValueError(
            f"hosts={hosts} not divisible by hosts_per_pod={hosts_per_pod}")
    n_pods = hosts // hosts_per_pod
    # WAN capacity scales with the fleet: one 100 Gbps link per four
    # pods, so the curve measures broker/fabric scaling, not a fixed
    # WAN ceiling shrinking per host.
    return FabricSpec(n_pods=n_pods, hosts_per_pod=hosts_per_pod,
                      n_wan_links=max(1, n_pods // 4), **overrides)


def _merge(result: dict, serve_s: float) -> Dict[str, Any]:
    """Fold per-pod ledgers + exchange into one fleet scorecard."""
    cells = result["cells"]
    exchange = result["exchange"]
    latencies = np.sort(np.concatenate(
        [np.asarray(c["latencies_s"], dtype=float) for c in cells]))
    if latencies.size:
        p50, p99 = np.percentile(latencies, [50.0, 99.0])
        mean = float(latencies.mean())
    else:
        p50 = p99 = mean = 0.0
    qpool = [c["qpool"] for c in cells if c.get("qpool")]
    active = sum(c["queued"] + c["running"] for c in cells)
    out: Dict[str, Any] = {
        "pods": exchange["n_cells"],
        "submitted": sum(c["submitted"] for c in cells),
        "completed": sum(c["completed"] for c in cells),
        "shed": sum(c["shed"] for c in cells),
        "cancelled": sum(c["cancelled"] for c in cells),
        "active_end": active,
        "wan_jobs": sum(c["wan_jobs"] for c in cells),
        "wan_bytes": sum(c["wan_bytes"] for c in cells),
        "jobs_per_s": sum(c["completed"] for c in cells) / serve_s,
        "mean_ms": mean * 1e3,
        "p50_ms": float(p50) * 1e3,
        "p99_ms": float(p99) * 1e3,
        "rounds": exchange["rounds"],
        "converged": exchange["converged"],
        "wan_util_max": max(
            b["utilization"] for b in exchange["boundaries"].values()),
        "qps_created": sum(q["qps_created"] for q in qpool),
        "qp_reuses": sum(q["qp_reuses"] for q in qpool),
        "thrashed_jobs": sum(q["thrashed_jobs"] for q in qpool),
        "cm_delay_total_s": sum(q["cm_delay_total_s"] for q in qpool),
        "cm_delay_max_s": max(
            (q["cm_delay_max_s"] for q in qpool), default=0.0),
    }
    out["conserved"] = (
        out["submitted"]
        == out["completed"] + out["shed"] + out["cancelled"] + active)
    return out


def fleet_leg(*, seed: int, cal: Optional[Calibration], hosts: int,
              qp_mode: str, rate_per_host: float, size_mean_mib: float,
              hosts_per_pod: int = 8, wan_tenants: int = 2,
              serve_s: float = 4.0, horizon_s: float = 6.0,
              fixed_rounds: int = 2) -> Dict[str, Any]:
    """One fleet curve point: *hosts* hosts under *qp_mode* accounting."""
    from repro.service.fabric import run_fabric

    spec = _spec(hosts, hosts_per_pod,
                 rate_per_host=rate_per_host, size_mean_mib=size_mean_mib,
                 wan_tenants=wan_tenants, serve_s=serve_s,
                 horizon_s=horizon_s, qp_mode=qp_mode)
    result = run_fabric(spec, seed=seed, cal=cal, fixed_rounds=fixed_rounds)
    out = _merge(result, serve_s)
    out.update(hosts=hosts, qp_mode=qp_mode,
               offered_rate=rate_per_host * hosts)
    return out


def diff_leg(*, seed: int, cal: Optional[Calibration],
             n_pods: int = 4, horizon_s: float = 4.0) -> Dict[str, Any]:
    """Sharded vs reference on one small fabric; returns the divergences."""
    from repro.service.fabric import FabricSpec, run_fabric

    # Static anchor: skewed elephants oversubscribing a 10 Gbps WAN —
    # pure boundary arbitration, where the exchange's fixed point is
    # the global max-min allocation and agreement must be exact.
    static = FabricSpec(
        n_pods=n_pods, hosts_per_pod=2, n_wan_links=1, wan_gbps=10.0,
        elephants_per_pod=2, elephant_gbps=6.0, elephant_skew=0.15,
        rate_per_host=0.0, serve_s=horizon_s, horizon_s=horizon_s,
        qp_mode="off")
    s = run_fabric(static, seed=seed, cal=cal)
    u = run_fabric(static, seed=seed, cal=cal, sharded=False)
    errs = [0.0]
    for cs, cu in zip(s["cells"], u["cells"]):
        for a, b in zip(cs["elephant_bytes"], cu["elephant_bytes"]):
            errs.append(abs(a - b) / max(1.0, abs(b)))
        errs.append(abs(cs["wan_bytes"] - cu["wan_bytes"])
                    / max(1.0, abs(cu["wan_bytes"])))

    # Churn anchor: a small job stream through the fixed-round mode
    # must complete exactly the same jobs as the reference.  (The WAN
    # here is contended but not saturated: at saturation, epoch-granular
    # grants can legitimately move a completion across the horizon.)
    churn = FabricSpec(
        n_pods=n_pods, hosts_per_pod=2, n_wan_links=1, wan_gbps=20.0,
        elephants_per_pod=1, elephant_gbps=4.0, rate_per_host=4.0,
        size_mean_mib=64.0, wan_tenants=2, serve_s=horizon_s - 1.0,
        horizon_s=horizon_s)
    cs_run = run_fabric(churn, seed=seed, cal=cal, fixed_rounds=2)
    cu_run = run_fabric(churn, seed=seed, cal=cal, sharded=False)
    return {
        "static_max_rel_err": max(errs),
        "static_rounds": s["exchange"]["rounds"],
        "static_converged": s["exchange"]["converged"],
        "churn_completed_sharded": sum(
            c["completed"] for c in cs_run["cells"]),
        "churn_completed_reference": sum(
            c["completed"] for c in cu_run["cells"]),
    }
