"""Ablation A10 (extension): GridFTP parallelism vs its CPU bill.

§4.3: "Running multiple processes simultaneously may alleviate this
problem [single-threaded movers idling the network], but at the price of
higher CPU consumption."  This ablation sweeps the mover count and
compares throughput *and* CPU-per-gigabit against RFTP — showing that
GridFTP can buy bandwidth but only at several times RFTP's CPU price,
and never reaches the SAN ceiling.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB

__all__ = ["run"]

PROCESS_COUNTS = (1, 3, 6, 12, 24)


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 15.0 if quick else 120.0
    report = ExperimentReport(
        "ablation-gridftp-procs",
        "A10 (extension): GridFTP mover-count sweep vs RFTP "
        "(bandwidth bought with CPU)",
        data_headers=["tool", "movers", "Gbps", "CPU% (both hosts)",
                      "CPU% per Gbps"],
    )
    rftp_sys = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(),
                                          seed=seed, cal=cal, lun_size=2 * GB)
    rftp = rftp_sys.run_rftp_transfer(duration=duration)
    rftp_cpu = rftp.sender_cpu.total + rftp.receiver_cpu.total
    rftp_eff = rftp_cpu / rftp.goodput_gbps
    report.add_row(["RFTP", "-", round(rftp.goodput_gbps, 1),
                    round(rftp_cpu), round(rftp_eff, 1)])

    rates, effs = {}, {}
    for i, n in enumerate(PROCESS_COUNTS):
        system = EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=seed + 1 + i, cal=cal,
            lun_size=2 * GB)
        res = system.run_gridftp_transfer(duration=duration, processes=n)
        cpu = res.sender_cpu.total + res.receiver_cpu.total
        rates[n] = res.goodput_gbps
        effs[n] = cpu / max(res.goodput_gbps, 1e-9)
        report.add_row(["GridFTP", n, round(res.goodput_gbps, 1),
                        round(cpu), round(effs[n], 1)])

    report.add_check("more movers help at first", "rising",
                     f"{rates[6] / rates[1]:.1f}x (1 -> 6)",
                     ok=rates[6] > 3 * rates[1])
    report.add_check("returns diminish", "sub-linear past 6",
                     f"{rates[24] / rates[6]:.2f}x (6 -> 24)",
                     ok=rates[24] < 2.5 * rates[6])
    best = max(rates.values())
    report.add_check("GridFTP never reaches RFTP", "capped",
                     f"best {best:.1f} vs RFTP {rftp.goodput_gbps:.1f} Gbps",
                     ok=best < 0.85 * rftp.goodput_gbps)
    report.add_check("GridFTP CPU-per-Gbps stays several x RFTP's",
                     ">4x at any mover count",
                     f"min {min(effs.values()) / rftp_eff:.1f}x",
                     ok=min(effs.values()) > 4 * rftp_eff)
    return report
