"""§2.3 motivating experiment: STREAM + NUMA-tuned iperf.

Paper anchors:

* STREAM Triad (OpenMP) across both NUMA nodes: **50 GB/s**;
* bi-directional iperf over 3x40 Gbps RoCE, large (uncached) buffers:
  **83.5 Gbps** with the default scheduler, **91.8 Gbps** (+10%) with
  NUMA binding;
* ``copy_user_generic_string`` consumes **~35%** of CPU cycles.
"""

from __future__ import annotations

from repro.apps.iperf import run_iperf
from repro.apps.streambench import run_stream_model
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import frontend_lan_host
from repro.net.topology import wire_frontend_lan
from repro.sim.context import Context

__all__ = ["run"]

PAPER_STREAM_GBS = 50.0
PAPER_DEFAULT_GBPS = 83.5
PAPER_TUNED_GBPS = 91.8
PAPER_COPY_SHARE = 0.35


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 20.0 if quick else 600.0  # paper: ten-minute test
    report = ExperimentReport(
        "motivating",
        "§2.3 STREAM Triad + bi-directional iperf, default vs NUMA-tuned",
        data_headers=["configuration", "aggregate Gbps", "copy CPU share"],
    )

    # STREAM
    stream_ctx = Context.create(seed=seed, cal=cal)
    host = frontend_lan_host(stream_ctx, "stream-host")
    stream = run_stream_model(host, duration=5.0)
    report.add_check(
        "STREAM Triad (GB/s)",
        PAPER_STREAM_GBS,
        round(stream.triad_gb_per_s, 1),
        ok=abs(stream.triad_gb_per_s - PAPER_STREAM_GBS) / PAPER_STREAM_GBS < 0.1,
    )

    results = {}
    for tuned in (False, True):
        ctx = Context.create(seed=seed, cal=cal)
        a = frontend_lan_host(ctx, "a")
        b = frontend_lan_host(ctx, "b")
        wire_frontend_lan(a, b)
        res = run_iperf(ctx, a, b, duration=duration, numa_tuned=tuned)
        results[tuned] = res
        report.add_row(
            [
                "NUMA-tuned" if tuned else "default scheduler",
                round(res.aggregate_gbps, 1),
                f"{res.copy_share():.1%}",
            ]
        )

    report.add_check(
        "iperf default (Gbps)", PAPER_DEFAULT_GBPS,
        round(results[False].aggregate_gbps, 1),
        ok=abs(results[False].aggregate_gbps - PAPER_DEFAULT_GBPS)
        / PAPER_DEFAULT_GBPS < 0.10,
    )
    report.add_check(
        "iperf NUMA-tuned (Gbps)", PAPER_TUNED_GBPS,
        round(results[True].aggregate_gbps, 1),
        ok=abs(results[True].aggregate_gbps - PAPER_TUNED_GBPS)
        / PAPER_TUNED_GBPS < 0.10,
    )
    gain = results[True].aggregate_gbps / results[False].aggregate_gbps
    report.add_check("tuning gain", "~1.10x", f"{gain:.2f}x",
                     ok=1.02 < gain < 1.25)
    report.add_check(
        "copy share of CPU", f"{PAPER_COPY_SHARE:.0%}",
        f"{results[False].copy_share():.1%}",
        ok=0.25 < results[False].copy_share() < 0.50,
    )
    return report
