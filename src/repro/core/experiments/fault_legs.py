"""Process-pool-safe legs for the fault-recovery experiment.

Each leg builds a *metro* testbed — the Figure 5 front-end pair, but
cabled over three 2.5 ms-one-way links so RFTP's credit window binds
well below line rate (2 credits x 2 MiB over a 5 ms RTT caps each
stream near 3.3 Gbps).  That regime is what makes multi-rail failover
observable: when one NIC dies, the surviving rails' streams absorb the
dead rails' credit budget and aggregate goodput returns to its
pre-fault level, whereas on a LAN-delay testbed the links themselves
bound throughput and no protocol can do better than 2/3.

The fault plan arrives as its ``--faults`` spec string (a plain
parameter, so it is hashed into the result-cache identity with
everything else) and drives an explicit per-context
:class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.calibration import Calibration
from repro.util.units import GB, MIB, to_gbps

__all__ = ["recovery_leg"]

#: One-way metro-link delay (2.5 ms: a ~500 km dark-fiber loop).
METRO_DELAY = 2.5e-3

# RFTP knobs that put the transfer in the credit-bound regime.
BLOCK_SIZE = 2 * MIB
STREAMS_PER_LINK = 2
CREDITS = 2
GRIDFTP_PROCESSES = 6  # two single-threaded movers per link


def _metro_pair(ctx):
    from repro.hw.nic import NicKind
    from repro.hw.presets import frontend_lan_host
    from repro.net.link import connect
    from repro.net.topology import _nics

    a = frontend_lan_host(ctx, "metro-a")
    b = frontend_lan_host(ctx, "metro-b")
    links = [
        connect(c, s, delay=METRO_DELAY, name=f"metro{i}")
        for i, (c, s) in enumerate(
            zip(_nics(a, NicKind.ROCE_QDR), _nics(b, NicKind.ROCE_QDR))
        )
    ]
    return a, b, links


def _ram_xfs(ctx, machine, name: str):
    from repro.fs.xfs import XfsFileSystem
    from repro.kernel.numa import NumaPolicy
    from repro.kernel.pages import place_region
    from repro.storage.blockdev import RamDisk

    placement = place_region(2 * GB, NumaPolicy.default(),
                             machine.n_nodes, touch_node=0)
    return XfsFileSystem(ctx, RamDisk(ctx, name, placement))


def _curve_stats(times: List[float], values: List[float], fault_at: float,
                 duration: float) -> Dict[str, float]:
    """Pre/post goodput and the time back to >= 90% of pre-fault rate."""
    t = np.asarray(times)
    v = np.asarray(values)
    pre_mask = (t > 2.0) & (t <= fault_at)
    tail_start = fault_at + 0.75 * (duration - fault_at)
    pre = float(v[pre_mask].mean()) if pre_mask.any() else 0.0
    post = float(v[t > tail_start].mean()) if (t > tail_start).any() else 0.0
    recovered = t[(t > fault_at) & (v >= 0.9 * pre)]
    recovery_s = float(recovered[0] - fault_at) if len(recovered) else float("inf")
    return {"pre_gbps": to_gbps(pre), "post_gbps": to_gbps(post),
            "post_over_pre": post / pre if pre else 0.0,
            "recovery_s": recovery_s}


def recovery_leg(*, seed: int, cal: Optional[Calibration], tool: str,
                 faults: str, duration: float, fault_at: float,
                 sample_interval: float = 0.5) -> Dict[str, Any]:
    """One metro-pair run of *tool* under the *faults* plan."""
    from repro.faults import FaultInjector, FaultPlan
    from repro.sim.context import Context

    ctx = Context.create(seed=seed, cal=cal)
    injector = FaultInjector(ctx, FaultPlan.parse(faults))
    sender, receiver, _links = _metro_pair(ctx)

    if tool == "rftp":
        from repro.apps.rftp.transfer import RftpConfig, RftpTransfer

        xfer = RftpTransfer(
            ctx, sender, receiver, source="zero", sink="null",
            config=RftpConfig(block_size=BLOCK_SIZE,
                              streams_per_link=STREAMS_PER_LINK,
                              credits=CREDITS),
        )
        res = xfer.run(duration, sample_interval=sample_interval)
        counters = {"retransmitted_bytes": res.retransmitted_bytes,
                    "reconnects": res.reconnects,
                    "streams_failed": res.streams_failed,
                    "recovery_seconds": res.recovery_seconds}
    elif tool == "gridftp":
        from repro.apps.gridftp import GridFtp

        mover = GridFtp(
            ctx, sender, receiver,
            source_fs=_ram_xfs(ctx, sender, "metro-rama"),
            sink_fs=_ram_xfs(ctx, receiver, "metro-ramb"),
            processes=GRIDFTP_PROCESSES,
        )
        res = mover.run(duration, sample_interval=sample_interval)
        counters = {"retransmitted_bytes": 0.0, "reconnects": 0,
                    "streams_failed": 0, "recovery_seconds": 0.0}
    else:
        raise ValueError(f"unknown recovery-leg tool {tool!r}")

    times = list(res.series.times)
    values = list(res.series.values)
    out: Dict[str, Any] = {"tool": tool, "faults": faults,
                           "goodput_gbps": res.goodput_gbps,
                           "sparkline": res.series.sparkline(width=50),
                           "faults_injected": injector.stats.faults_injected,
                           "giveups": injector.stats.giveups}
    out.update(counters)
    out.update(_curve_stats(times, values, fault_at, duration))
    return out
