"""Extension E1: the full end-to-end transfer over the WAN.

§4.4's untested claim:

    "We expect that if RFTP performs well over the RoCE link, then our
     full end-to-end data transfer system would perform equally well if
     it were deployed in the ANI testbed."

The paper could only run memory-to-memory on the ANI loop (the SANs
could not be shipped to the NERSC point of presence).  The simulation
can deploy them: this experiment attaches a tmpfs SAN to each ANI host
and runs storage-to-storage RFTP over the 95 ms / 40 Gbps path, testing
whether the claim holds — i.e. whether storage stages or the WAN link
is the binding constraint, given enough credits to cover the BDP.
"""

from __future__ import annotations

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.fs.xfs import XfsFileSystem
from repro.hw.presets import wan_host
from repro.net.topology import wire_san, wire_wan
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, MIB, to_gbps

__all__ = ["run"]


def _san_backed_wan_host(ctx: Context, name: str):
    host = wan_host(ctx, name, with_ib=True)
    target_machine = wan_host(ctx, f"{name}-target", with_ib=True)
    wire_san(ctx, host, target_machine)
    target = IserTarget(ctx, target_machine, tuning="numa", n_links=2,
                        name=f"tgtd-{name}")
    for _ in range(4):
        target.create_lun(2 * GB)
    initiator = IserInitiator(ctx, host, target)
    ctx.sim.run(until=initiator.login_all())
    fss = [XfsFileSystem(ctx, initiator.devices[i])
           for i in sorted(initiator.devices)]
    return host, fss


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 30.0 if quick else 600.0
    report = ExperimentReport(
        "ext-wan-e2e",
        "E1 (extension): full storage-to-storage RFTP over the 95 ms WAN "
        "(testing §4.4's deployment claim)",
        data_headers=["configuration", "Gbps", "% of WAN link"],
    )
    # memory-to-memory baseline (what the paper measured)
    ctx_m = Context.create(seed=seed, cal=cal)
    src_m = wan_host(ctx_m, "nersc")
    dst_m = wan_host(ctx_m, "anl")
    link = wire_wan(src_m, dst_m)
    mem = RftpTransfer(
        ctx_m, src_m, dst_m, source="zero", sink="null",
        config=RftpConfig(block_size=16 * MIB, streams_per_link=4,
                          credits=64),
    ).run(duration)
    report.add_row(["memory-to-memory (paper's test)",
                    round(to_gbps(mem.goodput), 2),
                    f"{mem.goodput / link.rate:.0%}"])

    # full end-to-end with SANs on both sides (the paper's prediction)
    ctx = Context.create(seed=seed + 1, cal=cal)
    src_host, src_fs = _san_backed_wan_host(ctx, "nersc")
    dst_host, dst_fs = _san_backed_wan_host(ctx, "anl")
    wan_link = wire_wan(src_host, dst_host)
    e2e = RftpTransfer(
        ctx, src_host, dst_host, source=src_fs, sink=dst_fs,
        config=RftpConfig(block_size=16 * MIB, streams_per_link=4,
                          credits=64),
    ).run(duration)
    report.add_row(["storage-to-storage (this reproduction)",
                    round(to_gbps(e2e.goodput), 2),
                    f"{e2e.goodput / wan_link.rate:.0%}"])

    ratio = e2e.goodput / mem.goodput
    report.add_check(
        "claim: end-to-end ~= memory-to-memory on the WAN",
        "equal (§4.4 prediction)", f"{ratio:.2f}x", ok=ratio > 0.90,
    )
    report.add_check("WAN link stays the bottleneck", ">90% of link",
                     f"{e2e.goodput / wan_link.rate:.0%}",
                     ok=e2e.goodput > 0.85 * wan_link.rate)
    report.notes.append(
        "The SANs (2x IB FDR each, ~92-99 Gbps) out-run the 40 Gbps WAN "
        "link, so adding storage stages does not move the bottleneck — "
        "the paper's deployment claim holds in the model."
    )
    return report
