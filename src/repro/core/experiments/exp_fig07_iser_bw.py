"""Fig. 7: iSER bandwidth, default scheduling vs NUMA tuning.

fio against the raw iSER block devices: six tmpfs LUNs over two IB FDR
links, four threads per LUN, block sizes from 64 KiB to 16 MiB.

Paper anchors: read gains **+7.6%** from tuning; write gains **+19%**
(block >= 4 MiB); tuned reads are ≈**7.5%** faster than tuned writes
(RDMA WRITE vs RDMA READ); tuned write peak ≈ **94.8 Gbps**.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.fio import FioJob, run_fio
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import backend_lan_host, frontend_lan_host
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, KIB, MIB, to_gbps

__all__ = ["run", "sweep"]

BLOCK_SIZES = (64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)
PAPER_READ_GAIN = 1.076
PAPER_WRITE_GAIN = 1.19
PAPER_READ_OVER_WRITE = 1.075
PAPER_WRITE_PEAK_GBPS = 94.8


def _build(tuning: str, seed: int, cal: Calibration | None):
    ctx = Context.create(seed=seed, cal=cal)
    front = frontend_lan_host(ctx, "front", with_ib=True)
    back = backend_lan_host(ctx, "back")
    wire_san(ctx, front, back)
    target = IserTarget(ctx, back, tuning=tuning, n_links=2)
    for _ in range(6):
        target.create_lun(2 * GB)
    initiator = IserInitiator(ctx, front, target)
    ctx.sim.run(until=initiator.login_all())
    return ctx, front, target, initiator


def sweep(quick: bool = True, seed: int = 0, cal: Calibration | None = None,
          block_sizes=BLOCK_SIZES, numjobs: int = 4,
          ) -> Dict[Tuple[str, str, int], Tuple[float, float]]:
    """Run the full (tuning x rw x block size) grid.

    Returns ``{(tuning, rw, bs): (bandwidth_bytes_per_s, cpu_seconds)}``.
    """
    runtime = 10.0 if quick else 300.0
    out: Dict[Tuple[str, str, int], Tuple[float, float]] = {}
    for tuning in ("default", "numa"):
        for rw in ("read", "write"):
            for bs in block_sizes:
                ctx, front, target, initiator = _build(tuning, seed, cal)
                devices = [initiator.devices[i]
                           for i in sorted(initiator.devices)]
                job = FioJob(rw=rw, block_size=bs, numjobs=numjobs,
                             runtime=runtime)
                res = run_fio(ctx, front, devices, job)
                cpu = target.accounting().total_seconds
                out[(tuning, rw, bs)] = (res.bandwidth, cpu)
    return out


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    block_sizes = BLOCK_SIZES if not quick else (256 * KIB, 4 * MIB, 16 * MIB)
    grid = sweep(quick=quick, seed=seed, cal=cal, block_sizes=block_sizes)
    report = ExperimentReport(
        "fig07",
        "Fig. 7 iSER bandwidth: default vs NUMA-tuned, read & write",
        data_headers=["rw", "block size", "default Gbps", "NUMA Gbps", "gain"],
    )
    big = max(block_sizes)
    for rw in ("read", "write"):
        for bs in block_sizes:
            d = grid[("default", rw, bs)][0]
            n = grid[("numa", rw, bs)][0]
            report.add_row([
                rw, f"{bs // 1024} KiB", round(to_gbps(d), 1),
                round(to_gbps(n), 1), f"{n / d:.3f}x",
            ])

    read_gain = grid[("numa", "read", big)][0] / grid[("default", "read", big)][0]
    write_gain = grid[("numa", "write", big)][0] / grid[("default", "write", big)][0]
    r_over_w = grid[("numa", "read", big)][0] / grid[("numa", "write", big)][0]
    write_peak = to_gbps(grid[("numa", "write", big)][0])

    report.add_check("read tuning gain", f"{PAPER_READ_GAIN:.3f}x",
                     f"{read_gain:.3f}x", ok=1.02 < read_gain < 1.15)
    report.add_check("write tuning gain (large blocks)", f"{PAPER_WRITE_GAIN:.2f}x",
                     f"{write_gain:.3f}x", ok=1.10 < write_gain < 1.30)
    report.add_check("write gain exceeds read gain", "yes",
                     "yes" if write_gain > read_gain else "no",
                     ok=write_gain > read_gain)
    report.add_check("tuned read/write ratio", f"{PAPER_READ_OVER_WRITE:.3f}x",
                     f"{r_over_w:.3f}x", ok=1.03 < r_over_w < 1.12)
    report.add_check("tuned write peak (Gbps)", PAPER_WRITE_PEAK_GBPS,
                     round(write_peak, 1),
                     ok=abs(write_peak - PAPER_WRITE_PEAK_GBPS) / PAPER_WRITE_PEAK_GBPS < 0.08)
    return report
