"""Fig. 10: CPU utilization breakdown for RFTP and GridFTP (end-to-end).

Paper anchor: GridFTP shows high "sys" CPU (TCP stack + copies +
interrupts), RFTP's CPU is predominantly user-space protocol work and
far smaller per gigabit moved.

The RFTP and GridFTP systems are independent simulations, exposed as
two :class:`~repro.exec.task.SimTask` legs via :func:`plan`.
"""

from __future__ import annotations

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks
from repro.util.units import GB

__all__ = ["run", "plan", "assemble"]

_LEGS = "repro.core.experiments.e2e_legs"


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """The experiment as independent tasks (RFTP run, GridFTP run)."""
    duration = 30.0 if quick else 1500.0
    lun_size = 2 * GB if quick else 50 * GB
    common = {"duration": duration, "lun_size": lun_size, "mode": "uni"}
    return [
        SimTask(f"{_LEGS}:transfer_leg", {**common, "tool": "rftp"},
                seed=seed, cal=cal, label="fig10/rftp"),
        SimTask(f"{_LEGS}:transfer_leg", {**common, "tool": "gridftp"},
                seed=seed + 1, cal=cal, label="fig10/gridftp"),
    ]


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the legs' results."""
    rftp, gridftp = results
    report = ExperimentReport(
        "fig10",
        "Fig. 10 end-to-end CPU breakdown: RFTP vs GridFTP",
        data_headers=["tool", "side", "usr %", "sys %", "total %",
                      "CPU% per Gbps"],
    )

    rows = [
        ("RFTP", "sender", rftp.sender_cpu, rftp.goodput_gbps),
        ("RFTP", "receiver", rftp.receiver_cpu, rftp.goodput_gbps),
        ("GridFTP", "sender", gridftp.sender_cpu, gridftp.goodput_gbps),
        ("GridFTP", "receiver", gridftp.receiver_cpu, gridftp.goodput_gbps),
    ]
    for tool, side, cpu, gbps in rows:
        report.add_row([
            tool, side, round(cpu.usr), round(cpu.sys), round(cpu.total),
            round(cpu.total / max(gbps, 1e-9), 1),
        ])

    g_snd, r_snd = gridftp.sender_cpu, rftp.sender_cpu
    report.add_check("GridFTP sys% dominates its usr%", "yes",
                     "yes" if g_snd.sys > g_snd.usr else "no",
                     ok=g_snd.sys > g_snd.usr)
    report.add_check("RFTP is usr-dominated", "yes",
                     "yes" if r_snd.usr > r_snd.sys else "no",
                     ok=r_snd.usr > r_snd.sys)
    rftp_eff = rftp.sender_cpu.total / max(rftp.goodput_gbps, 1e-9)
    grid_eff = gridftp.sender_cpu.total / max(gridftp.goodput_gbps, 1e-9)
    report.add_check("CPU%-per-Gbps: GridFTP vs RFTP", ">5x worse",
                     f"{grid_eff / rftp_eff:.1f}x", ok=grid_eff > 4 * rftp_eff)
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
