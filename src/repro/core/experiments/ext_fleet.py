"""E7: fleet-scale fabric sweeps through the topology-sharded runtime.

The paper's testbed is a handful of hosts; the ROADMAP's north star is
the question operators actually face — what happens at datacenter
scale, where thousands of tenants multiplex pooled QPs over shared
NICs.  This extension runs N-host/M-tenant fabrics
(:mod:`repro.service.fabric`) through the topology-sharded runtime
(:mod:`repro.sim.shard`): each pod simulates independently on the
process pool and only per-epoch WAN boundary rates are exchanged, so
the sweep scales past what one event loop can hold while staying
seed-stable and worker-count-independent.

At each fleet size the ``pooled`` QP mode (RDMAvisor-style per-tenant
pools) and the ``per-job`` baseline (every job creates its own QP) run
at the **same seed** — identical arrivals, sizes, placements — so the
jobs/s and latency gap is purely the QP-cache and connection-manager
cliffs.  A differential leg anchors correctness: the same fabric
through the sharded and single-process reference paths must agree to
1e-6 on static scenarios and complete identical job counts under churn.

Environment override: ``REPRO_FLEET_HOSTS`` — comma-separated host
counts replacing the default sweep (CI's fleet-smoke runs ``128``).
The override is an ordinary leg parameter, so it hashes into the
result-cache identity.
"""

from __future__ import annotations

import os

from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble", "fleet_sizes"]

_LEGS = "repro.core.experiments.fleet_legs"

#: Offered load per host (jobs/s) and mean file size for the curve.
RATE_PER_HOST = 4.0
SIZE_MEAN_MIB = 64.0
#: QP accounting modes compared at each size (same seed).
MODES = ("pooled", "per-job")


def fleet_sizes(quick: bool = True) -> tuple[int, ...]:
    """Host counts to sweep (``REPRO_FLEET_HOSTS`` override, else defaults)."""
    text = os.environ.get("REPRO_FLEET_HOSTS", "").strip()
    if text:
        try:
            sizes = tuple(int(tok) for tok in text.split(",") if tok.strip())
        except ValueError:
            raise ValueError(
                "REPRO_FLEET_HOSTS must be comma-separated integers, "
                f"got {text!r}") from None
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError(
                f"REPRO_FLEET_HOSTS must be positive integers, got {text!r}")
        return sizes
    return (16, 32) if quick else (128, 512, 2048)


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
         ) -> list[SimTask]:
    """Per fleet size, one pooled and one per-job leg at the same seed,
    plus the sharded-vs-reference differential anchor."""
    sizes = fleet_sizes(quick)
    tasks: list[SimTask] = []
    for i, hosts in enumerate(sizes):
        for mode in MODES:
            tasks.append(SimTask(
                f"{_LEGS}:fleet_leg",
                {"hosts": hosts, "qp_mode": mode,
                 "rate_per_host": RATE_PER_HOST,
                 "size_mean_mib": SIZE_MEAN_MIB},
                seed=seed + i, cal=cal,
                label=f"fleet/{mode}-x{hosts}"))
    tasks.append(SimTask(
        f"{_LEGS}:diff_leg", {}, seed=seed + 91, cal=cal,
        label="fleet/differential"))
    return tasks


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Fold the legs into the fleet-scaling report."""
    sizes = fleet_sizes(quick)
    legs = {(leg["hosts"], leg["qp_mode"]): leg
            for leg in results[:2 * len(sizes)]}
    diff = results[2 * len(sizes)]

    report = ExperimentReport(
        "ext-fleet",
        "E7: fleet-scale fabric sweeps — sustained jobs/s and latency vs "
        "fleet size through the topology-sharded runtime, pooled QPs vs "
        "per-job creation (RDMAvisor-style cliffs)",
        data_headers=["hosts", "qp mode", "offered /s", "jobs/s",
                      "p50 ms", "p99 ms", "QPs created", "CM delay max ms",
                      "WAN util", "shed"],
    )
    for hosts in sizes:
        for mode in MODES:
            leg = legs[(hosts, mode)]
            report.add_row([
                hosts, mode,
                round(leg["offered_rate"], 1),
                round(leg["jobs_per_s"], 1),
                round(leg["p50_ms"], 1),
                round(leg["p99_ms"], 1),
                leg["qps_created"],
                round(leg["cm_delay_max_s"] * 1e3, 1),
                f"{leg['wan_util_max']:.0%}",
                leg["shed"],
            ])

    # -- correctness anchors: the CI fleet-smoke gate ---------------------
    report.add_check(
        "sharded == reference on static boundary scenarios",
        "max rel err <= 1e-6", f"{diff['static_max_rel_err']:.2e}",
        ok=diff["static_max_rel_err"] <= 1e-6)
    report.add_check(
        "sharded completes identical jobs under churn (fixed rounds)",
        f"{diff['churn_completed_reference']} jobs",
        diff["churn_completed_sharded"],
        ok=(diff["churn_completed_sharded"]
            == diff["churn_completed_reference"] > 0))
    report.add_check(
        "boundary exchange converged on every curve leg", "all converged",
        all(leg["converged"] for leg in legs.values()),
        ok=all(leg["converged"] for leg in legs.values()))
    report.add_check(
        "job accounting conserves (all legs)",
        "submitted == completed + shed + cancelled + active",
        all(leg["conserved"] for leg in legs.values()),
        ok=all(leg["conserved"] for leg in legs.values()))

    # -- the QP cliffs ----------------------------------------------------
    big = sizes[-1]
    pooled, perjob = legs[(big, "pooled")], legs[(big, "per-job")]
    report.add_check(
        f"pooling caps QP creations at {big} hosts",
        f"< {perjob['qps_created']} (per-job)", pooled["qps_created"],
        ok=0 < pooled["qps_created"] < perjob["qps_created"])
    report.add_check(
        "pooled QPs are reused across jobs", "> 0 reuses",
        pooled["qp_reuses"], ok=pooled["qp_reuses"] > 0)
    report.add_check(
        "per-job creation pays the CM queue",
        f"> {pooled['cm_delay_total_s']:.3f} s total (pooled)",
        f"{perjob['cm_delay_total_s']:.3f} s",
        ok=perjob["cm_delay_total_s"] > pooled["cm_delay_total_s"])
    report.add_check(
        "pooled mean latency <= per-job at equal job stream",
        f"<= {perjob['mean_ms']:.1f} ms", f"{pooled['mean_ms']:.1f} ms",
        ok=pooled["mean_ms"] <= perjob["mean_ms"])

    # -- capacity scaling -------------------------------------------------
    lo, hi = sizes[0], sizes[-1]
    if hi > lo:
        scale = hi / lo
        ratio = (legs[(hi, "pooled")]["jobs_per_s"]
                 / legs[(lo, "pooled")]["jobs_per_s"]
                 if legs[(lo, "pooled")]["jobs_per_s"] else 0.0)
        report.add_check(
            f"sustained jobs/s scales with the fleet ({lo} -> {hi} hosts)",
            f">= {0.85 * scale:.2f}x", f"{ratio:.2f}x",
            ok=ratio >= 0.85 * scale)
    report.add_check(
        "no load shedding at reference load", "0 shed",
        sum(leg["shed"] for leg in legs.values()),
        ok=all(leg["shed"] == 0 for leg in legs.values()))

    report.notes.append(
        f"At {big} hosts the per-job baseline creates "
        f"{perjob['qps_created']} QPs against the pool's "
        f"{pooled['qps_created']}: every creation is a serial CM exchange, "
        f"so its worst-case setup wait reaches "
        f"{perjob['cm_delay_max_s'] * 1e3:.1f} ms (pooled "
        f"{pooled['cm_delay_max_s'] * 1e3:.1f} ms) — the RDMAvisor "
        "connection-storm cliff, reproduced from the pod arrival rates.")
    report.notes.append(
        f"Sharded vs reference divergence on the static anchor: "
        f"{diff['static_max_rel_err']:.2e} after "
        f"{diff['static_rounds']} exchange round(s); churn anchor "
        f"completed {diff['churn_completed_sharded']} jobs in both modes. "
        "Pods simulate independently (one cell per pod, NUMA-local rails "
        "never cross the cut), so results are byte-identical at any "
        "worker or shard count.")
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the fleet-scaling report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
