"""Ablation A9 (extension): TCP vs RFTP on the long-haul path.

§4.4 motivates RDMA on the WAN: "Long-haul fat links [...] have a large
bandwidth delay product.  It is challenging for traditional network
protocols to fill up the network pipe."  This ablation quantifies the
claim (in the spirit of the authors' SC'12 paper [23]): one cubic TCP
stream vs one RFTP stream on the 95 ms / 40 Gbps loop, watching both the
ramp-up and the steady state.
"""

from __future__ import annotations

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import wan_host
from repro.kernel.numa import NumaPolicy
from repro.kernel.pages import place_region
from repro.kernel.process import SimProcess
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.net.topology import wire_wan
from repro.sim.context import Context
from repro.util.units import MIB, to_gbps

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 60.0 if quick else 600.0
    report = ExperimentReport(
        "ablation-tcp-wan",
        "A9 (extension): single-stream cubic TCP vs RFTP on the "
        "40G/95ms ANI loop",
        data_headers=["protocol", "first 1 s (Gbps)", "steady (Gbps)",
                      "loss events"],
    )

    # --- TCP ----------------------------------------------------------------
    ctx = Context.create(seed=seed, cal=cal)
    nersc, anl = wan_host(ctx, "n"), wan_host(ctx, "a")
    wire_wan(nersc, anl)
    sproc = SimProcess(nersc, "s", cpu_policy=NumaPolicy.bind(0))
    rproc = SimProcess(anl, "r", cpu_policy=NumaPolicy.bind(0))
    st, rt = sproc.spawn_thread(), rproc.spawn_thread()
    conn = TcpConnection(
        ctx, "wan-tcp",
        TcpEndpoint(st, nersc.pcie_slots[0].device,
                    place_region(1 << 30, sproc.mem_policy, 2, touch_node=0)),
        TcpEndpoint(rt, anl.pcie_slots[0].device,
                    place_region(1 << 30, rproc.mem_policy, 2, touch_node=0)),
        tuned_irq=True,
    )
    conn.open()
    ctx.sim.run(until=1.0)
    ctx.fluid.settle()
    tcp_early = conn.flow.transferred / 1.0
    ctx.sim.run(until=duration)
    ctx.fluid.settle()
    tcp_steady = (conn.flow.transferred - tcp_early * 1.0) / (duration - 1.0)
    tcp_losses = conn.stats.loss_events
    conn.close()
    report.add_row(["TCP (cubic, 1 stream)", round(to_gbps(tcp_early), 2),
                    round(to_gbps(tcp_steady), 2), tcp_losses])

    # --- RFTP ----------------------------------------------------------------
    ctx2 = Context.create(seed=seed + 1, cal=cal)
    n2, a2 = wan_host(ctx2, "n"), wan_host(ctx2, "a")
    wire_wan(n2, a2)
    xfer = RftpTransfer(ctx2, n2, a2, source="zero", sink="null",
                        config=RftpConfig(block_size=16 * MIB,
                                          streams_per_link=4))
    xfer.start()
    ctx2.sim.run(until=1.0)
    ctx2.fluid.settle()
    rftp_early = xfer.transferred() / 1.0
    ctx2.sim.run(until=duration)
    ctx2.fluid.settle()
    rftp_steady = (xfer.transferred() - rftp_early * 1.0) / (duration - 1.0)
    xfer.stop()
    report.add_row(["RFTP (4 streams)", round(to_gbps(rftp_early), 2),
                    round(to_gbps(rftp_steady), 2), 0])

    report.add_check("RFTP ramps immediately", "near line rate in 1 s",
                     f"{to_gbps(rftp_early):.1f} Gbps",
                     ok=rftp_early > 0.7 * rftp_steady)
    report.add_check("TCP slow start wastes the early window", "slow",
                     f"{to_gbps(tcp_early):.2f} Gbps first 1 s",
                     ok=tcp_early < 0.6 * tcp_steady)
    report.add_check("RFTP steady beats single-stream TCP", "yes",
                     f"{rftp_steady / max(tcp_steady, 1.0):.1f}x",
                     ok=rftp_steady > 1.5 * tcp_steady)
    return report
