"""Fig. 3: data-block transfer delay breakdown (quantified).

Figure 3 of the paper is a schematic: each block's end-to-end latency
decomposes into *data loading*, *data transmission* and *data
offloading*, at both source and sink — and "any one of the three
components can become a bottleneck".

This experiment quantifies the schematic for the actual testbed: it
measures each stage's sustained rate (SAN read, RoCE wire, SAN write),
derives the per-block delay breakdown for a 4 MiB block, identifies the
bottleneck stage, and computes the speedup RFTP's pipelining extracts
over a serial (GridFTP-style) block loop.
"""

from __future__ import annotations

from repro.apps.fio import FioJob, run_fio
from repro.core.breakdown import BlockDelayBreakdown
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB, MIB, fmt_seconds, to_gbps

__all__ = ["run"]

BLOCK = 4 * MIB


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    runtime = 10.0 if quick else 60.0
    report = ExperimentReport(
        "fig03",
        "Fig. 3 (quantified): per-block delay breakdown along the "
        "end-to-end path",
        data_headers=["stage", "sustained rate (Gbps)",
                      f"delay per {BLOCK // MIB} MiB block"],
    )
    system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=seed,
                                        cal=cal, lun_size=2 * GB)

    # stage 1: data loading (SAN A read)
    devices_a = [system.initiator_a.devices[i]
                 for i in sorted(system.initiator_a.devices)]
    load = run_fio(system.ctx, system.host_a, devices_a,
                   FioJob(rw="read", block_size=BLOCK, runtime=runtime))
    # stage 3: data offloading (SAN B write)
    devices_b = [system.initiator_b.devices[i]
                 for i in sorted(system.initiator_b.devices)]
    offload = run_fio(system.ctx, system.host_b, devices_b,
                      FioJob(rw="write", block_size=BLOCK, runtime=runtime))
    # stage 2: transmission (3 x RoCE wire)
    wire_rate = sum(link.rate for link in system.frontend_links)
    wire_delay = system.frontend_links[0].delay

    breakdown = BlockDelayBreakdown.from_rates(
        block_size=BLOCK,
        load_rate=load.bandwidth,
        wire_rate=wire_rate,
        offload_rate=offload.bandwidth,
        propagation=wire_delay,
    )
    report.add_row(["data loading (SAN A read)",
                    round(to_gbps(load.bandwidth), 1),
                    fmt_seconds(breakdown.load_seconds)])
    report.add_row(["data transmission (3x RoCE)",
                    round(to_gbps(wire_rate), 1),
                    fmt_seconds(breakdown.transmit_seconds)])
    report.add_row(["data offloading (SAN B write)",
                    round(to_gbps(offload.bandwidth), 1),
                    fmt_seconds(breakdown.offload_seconds)])

    report.add_check("bottleneck stage", "offload (file write, §4.3)",
                     breakdown.bottleneck(),
                     ok=breakdown.bottleneck() == "offload")
    speedup = breakdown.speedup_from_pipelining()
    report.add_check("pipelining speedup over a serial block loop",
                     "~3x (three stages)", f"{speedup:.2f}x",
                     ok=2.0 < speedup <= 3.0)
    # the pipelined per-block service time implies the end-to-end rate
    implied = BLOCK / breakdown.pipelined_seconds
    report.add_check("implied pipelined throughput matches Fig. 9 RFTP",
                     "~91 Gbps", f"{to_gbps(implied):.1f} Gbps",
                     ok=abs(to_gbps(implied) - 92.3) < 8)
    return report
