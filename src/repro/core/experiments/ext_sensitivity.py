"""Extension E2: calibration sensitivity analysis.

Perturbs every calibrated constant by ±20% and re-tests the paper's
qualitative shapes (Fig. 4/7/9 and the §2.3 motivating result).  The
reproduction's claim is that the shapes come from *mechanisms* — so
they must survive calibration noise.

Known, documented exception: pushing ``rdma_read_throughput_derate``
20% *below* its measured value (0.93 → 0.74, i.e. assuming RDMA READ is
26% slower than WRITE rather than the paper's 7.5%) makes the wire —
not NUMA placement — the binding constraint for writes, and the Fig. 7
write-gain-exceeds-read-gain shape flips.  That constant is directly
anchored to the paper's own measurement, so the perturbation is outside
its plausible range; the flip is evidence the model responds to its
inputs, not that the shape is tuned-in.
"""

from __future__ import annotations

from repro.core.calibration import CALIBRATION, Calibration
from repro.core.report import ExperimentReport
from repro.core.sensitivity import (
    PERTURBED_CONSTANTS,
    SHAPES,
    assemble_sensitivity,
    sensitivity_tasks,
)
from repro.exec import SimTask, run_tasks

__all__ = ["run", "plan", "assemble"]

#: fragilities that are understood and documented (see module docstring).
KNOWN_EXCEPTIONS = {
    ("rdma_read_throughput_derate", "-20%", "fig7: write gain >= read gain"),
}


def _constants(quick: bool):
    return PERTURBED_CONSTANTS if not quick else PERTURBED_CONSTANTS[:4] + (
        "rdma_read_throughput_derate",)


def plan(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> list[SimTask]:
    """The perturbation grid as independent tasks (one per cell)."""
    return sensitivity_tasks(constants=_constants(quick),
                             base=cal if cal is not None else CALIBRATION)


def assemble(results, quick: bool = True, seed: int = 0,
             cal: Calibration | None = None) -> ExperimentReport:
    """Build the paper-vs-measured report from the grid cells' results."""
    result = assemble_sensitivity(plan(quick=quick, seed=seed, cal=cal),
                                  results)
    report = ExperimentReport(
        "ext-sensitivity",
        "E2 (extension): shape robustness under +/-20% calibration shifts",
        data_headers=["constant", "delta"]
        + [s.split(":")[0] for s in SHAPES],
    )
    surviving = 0
    total = 0
    unexpected = []
    for (const, direction), row in sorted(result.outcomes.items()):
        report.add_row([const, direction]
                       + ["ok" if row[s] else "FLIPS" for s in SHAPES])
        for shape, ok in row.items():
            total += 1
            if ok:
                surviving += 1
            elif (const, direction, shape) not in KNOWN_EXCEPTIONS:
                unexpected.append((const, direction, shape))

    report.add_check("shapes surviving perturbation",
                     f"{total}/{total} or documented exceptions",
                     f"{surviving}/{total}",
                     ok=surviving >= total - len(KNOWN_EXCEPTIONS))
    report.add_check("unexpected fragilities", 0, len(unexpected),
                     ok=not unexpected)
    if surviving < total:
        report.notes.append(
            "The only flip is rdma_read_throughput_derate at -20% "
            "(0.93 -> 0.74): with RDMA READ that heavily derated the "
            "wire, not NUMA placement, binds writes.  The constant is "
            "anchored directly to the paper's measured 7.5% read/write "
            "gap, so this perturbation is outside its plausible range."
        )
    return report


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    results = run_tasks(plan(quick=quick, seed=seed, cal=cal))
    return assemble(results, quick=quick, seed=seed, cal=cal)
