"""Fig. 4: CPU cost breakdown of RFTP vs iperf at 40 Gbps.

The paper's five-minute test: source loads from ``/dev/zero``, pushes
over one 40 Gbps RoCE link, sink dumps to ``/dev/null``.  Both tools hit
39 Gbps; the CPU bill differs wildly:

* RFTP/RDMA: **122%** total, of which user protocol **56%**, copies 0%;
* iperf/TCP: **642%** total, kernel protocol **311%**, copies **213%**;
* loading from /dev/zero is ~**70%** in both cases, offload <1%.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.iperf import run_iperf
from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.breakdown import fig4_categories
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.kernel.accounting import CpuAccounting
from repro.net.link import connect
from repro.net.topology import LAN_ROCE_DELAY
from repro.sim.context import Context

__all__ = ["run"]

PAPER = {
    "rftp_total": 122.0,
    "rftp_user": 56.0,
    "tcp_total": 642.0,
    "tcp_kernel": 311.0,
    "tcp_copy": 213.0,
    "load": 70.0,
}


def _single_link_pair(ctx: Context):
    a = Machine(ctx, "src", pcie_sockets=(0,))
    b = Machine(ctx, "dst", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb, delay=LAN_ROCE_DELAY)
    return a, b


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 20.0 if quick else 300.0
    report = ExperimentReport(
        "fig04",
        "Fig. 4 CPU cost of RFTP (RDMA) vs iperf (TCP) at ~39 Gbps",
        data_headers=["tool", "Gbps", "category", "CPU %"],
    )

    # ---- RFTP: /dev/zero -> link -> /dev/null --------------------------------
    ctx = Context.create(seed=seed, cal=cal)
    a, b = _single_link_pair(ctx)
    xfer = RftpTransfer(
        ctx, a, b, source="zero", sink="null",
        config=RftpConfig(streams_per_link=2, numa_tuned=True),
        name="rftp-fig4",
    )
    res = xfer.run(duration)
    rftp_gbps = res.goodput_gbps
    merged = CpuAccounting("rftp")
    for src in (res.sender_accounting, res.receiver_accounting):
        merged.add_many(src.seconds_by_category())
    rftp_cats: Dict[str, float] = fig4_categories([merged], duration)
    rftp_total = sum(rftp_cats.values())
    for cat, pct in sorted(rftp_cats.items(), key=lambda kv: -kv[1]):
        if pct >= 0.5:
            report.add_row(["RFTP", round(rftp_gbps, 1), cat, round(pct, 1)])

    # ---- iperf: same path over TCP -------------------------------------------
    ctx2 = Context.create(seed=seed + 1, cal=cal)
    a2, b2 = _single_link_pair(ctx2)
    ires = run_iperf(
        ctx2, a2, b2, duration=duration, streams_per_link=4,
        bidirectional=False, numa_tuned=True,
    )
    tcp_gbps = ires.aggregate_gbps
    # add the /dev/zero load cost iperf itself pays at the source
    load_pct = 100.0 * ires.aggregate_rate / ctx2.cal.dev_zero_fill_rate
    tcp_cats = fig4_categories([ires.accounting], duration)
    tcp_cats["data loading"] = tcp_cats.get("data loading", 0.0) + load_pct
    tcp_total = sum(tcp_cats.values())
    for cat, pct in sorted(tcp_cats.items(), key=lambda kv: -kv[1]):
        if pct >= 0.5:
            report.add_row(["iperf/TCP", round(tcp_gbps, 1), cat, round(pct, 1)])

    # ---- checks -----------------------------------------------------------------
    report.add_check("RFTP rate (Gbps)", 39, round(rftp_gbps, 1),
                     ok=35 < rftp_gbps < 41)
    report.add_check("TCP rate (Gbps)", 39, round(tcp_gbps, 1),
                     ok=35 < tcp_gbps < 41)
    report.add_check("RFTP total CPU %", PAPER["rftp_total"], round(rftp_total),
                     ok=abs(rftp_total - PAPER["rftp_total"]) < 30)
    report.add_check("RFTP user-protocol %", PAPER["rftp_user"],
                     round(rftp_cats.get("user protocol", 0.0)),
                     ok=abs(rftp_cats.get("user protocol", 0.0)
                            - PAPER["rftp_user"]) < 15)
    report.add_check("RFTP copy %", 0, round(rftp_cats.get("data copy", 0.0)),
                     ok=rftp_cats.get("data copy", 0.0) < 1)
    report.add_check("TCP total CPU %", PAPER["tcp_total"], round(tcp_total),
                     ok=abs(tcp_total - PAPER["tcp_total"]) < 130)
    report.add_check("TCP kernel-protocol %", PAPER["tcp_kernel"],
                     round(tcp_cats.get("kernel protocol", 0.0)),
                     ok=abs(tcp_cats.get("kernel protocol", 0.0)
                            - PAPER["tcp_kernel"]) < 60)
    report.add_check("TCP copy %", PAPER["tcp_copy"],
                     round(tcp_cats.get("data copy", 0.0)),
                     ok=abs(tcp_cats.get("data copy", 0.0) - PAPER["tcp_copy"]) < 50)
    report.add_check("TCP/RDMA total-CPU ratio", "5.3x",
                     f"{tcp_total / max(rftp_total, 1e-9):.1f}x",
                     ok=tcp_total > 3 * rftp_total)
    return report
