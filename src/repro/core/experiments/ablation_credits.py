"""Ablation A8 (extension): RFTP credit budget on the high-BDP WAN.

Fig. 13's per-stream ceiling is ``credits x block / RTT``.  This ablation
sweeps the credit budget at a fixed 4 MiB block on the 95 ms path and
shows the linear region, the knee, and saturation at the link rate —
the sizing rule an operator needs ("outstanding bytes must cover the
bandwidth-delay product", here ~475 MB).
"""

from __future__ import annotations

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import wan_host
from repro.net.topology import WAN_DELAY, wire_wan
from repro.sim.context import Context
from repro.util.units import MIB, to_gbps

__all__ = ["run"]

CREDITS = (2, 8, 32, 128, 512)
BLOCK = 4 * MIB


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 20.0 if quick else 120.0
    rtt = 2 * WAN_DELAY
    report = ExperimentReport(
        "ablation-credits",
        "A8 (extension): RFTP credit sweep on the 40G/95ms WAN "
        "(block 4 MiB, 1 stream)",
        data_headers=["credits", "outstanding (MB)", "predicted Gbps",
                      "measured Gbps"],
    )
    rates = {}
    link_rate = None
    for credits in CREDITS:
        ctx = Context.create(seed=seed, cal=cal)
        nersc, anl = wan_host(ctx, "n"), wan_host(ctx, "a")
        link = wire_wan(nersc, anl)
        link_rate = link.rate
        res = RftpTransfer(
            ctx, nersc, anl, source="zero", sink="null",
            config=RftpConfig(block_size=BLOCK, streams_per_link=1,
                              credits=credits),
        ).run(duration)
        rates[credits] = res.goodput
        predicted = min(credits * BLOCK / rtt, link.rate)
        report.add_row([
            credits, round(credits * BLOCK / 1e6),
            round(to_gbps(predicted), 2), round(to_gbps(res.goodput), 2),
        ])

    # linear region: doubling credits ~doubles goodput
    report.add_check("linear region (2 -> 8 credits)", "~4x",
                     f"{rates[8] / rates[2]:.2f}x",
                     ok=3.5 < rates[8] / rates[2] < 4.5)
    # saturation: past the BDP, more credits add nothing
    report.add_check("saturated past the BDP", "flat",
                     f"512/128 = {rates[512] / rates[128]:.3f}x",
                     ok=rates[512] / rates[128] < 1.05)
    bdp_mb = link_rate * rtt / 1e6
    knee_credits = bdp_mb * 1e6 / BLOCK
    report.add_check("knee near BDP/block", f"~{knee_credits:.0f} credits",
                     "between 32 and 512",
                     ok=rates[32] < 0.9 * rates[512])
    report.add_check("peak fills the link", ">90%",
                     f"{rates[512] / link_rate:.0%}",
                     ok=rates[512] > 0.9 * link_rate)
    return report
