"""Extension E4: the 100 GbE upgrade path (the paper's ref [5]).

The paper cites "New Mellanox interconnect to break 100G throughput"
(2012) — single-port 100 GbE was imminent.  This extension asks the
question an operator planning that upgrade needs answered: *does
swapping the three 40 Gbps RoCE ports for one 100 GbE port make the
end-to-end system faster?*

Three configurations, same SAN-backed end-to-end workload:

1. the paper's testbed (3 x 40G front-end, 2 x FDR per SAN);
2. front-end upgraded to 1 x 100 GbE (PCIe Gen3 x16) — SAN unchanged;
3. front-end upgraded **and** each SAN given a third FDR link.

The paper's holistic thesis predicts (2) buys nothing — the narrowest
stage is the SAN write path — and only (3) moves the needle.
"""

from __future__ import annotations

from typing import List

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.fs.xfs import XfsFileSystem
from repro.hw.nic import Nic, NicKind
from repro.hw.topology import Machine
from repro.net.topology import LAN_ROCE_DELAY, wire_san
from repro.net.link import connect
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, to_gbps

__all__ = ["run"]


def _host(ctx, name, roce_kinds, n_ib):
    pcie = tuple([0, 1, 0][: len(roce_kinds)]) + tuple([0, 1, 0][:n_ib])
    m = Machine(ctx, name, n_sockets=2, cores_per_socket=8, ghz=2.2,
                mem_bytes_per_node=64 << 30, pcie_sockets=pcie)
    for slot, kind in zip(m.pcie_slots, roce_kinds):
        Nic(m, slot, kind, mtu=9000)
        if kind is NicKind.ROCE_100G:
            # 100 GbE ships on PCIe Gen3 x16 (x8 would cap it at ~50 Gb/s)
            slot.to_device.set_capacity(12.4e9)
            slot.from_device.set_capacity(12.4e9)
    for slot in m.pcie_slots[len(roce_kinds):]:
        Nic(m, slot, NicKind.IB_FDR, mtu=65520)
    return m


def _target(ctx, name, n_ib):
    pcie = tuple([0, 1, 0][:n_ib])
    m = Machine(ctx, name, n_sockets=2, cores_per_socket=8, ghz=2.0,
                mem_bytes_per_node=192 << 30, pcie_sockets=pcie)
    for slot in m.pcie_slots:
        Nic(m, slot, NicKind.IB_FDR, mtu=65520)
    return m


def _measure(roce_kinds: List[NicKind], n_ib: int, seed: int,
             cal: Calibration | None, duration: float) -> float:
    ctx = Context.create(seed=seed, cal=cal)
    host_a = _host(ctx, "host-a", roce_kinds, n_ib)
    host_b = _host(ctx, "host-b", roce_kinds, n_ib)
    tgt_a_m = _target(ctx, "tgt-a", n_ib)
    tgt_b_m = _target(ctx, "tgt-b", n_ib)
    # front-end links
    a_roce = [s.device for s in host_a.pcie_slots[: len(roce_kinds)]]
    b_roce = [s.device for s in host_b.pcie_slots[: len(roce_kinds)]]
    for na, nb in zip(a_roce, b_roce):
        connect(na, nb, delay=LAN_ROCE_DELAY)
    # SANs
    wire_san(ctx, host_a, tgt_a_m)
    wire_san(ctx, host_b, tgt_b_m)
    tgt_a = IserTarget(ctx, tgt_a_m, tuning="numa", n_links=n_ib, name="ta")
    tgt_b = IserTarget(ctx, tgt_b_m, tuning="numa", n_links=n_ib, name="tb")
    for _ in range(6):
        tgt_a.create_lun(2 * GB)
        tgt_b.create_lun(2 * GB)
    ini_a = IserInitiator(ctx, host_a, tgt_a)
    ini_b = IserInitiator(ctx, host_b, tgt_b)
    ctx.sim.run(until=ctx.sim.all_of([ini_a.login_all(), ini_b.login_all()]))
    fs_a = [XfsFileSystem(ctx, ini_a.devices[i]) for i in sorted(ini_a.devices)]
    fs_b = [XfsFileSystem(ctx, ini_b.devices[i]) for i in sorted(ini_b.devices)]
    streams = max(2, 6 // len(roce_kinds))
    xfer = RftpTransfer(
        ctx, host_a, host_b, source=fs_a, sink=fs_b,
        # a single fat port needs the I/O worker team the three slim
        # ports shared: scale workers with per-port speed
        config=RftpConfig(streams_per_link=streams,
                          io_threads_per_link=2 * streams),
    )
    return xfer.run(duration).goodput


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    duration = 20.0 if quick else 300.0
    report = ExperimentReport(
        "ext-100g",
        "E4 (extension): does a 100 GbE front-end upgrade help? "
        "(the paper's holistic thesis, quantified)",
        data_headers=["configuration", "end-to-end Gbps"],
    )
    baseline = _measure([NicKind.ROCE_QDR] * 3, 2, seed, cal, duration)
    front_only = _measure([NicKind.ROCE_100G], 2, seed + 1, cal, duration)
    both = _measure([NicKind.ROCE_100G], 3, seed + 2, cal, duration)
    report.add_row(["paper testbed: 3x40G + 2xFDR SANs",
                    round(to_gbps(baseline), 1)])
    report.add_row(["front-end only: 1x100GbE + 2xFDR SANs",
                    round(to_gbps(front_only), 1)])
    report.add_row(["both: 1x100GbE + 3xFDR SANs",
                    round(to_gbps(both), 1)])

    report.add_check("front-end upgrade alone buys nothing", "~1.00x",
                     f"{front_only / baseline:.2f}x",
                     ok=0.97 < front_only / baseline < 1.03)
    report.add_check("upgrading the SAN too unlocks the new port", ">1.05x",
                     f"{both / baseline:.2f}x", ok=both > 1.05 * baseline)
    report.add_check("upgraded system approaches 100 Gbps", ">95 Gbps",
                     round(to_gbps(both), 1), ok=to_gbps(both) > 95)
    report.notes.append(
        "The paper's conclusion restated as a planning rule: the narrowest "
        "stage is the SAN write path, so a faster front-end port changes "
        "nothing until the back-end grows with it."
    )
    return report
