"""Ablation A5: LUN count sweep (§4.1).

The paper exports six LUNs "to spread parallel IO requests into
different banks of the main memory" and load-balance the two IB links.
This ablation shows aggregate bandwidth versus the number of LUNs: one
LUN serializes onto one link/bank; a handful unlock both links.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.fio import FioJob, run_fio
from repro.core.calibration import Calibration
from repro.core.report import ExperimentReport
from repro.hw.presets import backend_lan_host, frontend_lan_host
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage.initiator import IserInitiator
from repro.storage.target import IserTarget
from repro.util.units import GB, MIB, to_gbps

__all__ = ["run"]

LUN_COUNTS = (1, 2, 4, 6)


def run(quick: bool = True, seed: int = 0, cal: Calibration | None = None
        ) -> ExperimentReport:
    """Run the experiment; returns the paper-vs-measured report."""
    runtime = 10.0 if quick else 120.0
    report = ExperimentReport(
        "ablation-luns",
        "A5: aggregate iSER bandwidth vs number of exported LUNs",
        data_headers=["LUNs", "links used", "Gbps"],
    )
    rates: Dict[int, float] = {}
    for n_luns in LUN_COUNTS:
        ctx = Context.create(seed=seed, cal=cal)
        front = frontend_lan_host(ctx, "front", with_ib=True)
        back = backend_lan_host(ctx, "back")
        wire_san(ctx, front, back)
        target = IserTarget(ctx, back, tuning="numa", n_links=2)
        for _ in range(n_luns):
            target.create_lun(GB)
        initiator = IserInitiator(ctx, front, target)
        ctx.sim.run(until=initiator.login_all())
        devices = [initiator.devices[i] for i in sorted(initiator.devices)]
        job = FioJob(rw="read", block_size=4 * MIB, numjobs=4, runtime=runtime)
        res = run_fio(ctx, front, devices, job)
        rates[n_luns] = res.bandwidth
        links = len({lun.link_index for lun in target.luns})
        report.add_row([n_luns, links, round(to_gbps(res.bandwidth), 1)])

    report.add_check("2 LUNs unlock the second IB link", ">1.5x of 1 LUN",
                     f"{rates[2] / rates[1]:.2f}x",
                     ok=rates[2] / rates[1] > 1.5)
    report.add_check("6 LUNs saturate both links", "~same as 2-4",
                     f"6/4 = {rates[6] / rates[4]:.3f}x",
                     ok=0.9 < rates[6] / rates[4] < 1.15)
    monotone = all(rates[a] <= rates[b] * 1.02
                   for a, b in zip(LUN_COUNTS, LUN_COUNTS[1:]))
    report.add_check("bandwidth non-decreasing in LUNs", "yes",
                     "yes" if monotone else "no", ok=monotone)
    return report
