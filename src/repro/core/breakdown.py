"""Cost and delay breakdowns (Figures 3, 4, 10, 12, 14).

Two views of where the work goes:

* :func:`fig4_categories` — maps the library's accounting categories to
  the paper's Fig. 4 buckets (data loading, user protocol, kernel
  protocol, copies, offloading, interrupts) in percent-of-one-core;
* :class:`BlockDelayBreakdown` — the Fig. 3 view: the latency of one
  data block decomposed into load / transmit / offload components given
  the stage rates along a path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.kernel.accounting import CpuAccounting
from repro.util.validation import check_positive

__all__ = ["fig4_categories", "BlockDelayBreakdown", "FIG4_LABELS"]

#: paper-facing labels for Fig. 4-style breakdowns.
FIG4_LABELS = {
    "load": "data loading",
    "usr_proto": "user protocol",
    "sys_proto": "kernel protocol",
    "copy": "data copy",
    "offload": "data offloading",
    "irq": "interrupts",
    "coherence": "coherence stalls",
    "io": "I/O bookkeeping",
}


def fig4_categories(
    accountings: Iterable[CpuAccounting], wall: float
) -> Dict[str, float]:
    """Aggregate CPU percent-of-one-core per Fig. 4 bucket.

    Sums the given ledgers (e.g. all sender- and receiver-side threads,
    matching the paper's "total CPU" convention) over *wall* seconds.
    """
    check_positive("wall", wall)
    total: Dict[str, float] = {}
    for acc in accountings:
        for cat, seconds in acc.seconds_by_category().items():
            label = FIG4_LABELS.get(cat, cat)
            total[label] = total.get(label, 0.0) + 100.0 * seconds / wall
    return total


@dataclass(frozen=True)
class BlockDelayBreakdown:
    """Latency of one block through load -> transmit -> offload (Fig. 3).

    Two notions of "transmit time" matter and are kept apart:

    * ``transmit_seconds`` — what the block *experiences*: serialization
      plus propagation (and any per-block control overhead).  Governs
      per-block latency.
    * ``transmit_occupancy`` — how long the block *occupies* the wire:
      serialization only.  Propagation pipelines perfectly, so occupancy
      (not latency) decides throughput bottlenecks.
    """

    block_size: int
    load_seconds: float
    transmit_seconds: float
    offload_seconds: float
    transmit_occupancy: float

    @classmethod
    def from_rates(
        cls,
        block_size: int,
        load_rate: float,
        wire_rate: float,
        offload_rate: float,
        propagation: float = 0.0,
        per_block_overhead: float = 0.0,
    ) -> "BlockDelayBreakdown":
        """Build from per-stage sustained rates (bytes/s)."""
        check_positive("block_size", block_size)
        for name, rate in (
            ("load_rate", load_rate),
            ("wire_rate", wire_rate),
            ("offload_rate", offload_rate),
        ):
            check_positive(name, rate)
        occupancy = block_size / wire_rate + per_block_overhead
        return cls(
            block_size=block_size,
            load_seconds=block_size / load_rate,
            transmit_seconds=occupancy + propagation,
            offload_seconds=block_size / offload_rate,
            transmit_occupancy=occupancy,
        )

    @property
    def total_seconds(self) -> float:
        """Serial (unpipelined) per-block latency."""
        return self.load_seconds + self.transmit_seconds + self.offload_seconds

    @property
    def pipelined_seconds(self) -> float:
        """Per-block service time when stages overlap (the max occupancy)."""
        return max(self.load_seconds, self.transmit_occupancy,
                   self.offload_seconds)

    def bottleneck(self) -> str:
        """The stage limiting *throughput* (occupancy, not latency)."""
        stages = {
            "load": self.load_seconds,
            "transmit": self.transmit_occupancy,
            "offload": self.offload_seconds,
        }
        return max(stages, key=stages.get)

    def speedup_from_pipelining(self) -> float:
        """Serial latency over pipelined service time (RFTP's win)."""
        return self.total_seconds / self.pipelined_seconds
