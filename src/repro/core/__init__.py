"""Core: calibration, the end-to-end system builder, tuning, experiments.

This package hosts the paper's primary contribution — the composed,
NUMA-tuned, RDMA-based end-to-end transfer system — plus the measurement
and reporting machinery used by the benchmark harness.

Submodules are imported lazily by callers (``repro.core.system`` etc.);
only the always-cheap calibration surface is re-exported here to avoid
import cycles during bottom-up construction.
"""

from repro.core.calibration import CALIBRATION, Calibration

__all__ = ["Calibration", "CALIBRATION"]


def __getattr__(name: str):
    """Lazily expose the heavyweight composition layer."""
    if name == "EndToEndSystem":
        from repro.core.system import EndToEndSystem

        return EndToEndSystem
    if name == "TuningPolicy":
        from repro.core.tuning import TuningPolicy

        return TuningPolicy
    if name in ("RunResult", "CpuBreakdown"):
        from repro.core import metrics

        return getattr(metrics, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
