#!/usr/bin/env python
"""Scenario: tuning RFTP for a long-haul (high-BDP) path.

The DOE ANI loop (Fig. 6): 40 Gbps RoCE, 4000 miles, 95 ms RTT — a
bandwidth-delay product near 500 MB.  On such a path the knobs that
don't matter on a LAN dominate: block size (control-message
amortization) and parallel streams x credits (how much data can be in
flight).

This example sweeps both knobs (Fig. 13's grid), prints the achieved
bandwidth matrix, and recommends the cheapest configuration that
reaches 95% of the link.

Run:  python examples/wan_tuning.py
"""

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.hw.presets import wan_host
from repro.net.topology import wire_wan
from repro.sim.context import Context
from repro.util.tables import Table
from repro.util.units import KIB, MIB, to_gbps

BLOCK_SIZES = (256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)
STREAMS = (1, 2, 4, 8)


def measure(block_size: int, streams: int, seed: int = 0) -> tuple[float, float]:
    ctx = Context.create(seed=seed)
    nersc, anl = wan_host(ctx, "nersc"), wan_host(ctx, "anl")
    wire_wan(nersc, anl)
    xfer = RftpTransfer(
        ctx, nersc, anl, source="zero", sink="null",
        config=RftpConfig(block_size=block_size, streams_per_link=streams),
    )
    res = xfer.run(20.0)
    cpu = (res.sender_accounting.total_seconds
           + res.receiver_accounting.total_seconds) / res.duration
    return res.goodput, cpu


def main() -> None:
    ctx = Context.create()
    link_rate = wire_wan(wan_host(ctx, "a"), wan_host(ctx, "b")).rate
    print("ANI loop: 40 Gbps RoCE, RTT 95 ms, usable rate "
          f"{to_gbps(link_rate):.1f} Gbps, BDP "
          f"{link_rate * 0.095 / 1e6:.0f} MB\n")

    table = Table(
        ["streams \\ block"] + [f"{bs // 1024} KiB" for bs in BLOCK_SIZES],
        title="RFTP goodput (Gbps) over the WAN (Fig. 13 grid)",
    )
    grid = {}
    for s in STREAMS:
        row = [s]
        for bs in BLOCK_SIZES:
            goodput, cpu = measure(bs, s)
            grid[(bs, s)] = (goodput, cpu)
            row.append(round(to_gbps(goodput), 2))
        table.add_row(row)
    print(table.render())
    print()

    target = 0.95 * link_rate
    viable = [(bs, s) for (bs, s), (g, _) in grid.items() if g >= target]
    if viable:
        # cheapest = fewest streams, then smallest block (least memory)
        bs, s = min(viable, key=lambda k: (k[1], k[0]))
        g, cpu = grid[(bs, s)]
        print(f"Recommendation: {s} stream(s) x {bs // MIB} MiB blocks -> "
              f"{to_gbps(g):.1f} Gbps ({g / link_rate:.0%} of the link) "
              f"at {100 * cpu:.0f}% CPU")
    else:
        best = max(grid, key=lambda k: grid[k][0])
        print(f"No configuration reaches 95%; best is {best}")
    print("\nRule of thumb from the sweep: per-stream goodput is capped at")
    print("credits x block / RTT until the link saturates - raise block")
    print("size (or credits) before adding streams.")


if __name__ == "__main__":
    main()
