#!/usr/bin/env python
"""Scenario: a verified file transfer through the full protocol stack.

Unlike the sustained-throughput runs, this example moves *real bytes*:
a file is created on the source host's filesystem, transferred block by
block through RFTP's actual control framing (FileRequest /
BlockDescriptor / CreditGrant / TransferComplete), carried by simulated
RDMA WRITE work requests with rkey protection, checksummed per block,
and digest-verified end to end at the sink.

This is the correctness story behind the performance numbers: the same
protocol machinery the fluid engine models is exercised byte-exactly.

Run:  python examples/verified_transfer.py
"""

import numpy as np

from repro.apps.rftp import rftp_send_file
from repro.datapath.integrity import StreamingDigest
from repro.fs import O_RDONLY, O_RDWR, XfsFileSystem
from repro.hw import Machine, Nic, NicKind
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.sim.context import Context
from repro.storage import RamDisk
from repro.util.units import MIB, fmt_bytes, fmt_rate, fmt_seconds


def main() -> None:
    ctx = Context.create(seed=0)

    # two hosts, one 40 Gbps RoCE link
    src_host = Machine(ctx, "src-host", pcie_sockets=(0,))
    dst_host = Machine(ctx, "dst-host", pcie_sockets=(0,))
    src_nic = Nic(src_host, src_host.pcie_slots[0], NicKind.ROCE_QDR)
    dst_nic = Nic(dst_host, dst_host.pcie_slots[0], NicKind.ROCE_QDR)
    connect(src_nic, dst_nic)

    # a filesystem on each side (RAM disks that really store bytes)
    src_fs = XfsFileSystem(
        ctx, RamDisk(ctx, "src-disk",
                     place_region(64 * MIB, NumaPolicy.bind(0), 2),
                     store_data=True))
    dst_fs = XfsFileSystem(
        ctx, RamDisk(ctx, "dst-disk",
                     place_region(64 * MIB, NumaPolicy.bind(0), 2),
                     store_data=True))

    # create a 24 MiB file of pseudo-random bytes
    size = 24 * MIB + 4321  # unaligned tail on purpose
    rng = np.random.default_rng(7)
    payload = rng.integers(0, 256, size).astype(np.uint8)
    src_fs.create("dataset.h5", size)
    ctx.sim.run(until=src_fs.open("dataset.h5", O_RDWR).write(payload))
    expected = StreamingDigest().update(payload).hexdigest()
    print(f"source file: {fmt_bytes(size)}, blake2b={expected[:16]}...")

    # transfer it
    t0 = ctx.sim.now
    done = rftp_send_file(
        ctx,
        source_fs=src_fs, sink_fs=dst_fs,
        src_path="dataset.h5", dst_path="dataset.h5",
        client_nic=src_nic, server_nic=dst_nic,
        block_size=2 * MIB, credits=8,
    )
    digest = ctx.sim.run(until=done)
    elapsed = ctx.sim.now - t0
    print(f"transferred in {fmt_seconds(elapsed)} simulated "
          f"({fmt_rate(size / elapsed)})")
    print(f"sink digest:  blake2b={digest[:16]}... "
          f"{'VERIFIED' if digest == expected else 'MISMATCH!'}")

    # belt and braces: read the sink file back and compare every byte
    out = np.zeros(size, dtype=np.uint8)
    ctx.sim.run(until=dst_fs.open("dataset.h5", O_RDONLY).read(size, data=out))
    identical = bool(np.array_equal(out, payload))
    print("byte-for-byte comparison: "
          f"{'identical' if identical else 'DIFFERENT'}")
    assert digest == expected and identical


if __name__ == "__main__":
    main()
