#!/usr/bin/env python
"""Scenario: nightly bulk synchronization between two data centers.

The paper's motivating workload (Fig. 1): a science program must move a
multi-hundred-gigabyte dataset — say a day of climate-simulation output —
from the compute facility's SAN to a remote analysis facility, inside a
fixed maintenance window.

This example sizes that window: it measures the sustained end-to-end
rate for every (tool, tuning) combination and reports the projected
wall-clock time to sync a 300 GB dataset (the paper's test corpus: six
50 GB LUNs), plus what the operator pays in CPU.

Run:  python examples/datacenter_sync.py
"""

from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.tables import Table
from repro.util.units import GB, fmt_seconds

DATASET_BYTES = 300 * GB


def main() -> None:
    table = Table(
        ["tool", "tuning", "Gbps", "time to sync 300 GB", "host CPU (cores)"],
        title="Nightly 300 GB dataset synchronization",
    )
    measurements = []
    seed = 0
    for tool in ("RFTP", "GridFTP"):
        for policy in (TuningPolicy.default(), TuningPolicy.numa_bound()):
            system = EndToEndSystem.lan_testbed(policy, seed=seed,
                                                lun_size=2 * GB)
            seed += 1
            if tool == "RFTP":
                res = system.run_rftp_transfer(duration=20.0)
            else:
                res = system.run_gridftp_transfer(duration=20.0)
            sync_time = DATASET_BYTES / res.goodput
            cores = (res.sender_cpu.total + res.receiver_cpu.total) / 100.0
            table.add_row([
                tool, policy.label, round(res.goodput_gbps, 1),
                fmt_seconds(sync_time), round(cores, 1),
            ])
            measurements.append((tool, policy.label, sync_time))
    print(table.render())
    print()

    best = min(measurements, key=lambda m: m[2])
    worst = max(measurements, key=lambda m: m[2])
    print(f"Best:  {best[0]} ({best[1]}) syncs in {fmt_seconds(best[2])}")
    print(f"Worst: {worst[0]} ({worst[1]}) needs {fmt_seconds(worst[2])} "
          f"- {worst[2] / best[2]:.1f}x longer")
    print("\nThe paper's conclusion in one number: an RDMA-based, NUMA-tuned")
    print("pipeline turns an overnight sync into a coffee break.")


if __name__ == "__main__":
    main()
