#!/usr/bin/env python
"""Scenario: surviving a mid-transfer link failure.

Production bulk movers must cope with flapping optics.  This drill
pushes a directory of files through RFTP's session layer while the only
link fails mid-transfer; the first attempt dies, the operator re-runs
the sync after the link is restored, and the server's manifest makes the
retry skip everything already delivered — only the remainder moves.

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro.apps.rftp import RftpClient, RftpServer
from repro.fs import O_RDWR, XfsFileSystem
from repro.hw import Machine, Nic, NicKind
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.sim.context import Context
from repro.storage import RamDisk
from repro.util.units import MIB, fmt_seconds


def main() -> None:
    ctx = Context.create(seed=0)
    a = Machine(ctx, "client-host", pcie_sockets=(0,))
    b = Machine(ctx, "server-host", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    link = connect(na, nb)

    src_fs = XfsFileSystem(ctx, RamDisk(
        ctx, "src", place_region(256 * MIB, NumaPolicy.bind(0), 2),
        store_data=True))
    dst_fs = XfsFileSystem(ctx, RamDisk(
        ctx, "dst", place_region(256 * MIB, NumaPolicy.bind(0), 2),
        store_data=True))
    server = RftpServer(ctx, nb, dst_fs)
    client = RftpClient(ctx, na, src_fs, server, block_size=2 * MIB)

    rng = np.random.default_rng(1)
    for i in range(6):
        name = f"chunk-{i:02d}.dat"
        src_fs.create(name, 8 * MIB)
        payload = rng.integers(0, 256, 8 * MIB).astype(np.uint8)
        ctx.sim.run(until=src_fs.open(name, O_RDWR).write(payload))
    print(f"dataset: 6 files x 8 MiB on {a.name}")

    # schedule the outage: the link dies 30 ms in, repaired 200 ms later
    def outage():
        yield ctx.sim.timeout(0.030)
        print(f"[{fmt_seconds(ctx.sim.now)}] !! link failure (cable pull)")
        link.fail()
        yield ctx.sim.timeout(0.200)
        link.restore()
        print(f"[{fmt_seconds(ctx.sim.now)}] link restored")

    ctx.sim.process(outage())

    # first attempt: run with a watchdog — if no progress while the link
    # is down, the operator aborts the job
    tree_done = client.put_tree()

    def watchdog():
        while not tree_done.triggered:
            yield ctx.sim.timeout(0.050)
            if link.failed:
                print(f"[{fmt_seconds(ctx.sim.now)}] watchdog: transfer "
                      "stalled on dead link, aborting job")
                return

    ctx.sim.run(until=ctx.sim.process(watchdog()))
    done_files = len(server.manifest)
    print(f"first attempt delivered {done_files}/6 files before the cut\n")

    # wait out the repair.  RDMA flows are not torn down by a flap: the
    # stalled transfer resumes by itself once the link is back...
    ctx.sim.run(until=0.25)
    drained = len(server.manifest)
    if drained > done_files:
        print("after the repair, the stalled job drained "
              f"{drained - done_files} more file(s) on its own")

    # ...and the operator's re-run is then a cheap verification pass:
    # the manifest makes put_tree skip every complete file.
    t0 = ctx.sim.now
    records = ctx.sim.run(until=client.put_tree())
    moved = 6 - drained
    print(f"operator re-run: transferred {moved} file(s), skipped "
          f"{drained} via the manifest, in {fmt_seconds(ctx.sim.now - t0)}")
    assert len(records) == 6
    assert len(server.manifest) == 6
    print("manifest:")
    for rec in server.completed():
        print(f"  {rec.path}  {rec.size >> 20} MiB  "
              f"blake2b={rec.digest_hex[:12]}...  "
              f"done at {fmt_seconds(rec.completed_at)}")
    print("\nall six files verified on the server — the re-run moved only "
          "what the failure interrupted.")


if __name__ == "__main__":
    main()
