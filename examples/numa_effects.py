#!/usr/bin/env python
"""Scenario: why NUMA tuning helps writes 2.5x more than reads.

The paper's most subtle result (Figs. 7/8) is an *asymmetry*: binding the
iSER target processes to NUMA nodes gains +19% on writes but only +7.6%
on reads.  The explanation is cache coherence: a write invalidates every
other cached copy of the line; a read just shares it.

This example shows the effect at both modelling scales:

1. **cache-line level** — drive the MESI state machine with the two
   access patterns the target exhibits (single-node vs scattered
   workers) and count the coherence events;
2. **system level** — run the Fig. 7 fio workload in both tuning
   regimes and report the bandwidth/CPU gains those events produce.

Run:  python examples/numa_effects.py
"""

from repro.apps.fio import FioJob, run_fio
from repro.hw import MesiCache, backend_lan_host, frontend_lan_host
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage import IserInitiator, IserTarget
from repro.util.tables import Table
from repro.util.units import GB, MIB, to_gbps


def line_level() -> None:
    print("1. Cache-line level: 10,000 accesses to 1,000 hot lines")
    print("   (agents = NUMA nodes; 'scattered' = default scheduling,")
    print("    'pinned' = one node owns each line)\n")
    table = Table(["pattern", "op", "invalidations", "remote fetches"])
    for pattern in ("pinned", "scattered"):
        for op in ("read", "write"):
            cache = MesiCache(n_agents=2)
            for i in range(10_000):
                line = i % 999
                if pattern == "pinned":
                    agent = 0  # one owning node serves every request
                else:
                    agent = i % 2  # requests land on both nodes
                if op == "read":
                    cache.read(line, agent)
                else:
                    cache.write(line, agent)
            table.add_row([pattern, op, cache.stats["invalidations"],
                           cache.stats["remote_fetches"]])
    print(table.render())
    print("\n   -> scattered WRITES generate thousands of invalidations;")
    print("      scattered READS settle into harmless Shared state.\n")


def system_level() -> None:
    print("2. System level: the Fig. 7 fio workload, default vs NUMA-tuned\n")
    table = Table(["rw", "default Gbps", "tuned Gbps", "gain",
                   "default CPU%", "tuned CPU%"])
    for rw in ("read", "write"):
        rates, cpus = {}, {}
        for tuning in ("default", "numa"):
            ctx = Context.create(seed=3)
            front = frontend_lan_host(ctx, "front", with_ib=True)
            back = backend_lan_host(ctx, "back")
            wire_san(ctx, front, back)
            target = IserTarget(ctx, back, tuning=tuning, n_links=2)
            for _ in range(6):
                target.create_lun(2 * GB)
            initiator = IserInitiator(ctx, front, target)
            ctx.sim.run(until=initiator.login_all())
            devices = [initiator.devices[i]
                       for i in sorted(initiator.devices)]
            res = run_fio(ctx, front, devices,
                          FioJob(rw=rw, block_size=4 * MIB, runtime=15.0))
            rates[tuning] = res.bandwidth
            cpus[tuning] = 100 * target.accounting().total_seconds / 15.0
        table.add_row([
            rw,
            round(to_gbps(rates["default"]), 1),
            round(to_gbps(rates["numa"]), 1),
            f"{rates['numa'] / rates['default']:.3f}x",
            round(cpus["default"]),
            round(cpus["numa"]),
        ])
    print(table.render())
    print("\n   -> writes gain ~2.5x more bandwidth from tuning than reads,")
    print("      and untuned writes burn ~3x the CPU (paper: +19%/+7.6%, 3x).")


def main() -> None:
    line_level()
    system_level()


if __name__ == "__main__":
    main()
