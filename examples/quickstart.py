#!/usr/bin/env python
"""Quickstart: the paper's headline result in ~20 lines.

Builds the full Figure 5 testbed (two front-end hosts on 3x40 Gbps RoCE,
each backed by a tmpfs SAN over 2x56 Gbps IB FDR), then runs the two
transfer tools the paper compares:

* RFTP  — RDMA-based, zero-copy, pipelined, NUMA-tuned  -> ~91 Gbps
* GridFTP — TCP-based, single-threaded movers, buffered -> ~29 Gbps

Run:  python examples/quickstart.py
"""

from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB, to_gbps


def main() -> None:
    print("Building the LAN testbed (Fig. 5)...")
    system = EndToEndSystem.lan_testbed(
        TuningPolicy.numa_bound(), seed=0, lun_size=2 * GB
    )

    ceiling = system.fio_file_write_ceiling(runtime=15.0)
    print("fio cross-check - narrowest stage (file write): "
          f"{to_gbps(ceiling):.1f} Gbps  (paper: 94.8)\n")

    rftp = system.run_rftp_transfer(duration=30.0)
    print(rftp.summary())
    print()

    system2 = EndToEndSystem.lan_testbed(
        TuningPolicy.numa_bound(), seed=1, lun_size=2 * GB
    )
    gridftp = system2.run_gridftp_transfer(duration=30.0)
    print(gridftp.summary())
    print()

    speedup = rftp.goodput / gridftp.goodput
    print(f"RFTP is {speedup:.1f}x faster than GridFTP "
          "(paper: ~3.1x, 91 vs 29 Gbps)")
    print(f"RFTP reaches {rftp.goodput / ceiling:.0%} of the effective "
          "end-to-end bandwidth (paper: 96%)")


if __name__ == "__main__":
    main()
