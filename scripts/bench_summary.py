#!/usr/bin/env python3
"""Fold all benchmark result JSONs into one ``BENCH_report.json``.

Every benchmark run (``benchmarks/conftest.py`` and the hand-rolled
micro-benchmarks) drops a ``benchmarks/results/<name>.json`` with the
same core fields (``name``, ``wall_seconds``, ``events_per_sec``,
``all_ok``, ``checks``, plus per-bench extras such as ``speedup``).
This script collects them into a single artifact so one file per CI run
tracks the perf trajectory across PRs::

    python scripts/bench_summary.py \
        [--results benchmarks/results] [-o BENCH_report.json]

The report carries, per benchmark: wall seconds, events/sec, check
pass counts, and any ``speedup`` the bench recorded — plus fleet-wide
totals.  Missing result files are not an error (CI jobs run different
benchmark subsets); an empty results directory is (the artifact would
be vacuous).

Exit status: 0 = report written, 1 = a result file is malformed,
2 = no results found / bad invocation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def summarize_one(path: pathlib.Path, errors: list[str]) -> dict | None:
    """One result file -> one summary row (None and an error if bad)."""
    try:
        with path.open() as fh:
            data = json.load(fh)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        errors.append(f"{path.name}: malformed result: {exc}")
        return None
    if not isinstance(data, dict):
        errors.append(f"{path.name}: expected a JSON object, "
                      f"got {type(data).__name__}")
        return None
    checks = data.get("checks") or []
    row = {
        "name": data.get("name", path.stem),
        "experiment_id": data.get("experiment_id"),
        "wall_seconds": data.get("wall_seconds"),
        "events_per_sec": data.get("events_per_sec"),
        "ops": data.get("ops"),
        "quick": data.get("quick"),
        "jobs": data.get("jobs"),
        "all_ok": data.get("all_ok"),
        "checks_total": len(checks),
        "checks_failed": sum(1 for c in checks
                             if isinstance(c, dict) and c.get("ok") is False),
    }
    # Micro-benchmarks record a speedup vs their own reference mode
    # (eager churn, unsharded fabric, per-task gang...); surface it.
    if "speedup" in data:
        row["speedup"] = data["speedup"]
    return row


def build_report(results: pathlib.Path, errors: list[str]) -> dict | None:
    # The folded report itself defaults into the results directory; a
    # rerun must not ingest its own output.
    files = sorted(f for f in results.glob("*.json")
                   if f.name != "BENCH_report.json")
    if not files:
        errors.append(f"no benchmark results under {results}")
        return None
    rows = [row for f in files
            if (row := summarize_one(f, errors)) is not None]
    walls = [r["wall_seconds"] for r in rows
             if isinstance(r["wall_seconds"], (int, float))]
    return {
        "benchmarks": rows,
        "totals": {
            "benchmarks": len(rows),
            "wall_seconds": sum(walls),
            "all_ok": all(r["all_ok"] is not False for r in rows),
            "checks_total": sum(r["checks_total"] for r in rows),
            "checks_failed": sum(r["checks_failed"] for r in rows),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fold benchmarks/results/*.json into one report")
    parser.add_argument(
        "--results", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="directory of fresh benchmark JSONs")
    parser.add_argument(
        "-o", "--output", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "results" / "BENCH_report.json",
        help="where to write the folded report")
    args = parser.parse_args(argv)

    if not args.results.is_dir():
        print(f"bench summary: results directory not found: {args.results}",
              file=sys.stderr)
        return 2

    errors: list[str] = []
    report = build_report(args.results, errors)
    if report is None:
        for err in errors:
            print(f"bench summary: {err}", file=sys.stderr)
        return 2

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    totals = report["totals"]
    print(f"bench summary: {totals['benchmarks']} benchmarks, "
          f"{totals['wall_seconds']:.2f} s total wall, "
          f"{totals['checks_failed']}/{totals['checks_total']} checks failed "
          f"-> {args.output}")
    for err in errors:
        print(f"bench summary: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
