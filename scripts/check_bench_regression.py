#!/usr/bin/env python3
"""Benchmark regression gate.

Compares fresh benchmark JSON (written by ``benchmarks/conftest.py`` into
``benchmarks/results/``) against the committed baselines in
``benchmarks/baselines/`` and fails the build when either

* **correctness drifts** — any paper-anchored check value differs from the
  baseline, or a check flips its pass/fail status, or a metric
  appears/disappears; or
* **performance regresses** — events/sec drops more than ``--tolerance``
  (default 25%) below the baseline; or
* **the gate itself is broken** — a baseline or fresh result file is
  missing or malformed JSON, or a result file has no committed baseline.
  These fail loudly with the benchmark's name: a gate that silently
  skips a corrupt baseline is a gate that never fires.

Performance *improvements* never fail the gate.  Usage::

    python scripts/check_bench_regression.py \
        [--results benchmarks/results] [--baselines benchmarks/baselines] \
        [--tolerance 0.25]

Exit status: 0 = gate passes, 1 = regression or drift, 2 = bad invocation
(e.g. no baselines found).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_TOLERANCE = 0.25

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_json(path: pathlib.Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def load_result(path: pathlib.Path, name: str, role: str,
                errors: list[str]) -> dict | None:
    """Load one benchmark JSON; on failure, record a named error.

    Returns None when the file is unreadable, malformed, or not a JSON
    object — the caller skips the comparison and the run fails.
    """
    try:
        data = load_json(path)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        errors.append(f"{name}: malformed {role} at {path}: {exc}")
        return None
    if not isinstance(data, dict):
        errors.append(
            f"{name}: malformed {role} at {path}: expected a JSON object, "
            f"got {type(data).__name__}")
        return None
    return data


def compare_checks(name: str, baseline: dict, fresh: dict) -> list[str]:
    """Check-value drift errors between one baseline/fresh pair."""
    errors: list[str] = []
    base_checks = {c["metric"]: c for c in baseline.get("checks", [])}
    fresh_checks = {c["metric"]: c for c in fresh.get("checks", [])}

    for metric in base_checks.keys() - fresh_checks.keys():
        errors.append(f"{name}: check {metric!r} disappeared")
    for metric in fresh_checks.keys() - base_checks.keys():
        errors.append(f"{name}: unexpected new check {metric!r} (refresh the baseline)")
    for metric in base_checks.keys() & fresh_checks.keys():
        b, f = base_checks[metric], fresh_checks[metric]
        if b["measured"] != f["measured"]:
            errors.append(
                f"{name}: check {metric!r} drifted: "
                f"baseline measured {b['measured']} != fresh {f['measured']}"
            )
        if b["ok"] != f["ok"]:
            errors.append(
                f"{name}: check {metric!r} status changed: "
                f"baseline ok={b['ok']} != fresh ok={f['ok']}"
            )
    return errors


def compare_performance(
    name: str, baseline: dict, fresh: dict, tolerance: float
) -> tuple[list[str], str]:
    """(errors, human summary line) for the events/sec comparison."""
    base_eps = float(baseline.get("events_per_sec", 0.0))
    fresh_eps = float(fresh.get("events_per_sec", 0.0))
    if base_eps <= 0:
        return [], f"{name}: baseline has no events/sec figure; skipped"
    ratio = fresh_eps / base_eps
    summary = (
        f"{name}: {fresh_eps:,.0f} events/s vs baseline {base_eps:,.0f} "
        f"({ratio:.2f}x)"
    )
    if fresh_eps < base_eps * (1.0 - tolerance):
        return [
            f"{name}: events/sec regressed beyond {tolerance:.0%}: "
            f"baseline {base_eps:,.0f} -> fresh {fresh_eps:,.0f} ({ratio:.2f}x)"
        ], summary
    return [], summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="directory with fresh <name>.json files",
    )
    parser.add_argument(
        "--baselines",
        type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory with committed baseline <name>.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional events/sec drop (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not (0.0 <= args.tolerance < 1.0):
        print(f"error: tolerance must be in [0, 1), got {args.tolerance}")
        return 2
    baselines = sorted(args.baselines.glob("*.json"))
    if not baselines:
        print(f"error: no baselines found under {args.baselines}")
        return 2

    errors: list[str] = []
    for base_path in baselines:
        name = base_path.stem
        fresh_path = args.results / base_path.name
        if not fresh_path.exists():
            errors.append(f"{name}: no fresh result at {fresh_path}")
            continue
        baseline = load_result(base_path, name, "baseline", errors)
        fresh = load_result(fresh_path, name, "fresh result", errors)
        if baseline is None or fresh is None:
            continue

        if fresh.get("all_ok") is not True:
            errors.append(f"{name}: fresh run reports all_ok={fresh.get('all_ok')!r}")
        errors.extend(compare_checks(name, baseline, fresh))
        perf_errors, summary = compare_performance(
            name, baseline, fresh, args.tolerance
        )
        errors.extend(perf_errors)
        print(summary)

    # BENCH_report.json is bench_summary.py's fold over these results,
    # not a benchmark — it carries no checks of its own to gate.
    extra = {p.stem for p in args.results.glob("*.json")
             if p.name != "BENCH_report.json"} - {
        p.stem for p in baselines
    }
    for name in sorted(extra):
        errors.append(
            f"{name}: result has no committed baseline under "
            f"{args.baselines} (add one, or the benchmark is never gated)")

    if errors:
        print(f"\nFAIL: {len(errors)} regression(s)/drift(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"\nOK: {len(baselines)} benchmark(s) within tolerance, no check drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
