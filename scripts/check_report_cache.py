#!/usr/bin/env python3
"""Result-cache smoke gate for CI.

Takes the ``--stats-json`` files of two back-to-back
``python -m repro report`` invocations sharing one cache directory and
asserts the cache did its job:

* the **cold** run computed something (misses > 0) and stored it;
* the **warm** run was served entirely from cache — zero misses, zero
  simulations executed, every task a hit;
* the warm run was at least ``--speedup`` times faster wall-clock
  (default 2.0).

Usage::

    python scripts/check_report_cache.py cold.json warm.json [--speedup 2.0]

Exit status: 0 = gate passes, 1 = cache ineffective, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cold", type=pathlib.Path,
                        help="stats JSON of the first (cold-cache) run")
    parser.add_argument("warm", type=pathlib.Path,
                        help="stats JSON of the second (warm-cache) run")
    parser.add_argument("--speedup", type=float, default=2.0,
                        help="required cold/warm wall-clock ratio (default 2.0)")
    args = parser.parse_args(argv)

    try:
        cold = json.loads(args.cold.read_text())
        warm = json.loads(args.warm.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read stats files: {exc}")
        return 2
    if cold.get("cache") is None or warm.get("cache") is None:
        print("error: runs were made without a cache (--no-cache?)")
        return 2

    errors: list[str] = []
    if not cold["cache"]["misses"]:
        errors.append("cold run had no cache misses — was the cache dir dirty?")
    if warm["cache"]["misses"]:
        errors.append(f"warm run missed {warm['cache']['misses']} task(s)")
    if warm.get("executed"):
        errors.append(f"warm run re-executed {warm['executed']} simulation(s)")
    if warm["cache"]["hits"] != warm["tasks"]:
        errors.append(
            f"warm run: {warm['cache']['hits']} hits != {warm['tasks']} tasks")

    ratio = (cold["wall_seconds"] / warm["wall_seconds"]
             if warm["wall_seconds"] > 0 else float("inf"))
    print(f"cold: {cold['wall_seconds']:.2f}s ({cold['cache']['misses']} misses), "
          f"warm: {warm['wall_seconds']:.2f}s ({warm['cache']['hits']} hits) "
          f"-> {ratio:.1f}x")
    if ratio < args.speedup:
        errors.append(
            f"warm run only {ratio:.2f}x faster (need >= {args.speedup:.1f}x)")

    for err in errors:
        print(f"FAIL: {err}")
    if not errors:
        print("OK: warm report was pure cache hits")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
