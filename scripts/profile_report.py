#!/usr/bin/env python3
"""Profile the report pipeline (or one experiment) with cProfile.

Future perf PRs should start from data, not guesses: this script runs
the same code path as ``python -m repro report`` (or ``run <name>``)
under :mod:`cProfile` and prints the top-N functions by cumulative time,
plus the top-N by total (self) time — the first tells you *which layer*
is slow, the second *which function* burns the cycles.  Usage::

    PYTHONPATH=src python scripts/profile_report.py            # whole report
    PYTHONPATH=src python scripts/profile_report.py fig09      # one experiment
    PYTHONPATH=src python scripts/profile_report.py fig09 -n 40
    PYTHONPATH=src python scripts/profile_report.py --full     # paper-scale
    PYTHONPATH=src python scripts/profile_report.py -o prof.out  # for snakeviz

``python -m repro report --profile [N]`` is the in-CLI shortcut for the
no-argument form.  Profiling is always serial and cache-free — worker
processes and cache hits would hide the simulation cost being measured.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the EXPERIMENTS.md pipeline or one experiment")
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment name (see 'python -m repro list'); "
        "default: the full report pipeline")
    parser.add_argument("-n", "--top", type=int, default=30, metavar="N",
                        help="rows to print per table (default: 30)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale durations instead of quick mode")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="also dump raw pstats data to FILE "
                        "(inspect with snakeviz or pstats)")
    args = parser.parse_args(argv)

    if args.experiment is None:
        from repro.core.reportgen import generate_experiments_md

        def target():
            generate_experiments_md(quick=not args.full, seed=args.seed)
    else:
        from repro.core import experiments as E

        mods = dict(E.ALL_FIGURES)
        mods.update({f"ablation-{k}": v for k, v in E.ALL_ABLATIONS.items()})
        mods.update({f"ext-{k}": v for k, v in E.ALL_EXTENSIONS.items()})
        if args.experiment not in mods:
            print(f"unknown experiment: {args.experiment}", file=sys.stderr)
            print(f"available: {', '.join(mods)}", file=sys.stderr)
            return 2
        module = mods[args.experiment]

        def target():
            module.run(quick=not args.full, seed=args.seed)

    prof = cProfile.Profile()
    prof.runcall(target)

    if args.output:
        prof.dump_stats(args.output)
        print(f"raw profile written to {args.output}\n")

    for sort_key, title in (("cumulative", "cumulative time"),
                            ("tottime", "self time")):
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats(sort_key).print_stats(args.top)
        print(f"=== top {args.top} by {title} ===")
        print(buf.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
