#!/usr/bin/env python3
"""Profile the report pipeline (or one experiment) with cProfile.

Future perf PRs should start from data, not guesses: this script runs
the same code path as ``python -m repro report`` (or ``run <name>``)
under :mod:`cProfile` and prints the top-N functions by cumulative time,
plus the top-N by total (self) time — the first tells you *which layer*
is slow, the second *which function* burns the cycles.  Usage::

    PYTHONPATH=src python scripts/profile_report.py            # whole report
    PYTHONPATH=src python scripts/profile_report.py fig09      # one experiment
    PYTHONPATH=src python scripts/profile_report.py fig09 -n 40
    PYTHONPATH=src python scripts/profile_report.py --full     # paper-scale
    PYTHONPATH=src python scripts/profile_report.py -o prof.out  # for snakeviz

``--leg TARGET`` profiles one SimTask target instead (no hand-written
driver scripts): a shorthand (``fleet_leg``, ``service_leg``,
``diff_leg``) with sensible defaults, or any ``module:function``
whose keyword arguments you supply with repeatable ``--param``
overrides.  The tables are followed by a churn/settle/dispatch phase
breakdown (broker+workload control plane vs fluid solver vs event
kernel)::

    PYTHONPATH=src python scripts/profile_report.py --leg fleet_leg
    PYTHONPATH=src python scripts/profile_report.py --leg fleet_leg \
        --param hosts=512 --param qp_mode=per-job
    PYTHONPATH=src python scripts/profile_report.py \
        --leg repro.core.experiments.service_legs:service_leg \
        --param policy=numa-blind --param duration=4.0

``python -m repro report --profile [N]`` is the in-CLI shortcut for the
no-argument form.  Profiling is always serial and cache-free — worker
processes and cache hits would hide the simulation cost being measured.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import io
import json
import pstats
import sys

#: ``--leg`` shorthands: target + the keyword defaults it needs beyond
#: seed/cal (override any of them with ``--param``).
LEG_SHORTHANDS = {
    "fleet_leg": ("repro.core.experiments.fleet_legs:fleet_leg",
                  {"hosts": 128, "qp_mode": "pooled",
                   "rate_per_host": 4.0, "size_mean_mib": 64.0}),
    "service_leg": ("repro.core.experiments.service_legs:service_leg",
                    {"hosts": 8, "policy": "numa-aware",
                     "rate_per_host": 4.0, "duration": 8.0}),
    "diff_leg": ("repro.core.experiments.fleet_legs:diff_leg", {}),
}

#: Phase buckets for the --leg breakdown: the first matching substring
#: of a frame's filename claims its self time.
PHASES = (
    ("churn", ("service/broker.py", "service/workload.py",
               "service/fabric.py", "service/scheduler.py",
               "rdma/qpool.py")),
    ("settle", ("sim/fluid.py",)),
    ("dispatch", ("sim/engine.py",)),
)


def parse_params(pairs: list[str]) -> dict:
    """``key=value`` pairs -> kwargs (values JSON-decoded when possible)."""
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value  # bare string (e.g. qp_mode=pooled)
    return params


def resolve_leg(leg: str, overrides: dict):
    """A --leg TARGET -> (callable, kwargs)."""
    target, defaults = LEG_SHORTHANDS.get(leg, (leg, {}))
    if ":" not in target:
        known = ", ".join(LEG_SHORTHANDS)
        raise SystemExit(
            f"unknown leg {leg!r}: use one of {known}, or module:function")
    mod_name, _, func_name = target.partition(":")
    try:
        func = getattr(importlib.import_module(mod_name), func_name)
    except (ImportError, AttributeError) as exc:
        raise SystemExit(f"cannot resolve leg target {target!r}: {exc}")
    kwargs = dict(defaults)
    kwargs.update(overrides)
    return func, kwargs


def phase_breakdown(prof: cProfile.Profile) -> list[tuple[str, float]]:
    """Self-time totals per phase bucket (churn/settle/dispatch/other)."""
    totals = {name: 0.0 for name, _ in PHASES}
    totals["other"] = 0.0
    grand = 0.0
    for (filename, _lineno, _func), stat in pstats.Stats(prof).stats.items():
        tottime = stat[2]
        grand += tottime
        for name, needles in PHASES:
            if any(needle in filename for needle in needles):
                totals[name] += tottime
                break
        else:
            totals["other"] += tottime
    return [(name, t, (t / grand if grand > 0 else 0.0))
            for name, t in totals.items()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the EXPERIMENTS.md pipeline or one experiment")
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment name (see 'python -m repro list'); "
        "default: the full report pipeline")
    parser.add_argument("-n", "--top", type=int, default=30, metavar="N",
                        help="rows to print per table (default: 30)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale durations instead of quick mode")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="also dump raw pstats data to FILE "
                        "(inspect with snakeviz or pstats)")
    parser.add_argument(
        "--leg", default=None, metavar="TARGET",
        help="profile one SimTask target instead: a shorthand "
        f"({', '.join(LEG_SHORTHANDS)}) or module:function")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="keyword override for the --leg target (repeatable; "
        "values parsed as JSON when possible)")
    args = parser.parse_args(argv)

    if args.param and args.leg is None:
        parser.error("--param requires --leg")
    if args.leg is not None and args.experiment is not None:
        parser.error("--leg and an experiment name are mutually exclusive")

    if args.leg is not None:
        func, kwargs = resolve_leg(args.leg, parse_params(args.param))
        kwargs.setdefault("seed", args.seed)
        kwargs.setdefault("cal", None)

        def target():
            func(**kwargs)
    elif args.experiment is None:
        from repro.core.reportgen import generate_experiments_md

        def target():
            generate_experiments_md(quick=not args.full, seed=args.seed)
    else:
        from repro.core import experiments as E

        mods = dict(E.ALL_FIGURES)
        mods.update({f"ablation-{k}": v for k, v in E.ALL_ABLATIONS.items()})
        mods.update({f"ext-{k}": v for k, v in E.ALL_EXTENSIONS.items()})
        if args.experiment not in mods:
            print(f"unknown experiment: {args.experiment}", file=sys.stderr)
            print(f"available: {', '.join(mods)}", file=sys.stderr)
            return 2
        module = mods[args.experiment]

        def target():
            module.run(quick=not args.full, seed=args.seed)

    prof = cProfile.Profile()
    prof.runcall(target)

    if args.output:
        prof.dump_stats(args.output)
        print(f"raw profile written to {args.output}\n")

    for sort_key, title in (("cumulative", "cumulative time"),
                            ("tottime", "self time")):
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats(sort_key).print_stats(args.top)
        print(f"=== top {args.top} by {title} ===")
        print(buf.getvalue())

    if args.leg is not None:
        print("=== phase breakdown (self time) ===")
        for name, seconds, fraction in phase_breakdown(prof):
            print(f"  {name:<9} {seconds:8.3f} s  {fraction:6.1%}")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
